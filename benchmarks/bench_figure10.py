"""Benchmark: regenerate Figure 10 (PPU activity factors under manual prefetching)."""

from repro.eval.figure10 import format_figure10, run_figure10
from repro.sim import PrefetchMode, simulate

from .conftest import BENCH_WORKLOADS


def test_figure10_ppu_activity(benchmark, bench_comparison, bench_workloads, bench_config):
    workload = bench_workloads.get("conjgrad") or next(iter(bench_workloads.values()))
    benchmark(lambda: simulate(workload, PrefetchMode.MANUAL, bench_config))

    data = run_figure10(workloads=BENCH_WORKLOADS, comparison=bench_comparison)
    print()
    print(format_figure10(data))

    for name, factors in data.activity.items():
        assert len(factors) == bench_config.prefetcher.num_ppus
        # Lowest-free-ID scheduling concentrates work on the low-numbered PPUs.
        assert factors[0] >= factors[-1], name
        assert all(0.0 <= factor <= 1.0 for factor in factors)
