"""Timed regeneration of the extended-workloads comparison table."""

from repro.eval.extended import format_extended, run_extended

from .conftest import BENCH_SCALE


def test_extended_workloads(benchmark, bench_engine):
    data = benchmark.pedantic(
        lambda: run_extended(scale=BENCH_SCALE, engine=bench_engine),
        rounds=1,
        iterations=1,
    )
    assert data.speedups
    for row in data.speedups.values():
        assert row.get("manual") is not None
    print()
    print(format_extended(data))
