"""Benchmark: regenerate Figure 9 (PPU clock-frequency and count scaling).

The full sweep is expensive (dozens of simulations); the swept frequencies and
PPU counts are trimmed at the ``small`` benchmark scale and complete at
``REPRO_BENCH_SCALE=default``.  The sweep is declared as one batch-engine
plan, so the no-prefetch references are shared with the session's Figure 7
comparison instead of being re-simulated.
"""

from repro.eval.figure9 import format_figure9, run_figure9
from repro.sim.sweeps import ppu_frequency_sweep

from .conftest import BENCH_SCALE, BENCH_WORKLOADS


def test_figure9_ppu_scaling(benchmark, bench_engine, bench_workloads, bench_config):
    sweep_names = [n for n in ("randacc", "g500-csr") if n in BENCH_WORKLOADS] or BENCH_WORKLOADS[:1]
    frequencies = [0.25, 0.5, 1.0, 2.0] if BENCH_SCALE == "default" else [0.5, 1.0]
    counts = [3, 6, 12] if BENCH_SCALE == "default" else [3, 12]

    workload = bench_workloads[sweep_names[0]]
    benchmark(lambda: ppu_frequency_sweep(workload, frequencies=[1.0], config=bench_config))

    data = run_figure9(
        workloads=sweep_names,
        config=bench_config,
        scale=BENCH_SCALE,
        frequencies=frequencies,
        counts=counts,
        count_sweep_workload=sweep_names[-1],
        engine=bench_engine,
    )
    print()
    print(format_figure9(data))

    for name, sweep in data.frequency_sweeps.items():
        slow, fast = min(sweep), max(sweep)
        assert sweep[fast] >= 0.9 * sweep[slow], (
            f"{name}: faster PPUs should never be significantly worse"
        )
