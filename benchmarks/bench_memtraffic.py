"""Benchmark: regenerate the Section 7.2 extra-memory-accesses analysis."""

from repro.eval.memtraffic import format_memtraffic, run_memtraffic
from repro.sim import PrefetchMode, simulate

from .conftest import BENCH_WORKLOADS


def test_extra_memory_accesses(benchmark, bench_comparison, bench_workloads, bench_config):
    workload = bench_workloads.get("hj2") or next(iter(bench_workloads.values()))
    benchmark(lambda: simulate(workload, PrefetchMode.NONE, bench_config))

    data = run_memtraffic(workloads=BENCH_WORKLOADS, comparison=bench_comparison)
    print()
    print(format_memtraffic(data))

    for name, extra in data.extra.items():
        if name.startswith("g500"):
            # The graph traversals are allowed meaningful over-fetch (paper: 16-40 %).
            assert extra < 0.8, name
        else:
            assert extra < 0.25, f"{name}: programmable prefetching should add little traffic"
