"""Timed figure regenerations (pytest-benchmark harness).

This package marker lets pytest import the ``bench_*`` modules (which use
relative imports against :mod:`benchmarks.conftest`) when they are invoked by
explicit path, e.g.::

    REPRO_BENCH_SCALE=small pytest benchmarks/bench_figure7.py --benchmark-only
"""
