"""Shared configuration for the benchmark harness.

Each ``bench_*``/``test_*`` module regenerates one table or figure of the
paper.  The workload scale is controlled with ``REPRO_BENCH_SCALE``
(``tiny`` / ``small`` / ``default``); ``small`` is the default so that
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes, while
``default`` reproduces the numbers recorded in EXPERIMENTS.md.

The heavyweight simulations all flow through one session-scoped batch
engine: the Figure 7 comparison (plus the blocking ablation) is declared as
a single deduplicated plan, and every later figure reads results back out of
the engine's memo, so each benchmark times only its own analysis plus a
representative simulation.  Set ``REPRO_BENCH_JOBS=N`` (N > 1) to execute
the plan across processes instead of serially.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import SystemConfig  # noqa: E402
from repro.sim import (  # noqa: E402
    MultiprocessRunner,
    PrefetchMode,
    SerialRunner,
    SimEngine,
    run_comparison,
)
from repro.sim.modes import FIGURE7_MODES  # noqa: E402
from repro.workloads import build_workload, registry  # noqa: E402

#: Workload scale used by the whole benchmark session.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Workload subset (comma separated) — defaults to the paper benchmarks as
#: listed by the workload registry (the single source of truth).
BENCH_WORKLOADS = [
    name
    for name in os.environ.get(
        "REPRO_BENCH_WORKLOADS", ",".join(registry.paper_names())
    ).split(",")
    if name
]

#: Worker processes for plan execution (1 = serial, in-process).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    return SystemConfig.scaled()


@pytest.fixture(scope="session")
def bench_workloads():
    """Pre-built workloads shared by every benchmark."""

    return {name: build_workload(name, scale=BENCH_SCALE) for name in BENCH_WORKLOADS}


@pytest.fixture(scope="session")
def bench_engine(bench_workloads) -> SimEngine:
    """One batch engine for the session: shared memo, optional parallelism."""

    if BENCH_JOBS > 1:
        runner = MultiprocessRunner(BENCH_JOBS, workloads=bench_workloads)
    else:
        runner = SerialRunner(workloads=bench_workloads)
    return SimEngine(runner=runner)


@pytest.fixture(scope="session")
def bench_comparison(bench_engine, bench_workloads, bench_config):
    """The full Figure 7 comparison (plus the blocking ablation), run once."""

    modes = list(FIGURE7_MODES) + [PrefetchMode.MANUAL_BLOCKED]
    return run_comparison(
        list(bench_workloads),
        modes,
        config=bench_config,
        scale=BENCH_SCALE,
        engine=bench_engine,
    )
