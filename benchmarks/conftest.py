"""Shared configuration for the benchmark harness.

Each ``bench_*``/``test_*`` module regenerates one table or figure of the
paper.  The workload scale is controlled with ``REPRO_BENCH_SCALE``
(``tiny`` / ``small`` / ``default``); ``small`` is the default so that
``pytest benchmarks/ --benchmark-only`` finishes in a few minutes, while
``default`` reproduces the numbers recorded in EXPERIMENTS.md.

The heavyweight simulations are shared across benchmarks through a
session-scoped comparison fixture so each figure's benchmark times only its
own analysis plus a representative simulation.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import SystemConfig  # noqa: E402
from repro.sim import PrefetchMode, run_comparison  # noqa: E402
from repro.sim.modes import FIGURE7_MODES  # noqa: E402
from repro.workloads import WORKLOAD_ORDER, build_workload  # noqa: E402

#: Workload scale used by the whole benchmark session.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: Workload subset (comma separated) — defaults to all eight benchmarks.
BENCH_WORKLOADS = [
    name
    for name in os.environ.get("REPRO_BENCH_WORKLOADS", ",".join(WORKLOAD_ORDER)).split(",")
    if name
]


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    return SystemConfig.scaled()


@pytest.fixture(scope="session")
def bench_workloads():
    """Pre-built workloads shared by every benchmark."""

    return {name: build_workload(name, scale=BENCH_SCALE) for name in BENCH_WORKLOADS}


@pytest.fixture(scope="session")
def bench_comparison(bench_config, bench_workloads):
    """The full Figure 7 comparison (plus the blocking ablation), run once."""

    modes = list(FIGURE7_MODES) + [PrefetchMode.MANUAL_BLOCKED]
    return run_comparison(
        list(bench_workloads),
        modes,
        config=bench_config,
        scale=BENCH_SCALE,
        workloads=bench_workloads,
    )
