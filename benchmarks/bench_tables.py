"""Benchmark: regenerate Tables 1 and 2 (system configuration and benchmarks)."""

from repro.eval.table1 import format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2

from .conftest import BENCH_SCALE, BENCH_WORKLOADS


def test_table1_configuration(benchmark, bench_config):
    table = benchmark(lambda: run_table1(bench_config))
    print()
    print(format_table1(table))
    assert "PPUs" in table["Prefetcher"]


def test_table2_benchmarks(benchmark, bench_workloads):
    rows = benchmark(
        lambda: run_table2(workloads=BENCH_WORKLOADS, scale=BENCH_SCALE, prebuilt=bench_workloads)
    )
    print()
    print(format_table2(rows))
    assert len(rows) == len(BENCH_WORKLOADS)
