"""Benchmark: design-choice ablations called out in DESIGN.md.

Not a paper figure: these quantify the contribution of individual mechanisms —
EWMA-driven look-ahead vs a fixed distance, the scheduling policy, and the
observation-queue size — on one stride-hash-indirect workload.
"""

import pytest

from repro.programmable.scheduler import RoundRobinPolicy
from repro.sim import PrefetchMode, SimRequest, simulate

from .conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def ablation_setup(bench_engine, bench_workloads, bench_config):
    workload = bench_workloads.get("randacc") or next(iter(bench_workloads.values()))
    # Through the session engine: deduplicated with the Figure 7 baselines.
    baseline = bench_engine.simulate(
        SimRequest(workload.name, PrefetchMode.NONE, scale=BENCH_SCALE, config=bench_config)
    )
    return workload, baseline


def test_scheduling_policy_does_not_change_performance(benchmark, ablation_setup, bench_engine, bench_config):
    workload, baseline = ablation_setup
    lowest = bench_engine.simulate(
        SimRequest(workload.name, PrefetchMode.MANUAL, scale=BENCH_SCALE, config=bench_config)
    )
    round_robin = benchmark(
        lambda: simulate(workload, PrefetchMode.MANUAL, bench_config, policy=RoundRobinPolicy())
    )
    print(
        f"\nlowest-free-id {baseline.cycles / lowest.cycles:.2f}x vs "
        f"round-robin {baseline.cycles / round_robin.cycles:.2f}x"
    )
    # The paper: other policies spread work more evenly but do not change
    # overall performance.
    assert round_robin.cycles == pytest.approx(lowest.cycles, rel=0.1)


def test_tiny_observation_queue_degrades_gracefully(benchmark, ablation_setup, bench_engine, bench_config):
    workload, baseline = ablation_setup
    full = bench_engine.simulate(
        SimRequest(workload.name, PrefetchMode.MANUAL, scale=BENCH_SCALE, config=bench_config)
    )
    starved_config = bench_config.with_prefetcher(observation_queue_entries=2, prefetch_queue_entries=4)
    starved = benchmark(lambda: simulate(workload, PrefetchMode.MANUAL, starved_config))
    print(
        f"\n40-entry queues {baseline.cycles / full.cycles:.2f}x vs "
        f"2-entry queues {baseline.cycles / starved.cycles:.2f}x "
        f"(dropped {starved.prefetcher['observations_dropped']} observations)"
    )
    # Dropping observations must never break the run; it may cost performance.
    assert starved.cycles >= full.cycles * 0.95


def test_single_ppu_still_helps(benchmark, ablation_setup, bench_config):
    workload, baseline = ablation_setup
    single_config = bench_config.with_prefetcher(num_ppus=1)
    single = benchmark(lambda: simulate(workload, PrefetchMode.MANUAL, single_config))
    print(f"\n1 PPU {baseline.cycles / single.cycles:.2f}x over no prefetching")
    assert single.cycles < baseline.cycles
