"""Benchmark: regenerate Figure 7 (speedup of every prefetching scheme).

The timed body is one representative simulation (the manual programmable
prefetcher on RandomAccess); the full cross-product of workloads × schemes is
computed once per session by the ``bench_comparison`` fixture — a single
deduplicated batch-engine plan — and rendered here so the benchmark output
shows the reproduced figure.
"""

from repro.eval.figure7 import format_figure7, run_figure7
from repro.sim import PrefetchMode, simulate

from .conftest import BENCH_WORKLOADS


def test_figure7_speedups(benchmark, bench_comparison, bench_workloads, bench_config):
    workload = bench_workloads.get("randacc") or next(iter(bench_workloads.values()))

    def representative_run():
        return simulate(workload, PrefetchMode.MANUAL, bench_config)

    benchmark(representative_run)

    data = run_figure7(workloads=BENCH_WORKLOADS, comparison=bench_comparison)
    print()
    print(format_figure7(data))

    manual = data.speedups.get("randacc", {}).get(PrefetchMode.MANUAL.value)
    if manual is not None:
        assert manual > 1.0
    assert data.geomean(PrefetchMode.MANUAL) >= data.geomean(PrefetchMode.GHB_REGULAR)
