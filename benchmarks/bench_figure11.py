"""Benchmark: regenerate Figure 11 (event triggering vs blocking on loads)."""

from repro.eval.figure11 import format_figure11, run_figure11
from repro.sim import PrefetchMode, simulate

from .conftest import BENCH_WORKLOADS


def test_figure11_blocking_ablation(benchmark, bench_comparison, bench_workloads, bench_config):
    workload = bench_workloads.get("hj8") or next(iter(bench_workloads.values()))
    benchmark(lambda: simulate(workload, PrefetchMode.MANUAL_BLOCKED, bench_config))

    data = run_figure11(workloads=BENCH_WORKLOADS, comparison=bench_comparison)
    print()
    print(format_figure11(data))

    # Event triggering must dominate blocking overall, and especially on the
    # multi-level patterns (hash-join list walks, BFS).
    better = sum(1 for name in data.events if data.events[name] >= data.blocked.get(name, 0.0))
    assert better >= max(1, len(data.events) - 1)
    for name in ("hj8", "g500-csr"):
        if name in data.events and name in data.blocked:
            assert data.events[name] > data.blocked[name]
