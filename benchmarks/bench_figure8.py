"""Benchmark: regenerate Figure 8 (prefetch utilisation and L1 hit rates)."""

from repro.eval.figure8 import format_figure8, run_figure8
from repro.sim import PrefetchMode, simulate

from .conftest import BENCH_WORKLOADS


def test_figure8_utilisation_and_hit_rates(benchmark, bench_comparison, bench_workloads, bench_config):
    workload = bench_workloads.get("intsort") or next(iter(bench_workloads.values()))
    benchmark(lambda: simulate(workload, PrefetchMode.MANUAL, bench_config))

    data = run_figure8(workloads=BENCH_WORKLOADS, comparison=bench_comparison)
    print()
    print(format_figure8(data))

    for name, (before, after) in data.hit_rates.items():
        assert after >= before - 0.02, f"{name}: programmable prefetching should not hurt the L1"
    for name, utilisation in data.utilisation.items():
        assert 0.0 <= utilisation <= 1.0
