#!/usr/bin/env python3
"""Print the health table for a fleet of ``repro serve`` daemons.

A thin wrapper over ``repro status`` for checkouts without the console
script installed::

    PYTHONPATH=src python tools/service_status.py 127.0.0.1:7421,127.0.0.1:7422

One row per endpoint (reachability, protocol, uptime, queue depth, pool
generation, peer hits); exits nonzero when any endpoint is unreachable, so
deployment scripts can gate on fleet health.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import status_main  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "endpoints",
        metavar="ADDR[,ADDR...]",
        help="comma-separated service endpoints (host:port or unix:/path)",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-endpoint probe timeout (default: %(default)s)",
    )
    args = parser.parse_args()
    return status_main(args.endpoints, timeout=args.timeout)


if __name__ == "__main__":
    sys.exit(main())
