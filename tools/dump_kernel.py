#!/usr/bin/env python3
"""Print the compiled Python source of a workload's PPU kernels.

The kernel compiler (``repro.programmable.compiler``) turns each kernel into
a specialised Python closure; this tool shows exactly what was generated —
the debugging view for kernel authors.  For every kernel of the chosen
workload and configuration it prints the instruction listing's vital stats
(digest, instruction count, encoded bytes) followed by the generated source.

With ``--stage`` the tool instead prints an intermediate of the loop-IR →
manual-kernel derivation pipeline (``repro.compiler.pipeline``): the raw
loop IR, the post-analysis chains and lowered pointer chases, the
post-DCE/bounds configuration tables, or the generated kernels as PPU
disassembly.  See docs/compiler.md for a walkthrough of the stages.

Examples::

    # All manual-mode kernels of the unionfind workload
    python tools/dump_kernel.py unionfind

    # One kernel, by name, from the pragma-generated configuration
    python tools/dump_kernel.py conjgrad --mode pragma --kernel cg_row_start

    # The compiler-derived manual kernels (must derive cleanly)
    python tools/dump_kernel.py bfs --mode compiled

    # Pipeline intermediates: raw IR, chains, bounds/DCE, disassembly
    python tools/dump_kernel.py spmv --stage ir
    python tools/dump_kernel.py spmv --stage chains
    python tools/dump_kernel.py spmv --stage config
    python tools/dump_kernel.py spmv --stage kernels

    # List registered workloads
    python tools/dump_kernel.py --list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.compiler import pipeline  # noqa: E402
from repro.errors import WorkloadError  # noqa: E402
from repro.programmable.compiler import generate_source, program_digest  # noqa: E402
from repro.workloads import build_workload, registry  # noqa: E402

#: How each dumpable mode resolves to a prefetcher configuration.
_MODES = {
    "manual": lambda workload: workload.manual_configuration(),
    "compiled": lambda workload: workload.derived_manual_configuration(),
    "converted": lambda workload: workload.converted_configuration(),
    "pragma": lambda workload: workload.pragma_configuration(),
}

#: Derivation-pipeline intermediates, in pipeline order.
_STAGES = {
    "ir": "raw loop IR (arrays, flags, body, bindings)",
    "chains": "post-analysis: lowered pointer chases and event chains",
    "config": "post-DCE/bounds: filter ranges, streams, tags, globals",
    "kernels": "generated kernels as PPU disassembly",
}


def _dump_stage(workload, stage: str) -> int:
    loop, bindings = workload.loop_ir()
    derived = workload.derived_kernels()
    if stage == "ir":
        print(pipeline.format_loop(loop, bindings))
    elif stage == "chains":
        print(pipeline.format_chains(derived))
    elif stage == "config":
        print(pipeline.format_bounds(derived))
    else:  # kernels
        if not derived.derived:
            print(f"{workload.name}: derivation produced no kernels", file=sys.stderr)
            for source, reason in derived.failures:
                print(f"  {source}: {reason}", file=sys.stderr)
            return 2
        print(pipeline.format_kernels(derived.configuration), end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("workload", nargs="?", help="registered workload name")
    parser.add_argument("--mode", default="manual", choices=sorted(_MODES),
                        help="which kernel configuration to dump (default: manual)")
    parser.add_argument("--kernel", default=None, metavar="NAME",
                        help="dump only the kernel with this name")
    parser.add_argument("--stage", default=None, choices=sorted(_STAGES),
                        help="dump a derivation-pipeline intermediate instead "
                             "of compiled closures: "
                             + "; ".join(f"{k} = {v}" for k, v in _STAGES.items()))
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "default"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list registered workloads and exit")
    args = parser.parse_args(argv)

    if args.list_workloads:
        for name in registry.names():
            print(name)
        return 0
    if not args.workload:
        parser.error("a workload name is required (or --list)")

    if args.workload not in registry.names():
        print(f"unknown workload {args.workload!r}; try --list", file=sys.stderr)
        return 2

    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)

    if args.stage is not None:
        try:
            return _dump_stage(workload, args.stage)
        except NotImplementedError:
            print(f"{args.workload} declares no loop IR", file=sys.stderr)
            return 2

    try:
        configuration = _MODES[args.mode](workload)
    except NotImplementedError:
        print(f"{args.workload} has no {args.mode} configuration", file=sys.stderr)
        return 2
    except WorkloadError as error:
        print(str(error), file=sys.stderr)
        return 2

    kernels = configuration.kernels
    if args.kernel is not None:
        if args.kernel not in kernels:
            print(
                f"kernel {args.kernel!r} not in {sorted(kernels)}", file=sys.stderr
            )
            return 2
        kernels = {args.kernel: kernels[args.kernel]}
    if not kernels:
        print(f"{args.workload}/{args.mode} registers no kernels", file=sys.stderr)
        return 2

    for index, (name, program) in enumerate(kernels.items()):
        if index:
            print()
        print(
            f"# kernel {name!r} — {len(program.instructions)} instructions, "
            f"{program.size_bytes} bytes, digest {program_digest(program)[:12]}"
        )
        print(generate_source(program), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
