#!/usr/bin/env python3
"""Print the compiled Python source of a workload's PPU kernels.

The kernel compiler (``repro.programmable.compiler``) turns each kernel into
a specialised Python closure; this tool shows exactly what was generated —
the debugging view for kernel authors.  For every kernel of the chosen
workload and configuration it prints the instruction listing's vital stats
(digest, instruction count, encoded bytes) followed by the generated source.

Examples::

    # All manual-mode kernels of the unionfind workload
    python tools/dump_kernel.py unionfind

    # One kernel, by name, from the pragma-generated configuration
    python tools/dump_kernel.py conjgrad --mode pragma --kernel cg_row_start

    # List registered workloads
    python tools/dump_kernel.py --list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.programmable.compiler import generate_source, program_digest  # noqa: E402
from repro.workloads import build_workload, registry  # noqa: E402

#: How each dumpable mode resolves to a prefetcher configuration.
_MODES = {
    "manual": lambda workload: workload.manual_configuration(),
    "converted": lambda workload: workload.converted_configuration(),
    "pragma": lambda workload: workload.pragma_configuration(),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("workload", nargs="?", help="registered workload name")
    parser.add_argument("--mode", default="manual", choices=sorted(_MODES),
                        help="which kernel configuration to dump (default: manual)")
    parser.add_argument("--kernel", default=None, metavar="NAME",
                        help="dump only the kernel with this name")
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "default"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list registered workloads and exit")
    args = parser.parse_args(argv)

    if args.list_workloads:
        for name in registry.names():
            print(name)
        return 0
    if not args.workload:
        parser.error("a workload name is required (or --list)")

    if args.workload not in registry.names():
        print(f"unknown workload {args.workload!r}; try --list", file=sys.stderr)
        return 2

    workload = build_workload(args.workload, scale=args.scale, seed=args.seed)
    try:
        configuration = _MODES[args.mode](workload)
    except NotImplementedError:
        print(f"{args.workload} has no {args.mode} configuration", file=sys.stderr)
        return 2

    kernels = configuration.kernels
    if args.kernel is not None:
        if args.kernel not in kernels:
            print(
                f"kernel {args.kernel!r} not in {sorted(kernels)}", file=sys.stderr
            )
            return 2
        kernels = {args.kernel: kernels[args.kernel]}
    if not kernels:
        print(f"{args.workload}/{args.mode} registers no kernels", file=sys.stderr)
        return 2

    for index, (name, program) in enumerate(kernels.items()):
        if index:
            print()
        print(
            f"# kernel {name!r} — {len(program.instructions)} instructions, "
            f"{program.size_bytes} bytes, digest {program_digest(program)[:12]}"
        )
        print(generate_source(program), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
