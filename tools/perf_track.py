#!/usr/bin/env python3
"""Measure the simulator's wall-clock performance and track it over time.

Runs the benchmark suite — ``simulate()`` on every registered paper workload
under the no-prefetch, stride and manual-programmable modes — records wall
time and ops/second per ``(workload, mode)`` point, and appends the snapshot
to the repository's ``BENCH_<n>.json`` trajectory.  The new snapshot is
diffed against the previous one (or any ``--against`` file) so every change
to the hot path has a measured before/after.

Examples::

    # Append the next BENCH_<n>.json at test (tiny) scale and diff vs previous
    python tools/perf_track.py --scale tiny

    # CI regression gate: measure, compare against the committed baseline,
    # fail when total wall time regressed by more than 30%
    python tools/perf_track.py --scale tiny --no-write \\
        --output /tmp/bench-ci.json --fail-threshold 0.30

    # One-off comparison against a specific snapshot
    python tools/perf_track.py --against BENCH_0.json --no-write
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.perf import (  # noqa: E402
    diff_snapshots,
    environment_matches,
    format_diff,
    format_snapshot,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    run_benchmarks,
    save_snapshot,
)
from repro.sim.modes import PrefetchMode  # noqa: E402
from repro.trace_store import trace_store_from_spec  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "default"],
                        help="workload scale to benchmark (default: tiny)")
    parser.add_argument("--workloads", default=None, metavar="A,B,...",
                        help="comma-separated workload subset (default: paper workloads)")
    parser.add_argument("--modes", default=None, metavar="M,N,...",
                        help="comma-separated prefetch modes (default: none,stride,manual)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="runs per point; the fastest is recorded (default: 3)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--dir", default=str(_REPO_ROOT), metavar="DIR",
                        help="trajectory directory holding BENCH_<n>.json (default: repo root)")
    parser.add_argument("--label", default="", help="free-form note stored in the snapshot")
    parser.add_argument("--trace-store", default=None, metavar="DIR|off",
                        help="trace-artifact store for the build phase: a directory, "
                             "'off' to disable, or unset for $REPRO_TRACE_STORE / the "
                             "per-user default (build_seconds then measures warm-store "
                             "decode instead of workload build + emission)")
    parser.add_argument("--against", default=None, metavar="PATH",
                        help="snapshot to diff against (default: latest BENCH_<n>.json)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and diff only; do not append to the trajectory")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write the snapshot to PATH (useful with --no-write)")
    parser.add_argument("--fail-threshold", type=float, default=None, metavar="FRAC",
                        help="exit non-zero when total wall time regressed by more than "
                             "FRAC (e.g. 0.30 = 30%%) against the comparison snapshot")
    args = parser.parse_args(argv)

    workloads = args.workloads.split(",") if args.workloads else None
    modes = (
        [PrefetchMode(value) for value in args.modes.split(",")]
        if args.modes
        else None
    )

    baseline_path = (
        Path(args.against)
        if args.against
        else latest_snapshot_path(args.dir, scale=args.scale)
    )

    kwargs = {}
    if modes is not None:
        kwargs["modes"] = modes
    if args.trace_store is not None:
        kwargs["trace_store"] = trace_store_from_spec(args.trace_store)
    snapshot = run_benchmarks(
        workloads=workloads,
        scale=args.scale,
        seed=args.seed,
        repeats=args.repeats,
        label=args.label,
        **kwargs,
    )
    print(format_snapshot(snapshot))

    exit_code = 0
    if baseline_path is not None and baseline_path.exists():
        baseline = load_snapshot(baseline_path)
        diff = diff_snapshots(baseline, snapshot)
        print()
        print(f"Compared against {baseline_path}:")
        print(format_diff(diff))
        if args.fail_threshold is not None and diff.diffs:
            regression = diff.total_new / diff.total_old - 1.0 if diff.total_old > 0 else 0.0
            if regression <= args.fail_threshold:
                print(
                    f"\nOK: total wall-time change {regression * 100:+.1f}% is within "
                    f"the {args.fail_threshold * 100:.0f}% regression threshold"
                )
            elif not environment_matches(baseline, snapshot):
                # A baseline recorded on different hardware (or interpreter)
                # measures the machine delta, not a code change — report,
                # but do not fail the gate.
                print(
                    f"\nADVISORY: total wall time {regression * 100:+.1f}% vs a baseline "
                    f"from a different environment ({baseline.machine}/py{baseline.python} "
                    f"vs {snapshot.machine}/py{snapshot.python}); not gating"
                )
            else:
                print(
                    f"\nFAIL: total wall time regressed by {regression * 100:.1f}% "
                    f"(threshold {args.fail_threshold * 100:.0f}%)",
                    file=sys.stderr,
                )
                exit_code = 1
    elif args.fail_threshold is not None:
        print("\nno baseline snapshot found; nothing to gate against")

    if not args.no_write:
        path = next_snapshot_path(args.dir)
        save_snapshot(snapshot, path)
        print(f"\nWrote {path}")
    if args.output:
        save_snapshot(snapshot, args.output)
        print(f"Wrote {args.output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
