#!/usr/bin/env python3
"""End-to-end smoke test of the high-availability service fabric.

Spawns **two** real daemon subprocesses peered with each other
(``--peer``, over UNIX sockets so the addresses are known before either
daemon starts), and asserts the HA contract:

1. warming daemon A and replaying the same plan against daemon B serves
   every request through peer replication (``peer_hits``), bit-identically
   and without executing anything on B;
2. ``repro status`` sees both daemons ready;
3. SIGKILLing daemon A mid-plan (on the first ``chunk-started`` event —
   work is provably in flight) makes the failover client complete the plan
   against B, bit-identical to a local serial run, with ``executed``
   proving no request ran twice from the caller's view;
4. after the kill the status table shows A unreachable and B still ready.

Used by the CI ``ha`` job; also a quick local fleet check::

    PYTHONPATH=src python tools/ha_smoke.py
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import (  # noqa: E402
    ServiceEngine,
    format_health_table,
    probe_endpoints,
    spawn_local_daemon,
)
from repro.sim.comparison import comparison_plan  # noqa: E402
from repro.sim.engine import SerialRunner, SimEngine  # noqa: E402


def main() -> int:
    with contextlib.ExitStack() as stack:
        scratch = Path(stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-ha-")
        ))
        addr_a = f"unix:{scratch / 'a.sock'}"
        addr_b = f"unix:{scratch / 'b.sock'}"
        daemon_args = ["--chunk-size", "2"]
        process_a, spawned_a = stack.enter_context(spawn_local_daemon(
            workers=1,
            extra_args=["--unix", addr_a[len("unix:"):], "--peer", addr_b, *daemon_args],
        ))
        process_b, spawned_b = stack.enter_context(spawn_local_daemon(
            workers=1,
            extra_args=["--unix", addr_b[len("unix:"):], "--peer", addr_a, *daemon_args],
        ))
        assert (spawned_a, spawned_b) == (addr_a, addr_b), (spawned_a, spawned_b)
        print(f"daemon A pid={process_a.pid} at {addr_a}")
        print(f"daemon B pid={process_b.pid} at {addr_b}")

        # 1) Warm A, then replay against B: pure peer replication.
        plan = lambda: comparison_plan(["intsort"], scale="tiny")  # noqa: E731
        engine_a = ServiceEngine(addr_a, timeout=600.0)
        cold = engine_a.run(plan())
        print(f"A cold: {cold.stats.summary()}")
        assert cold.stats.executed == cold.stats.unique - cold.stats.unavailable
        engine_a.close()

        engine_b = ServiceEngine(addr_b, timeout=600.0)
        replicated = engine_b.run(plan())
        print(f"B replicated: {replicated.stats.summary()}")
        assert replicated.stats.peer_hits > 0, "B must pull results from peer A"
        assert replicated.stats.executed == 0, "B must not re-execute warm work"
        assert {d: r.as_dict() for d, r in replicated.results.items()} == {
            d: r.as_dict() for d, r in cold.results.items()
        }, "peer-replicated results must be bit-identical"
        engine_b.close()

        # 2) Both daemons ready.
        reports = probe_endpoints([addr_a, addr_b], timeout=30.0)
        print(format_health_table(reports))
        assert all(report.ready for report in reports), "fleet must be ready"

        # 3) SIGKILL A on the first chunk-started of a fresh plan: the
        # failover engine completes it against B, bit-identically.
        reference = SimEngine(runner=SerialRunner()).run(
            comparison_plan(["randacc"], scale="tiny")
        )
        killed = False

        def kill_primary(event: dict) -> None:
            nonlocal killed
            if event.get("type") == "chunk-started" and not killed:
                killed = True
                os.kill(process_a.pid, signal.SIGKILL)
                print("SIGKILLed daemon A mid-plan")

        fleet = ServiceEngine(f"{addr_a},{addr_b}", timeout=600.0)
        survived = fleet.run(
            comparison_plan(["randacc"], scale="tiny"), on_event=kill_primary
        )
        print(f"failover run: {survived.stats.summary()}")
        assert killed, "the kill must have been triggered mid-plan"
        assert survived.stats.failed_over >= 1, "the client must have failed over"
        assert not survived.failures, survived.failures
        assert {d: r.as_dict() for d, r in survived.results.items()} == {
            d: r.as_dict() for d, r in reference.results.items()
        }, "failover results must be bit-identical to a local serial run"
        assert survived.stats.executed == survived.stats.unique - survived.stats.unavailable, (
            "every request must execute exactly once across the fleet"
        )
        fleet.close()

        # 4) The fleet's status reflects the kill.
        reports = probe_endpoints([addr_a, addr_b], timeout=30.0)
        print(format_health_table(reports))
        assert not reports[0].ok, "killed daemon A must be unreachable"
        assert reports[1].ready, "daemon B must still be ready"
    print("ha smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
