#!/usr/bin/env python3
"""Maintenance CLI for the run-manifest checkpoint directory.

Checkpointed sweeps (`docs/resilience.md`) leave one manifest file per plan
in the checkpoint directory, recording which requests completed.  Manifests
of finished sweeps are harmless — a fully-warm resume reads one and
executes nothing — but the directory only ever grows, so this tool provides
the hygiene commands (mirroring ``tools/trace_store.py``):

    # What progress records exist?
    python tools/checkpoints.py ls
    python tools/checkpoints.py stat

    # Drop manifests not touched in the last 30 days
    python tools/checkpoints.py prune --older-than 30

All commands accept ``--dir`` to operate on an explicit directory; the
default follows ``REPRO_CHECKPOINT_DIR`` and the per-user cache location,
exactly like the engine itself.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.sim.engine.checkpoint import (  # noqa: E402
    default_checkpoint_dir,
    manifest_paths,
    read_manifest,
)


def _summarise(path: Path) -> dict:
    """One ls/stat row: counts per status plus plan size and age."""

    data = read_manifest(path)
    row = {
        "path": path,
        "plan": path.name.split(".", 1)[0],
        "mtime": path.stat().st_mtime,
        "readable": data is not None,
        "requests": 0,
        "ok": 0,
        "unavailable": 0,
        "failed": 0,
    }
    if data is not None:
        row["requests"] = int(data.get("requests", 0))
        for entry in data["entries"].values():
            status = entry.get("status") if isinstance(entry, dict) else None
            if status in ("ok", "unavailable", "failed"):
                row[status] += 1
    return row


def cmd_ls(directory: Path) -> int:
    paths = manifest_paths(directory) if directory.is_dir() else []
    if not paths:
        print(f"{directory}: empty")
        return 0
    print(f"{'plan':<16} {'requests':>8} {'ok':>6} {'unavail':>8} {'failed':>7} "
          f"{'done':>6}  age")
    now = time.time()
    for path in paths:
        row = _summarise(path)
        if not row["readable"]:
            print(f"{row['plan'][:16]:<16} {'<unreadable>':>8}")
            continue
        recorded = row["ok"] + row["unavailable"] + row["failed"]
        done = 100.0 * recorded / row["requests"] if row["requests"] else 0.0
        age_days = (now - row["mtime"]) / 86400
        print(
            f"{row['plan'][:16]:<16} {row['requests']:>8} {row['ok']:>6} "
            f"{row['unavailable']:>8} {row['failed']:>7} {done:>5.0f}%  {age_days:.1f}d"
        )
    return 0


def cmd_stat(directory: Path) -> int:
    paths = manifest_paths(directory) if directory.is_dir() else []
    rows = [_summarise(path) for path in paths]
    complete = sum(
        1
        for row in rows
        if row["readable"]
        and row["requests"]
        and row["ok"] + row["unavailable"] + row["failed"] >= row["requests"]
        and not row["failed"]
    )
    print(f"directory:    {directory}")
    print(f"manifests:    {len(rows)} "
          f"({sum(1 for r in rows if not r['readable'])} unreadable)")
    print(f"complete:     {complete} (all requests ok/unavailable)")
    print(f"with failures:{sum(1 for r in rows if r['failed']):>2}")
    total = sum(row["path"].stat().st_size for row in rows)
    print(f"total size:   {total} B")
    return 0


def cmd_prune(directory: Path, older_than_days: float, dry_run: bool) -> int:
    cutoff = time.time() - older_than_days * 86400
    paths = manifest_paths(directory) if directory.is_dir() else []
    doomed = [path for path in paths if path.stat().st_mtime < cutoff]
    noun = "manifest" if len(doomed) == 1 else "manifests"
    if dry_run:
        print(f"would remove {len(doomed)} {noun} older than {older_than_days:g} days")
        return 0
    removed = 0
    for path in doomed:
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    print(f"removed {removed} {noun} older than {older_than_days:g} days")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help="checkpoint directory (default: $REPRO_CHECKPOINT_DIR "
                             "or the per-user cache directory)")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("ls", help="list every run manifest and its progress")
    commands.add_parser("stat", help="aggregate checkpoint statistics")
    prune = commands.add_parser("prune", help="remove manifests older than a window")
    prune.add_argument("--older-than", type=float, required=True, metavar="DAYS",
                       help="remove manifests not modified in the last DAYS days")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be removed without deleting")
    args = parser.parse_args(argv)

    directory = Path(args.dir) if args.dir else default_checkpoint_dir()
    if args.command == "ls":
        return cmd_ls(directory)
    if args.command == "stat":
        return cmd_stat(directory)
    return cmd_prune(directory, args.older_than, args.dry_run)


if __name__ == "__main__":
    raise SystemExit(main())
