#!/usr/bin/env python3
"""Maintenance CLI for the on-disk trace-artifact store.

The trace store (`docs/trace_store.md`) accumulates one compact binary file
per ``(workload, variant, scale, seed)`` trace, keyed by content digest.
Entries are invalidated implicitly — a source or format change produces new
digests and the old files simply stop being read — so the store only ever
grows.  This tool provides the hygiene commands (mirroring the ResultCache
conventions):

    # What is in the store?
    python tools/trace_store.py ls
    python tools/trace_store.py stat

    # Drop entries not touched in the last 30 days (stale digests)
    python tools/trace_store.py prune --older-than 30

    # Start over
    python tools/trace_store.py clear

All commands accept ``--dir`` to operate on an explicit store directory;
the default follows ``REPRO_TRACE_STORE`` and the per-user cache location,
exactly like the simulator itself.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.trace_store import (  # noqa: E402
    TraceStore,
    default_trace_store_dir,
)


def _open_store(args: argparse.Namespace) -> TraceStore | None:
    directory = Path(args.dir) if args.dir else default_trace_store_dir()
    if directory is None:
        print("trace store is disabled (REPRO_TRACE_STORE=off); pass --dir to "
              "operate on an explicit directory", file=sys.stderr)
        return None
    return TraceStore(directory)


def _format_size(size: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{size} B"
        size /= 1024
    return f"{size:.1f} GiB"  # pragma: no cover - unreachable


def cmd_ls(store: TraceStore) -> int:
    entries = store.entries(with_headers=True)
    if not entries:
        print(f"{store.directory}: empty")
        return 0
    print(f"{'digest':<16} {'workload':<12} {'variant':<9} {'scale':<8} "
          f"{'seed':>6} {'ops':>10} {'size':>10}  age")
    now = time.time()
    for entry in entries:
        header = entry.header or {}
        age_days = (now - entry.mtime) / 86400
        print(
            f"{entry.digest[:16]:<16} "
            f"{str(header.get('workload', '<unreadable>')):<12} "
            f"{str(header.get('variant', '-')):<9} "
            f"{str(header.get('scale', '-')):<8} "
            f"{str(header.get('seed', '-')):>6} "
            f"{str(header.get('ops', '-')):>10} "
            f"{_format_size(entry.size_bytes):>10}  {age_days:.1f}d"
        )
    return 0


def cmd_stat(store: TraceStore) -> int:
    stats = store.stat()
    print(f"directory:    {stats['directory']}")
    print(f"entries:      {stats['entries']} ({stats['unreadable']} unreadable)")
    print(f"total size:   {_format_size(int(stats['total_bytes']))}")
    per_workload = stats["per_workload"]
    if per_workload:
        print("per workload:")
        for name, count in per_workload.items():
            print(f"  {name:<14} {count}")
    return 0


def cmd_prune(store: TraceStore, older_than_days: float, dry_run: bool) -> int:
    cutoff_seconds = older_than_days * 86400
    if dry_run:
        now = time.time()
        doomed = [e for e in store.entries() if e.mtime < now - cutoff_seconds]
        print(f"would remove {len(doomed)} entr{'y' if len(doomed) == 1 else 'ies'} "
              f"older than {older_than_days:g} days")
        return 0
    removed = store.prune(older_than_seconds=cutoff_seconds)
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"older than {older_than_days:g} days")
    return 0


def cmd_clear(store: TraceStore) -> int:
    print(f"removed {store.clear()} entries from {store.directory}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help="store directory (default: $REPRO_TRACE_STORE or the "
                             "per-user cache directory)")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("ls", help="list every stored artifact")
    commands.add_parser("stat", help="aggregate store statistics")
    prune = commands.add_parser("prune", help="remove entries older than a window")
    prune.add_argument("--older-than", type=float, required=True, metavar="DAYS",
                       help="remove entries not modified in the last DAYS days")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be removed without deleting")
    commands.add_parser("clear", help="remove every stored artifact")
    args = parser.parse_args(argv)

    store = _open_store(args)
    if store is None:
        return 1
    if args.command == "ls":
        return cmd_ls(store)
    if args.command == "stat":
        return cmd_stat(store)
    if args.command == "prune":
        return cmd_prune(store, args.older_than, args.dry_run)
    return cmd_clear(store)


if __name__ == "__main__":
    raise SystemExit(main())
