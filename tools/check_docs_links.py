#!/usr/bin/env python3
"""Fail when any Markdown file contains a broken intra-repository link.

Scans every ``*.md`` file in the repository for inline Markdown links
(``[text](target)``) and reference definitions (``[label]: target``) and
verifies that each *relative* target resolves to an existing file or
directory.  External links (``http(s)://``, ``mailto:``) and pure anchors
(``#section``) are skipped; a ``path#anchor`` target is checked for the
path part only.

Used by the CI ``docs`` job and wrapped by ``tests/test_docs.py`` so broken
cross-links in docs/ fail the tier-1 suite too.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

#: Inline links, excluding images' alt text (the preceding ``!`` is allowed —
#: image targets are checked like any other link).
_INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
_FENCE = re.compile(r"^(```|~~~)")

_SKIP_DIRS = {".git", ".sim-cache", "__pycache__", ".pytest_cache", ".hypothesis"}


def _strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks and inline code spans (example links)."""

    kept: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(kept)


def iter_markdown_files(root: Path):
    """Yield the repository's Markdown files.

    Scoped to git-tracked files when ``root`` is a git checkout, so
    untracked scratch notes or vendored trees cannot fail the check; falls
    back to a filesystem walk (minus known junk directories) elsewhere —
    e.g. the unit tests' tmp_path trees.
    """

    tracked = subprocess.run(
        ["git", "-C", str(root), "ls-files", "-z", "--", "*.md"],
        capture_output=True,
    )
    if tracked.returncode == 0 and tracked.stdout:
        for name in sorted(tracked.stdout.decode("utf-8").split("\0")):
            if name and (root / name).exists():
                yield root / name
        return
    for path in sorted(root.rglob("*.md")):
        if not any(part in _SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: Path, root: Path) -> list[str]:
    """Return one error string per broken relative link in ``path``."""

    text = _strip_code_blocks(path.read_text(encoding="utf-8"))
    targets = _INLINE_LINK.findall(text) + _REFERENCE_DEF.findall(text)
    errors: list[str] = []
    for target in targets:
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        candidate = target.split("#", 1)[0]
        if not candidate:
            continue
        resolved = (root / candidate.lstrip("/")) if target.startswith("/") else (
            path.parent / candidate
        )
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def check_tree(root: Path) -> list[str]:
    """Check every Markdown file under ``root``; return all errors."""

    errors: list[str] = []
    for path in iter_markdown_files(root):
        errors.extend(check_file(path, root))
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    errors = check_tree(root)
    for error in errors:
        print(error, file=sys.stderr)
    checked = sum(1 for _ in iter_markdown_files(root))
    print(f"checked {checked} Markdown files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
