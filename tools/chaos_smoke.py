#!/usr/bin/env python3
"""Kill ``-9`` a sweep mid-run, resume it, and verify exactly-once execution.

The checkpoint tier's end-to-end smoke (see ``docs/resilience.md``): a
child process runs a small checkpointed plan; the parent waits until the
run manifest records at least one completed request, SIGKILLs the child —
the real signal, not an exception — and then re-runs the same command with
``--resume``.  It asserts:

1. the killed run left a parseable manifest and durable cache entries;
2. the resumed run executes only the missing requests (everything the
   manifest recorded is served from the cache);
3. the combined results are bit-identical to an uninterrupted run;
4. a second resume is fully warm and executes nothing.

Used by the CI ``chaos`` job; also a quick local health check::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SystemConfig  # noqa: E402
from repro.sim.engine import (  # noqa: E402
    ResultCache,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
)
from repro.sim.engine.checkpoint import manifest_paths, read_manifest  # noqa: E402

#: The sweep: small enough to finish in seconds, large enough that a kill
#: lands mid-run once the first completion is visible in the manifest.
PLAN_POINTS = [
    (workload, mode)
    for workload in ("intsort", "randacc")
    for mode in ("none", "stride")
]


def build_plan() -> SimPlan:
    config = SystemConfig.scaled()
    return SimPlan(
        SimRequest(workload=w, mode=m, scale="tiny", seed=3, config=config)
        for w, m in PLAN_POINTS
    )


def run_child(cache_dir: str, ckpt_dir: str, resume: bool) -> int:
    """Child mode: execute the checkpointed plan and print its stats."""

    engine = SimEngine(
        runner=SerialRunner(trace_store=None),
        cache=ResultCache(cache_dir),
        checkpoint_dir=ckpt_dir,
        resume=resume,
    )
    batch = engine.run(build_plan())
    print(json.dumps({
        "executed": batch.stats.executed,
        "resumed": batch.stats.resumed,
        "failed": batch.stats.failed,
        "results": {d: r.as_dict() for d, r in batch.results.items()},
        "skipped": sorted(batch.skipped),
    }))
    return 0


def spawn_child(cache_dir: str, ckpt_dir: str, resume: bool) -> subprocess.Popen:
    command = [sys.executable, __file__, "--child",
               "--cache", cache_dir, "--checkpoint", ckpt_dir]
    if resume:
        command.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parent.parent / "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.Popen(command, stdout=subprocess.PIPE, env=env, text=True)


def recorded_entries(ckpt_dir: str) -> int:
    paths = manifest_paths(ckpt_dir) if Path(ckpt_dir).is_dir() else []
    total = 0
    for path in paths:
        data = read_manifest(path)
        if data is not None:
            total += len(data["entries"])
    return total


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", action="store_true")
    parser.add_argument("--cache")
    parser.add_argument("--checkpoint")
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args()
    if args.child:
        return run_child(args.cache, args.checkpoint, args.resume)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        cache_dir = str(Path(scratch) / "cache")
        ckpt_dir = str(Path(scratch) / "ckpt")

        # An uninterrupted reference run, in separate directories.
        reference = SimEngine(runner=SerialRunner(trace_store=None)).run(build_plan())
        total = len(build_plan())

        # Phase 1: run until the manifest shows progress, then kill -9.
        victim = spawn_child(cache_dir, ckpt_dir, resume=False)
        deadline = time.monotonic() + 300.0
        while recorded_entries(ckpt_dir) < 1:
            if victim.poll() is not None:
                break  # tiny machine raced the whole plan: resume is warm
            assert time.monotonic() < deadline, "no manifest progress in time"
            time.sleep(0.005)
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=60)
            print(f"killed child pid={victim.pid} with SIGKILL")
            assert victim.returncode == -signal.SIGKILL
        banked = recorded_entries(ckpt_dir)
        print(f"manifest recorded {banked}/{total} requests at the kill point")
        assert banked >= 1

        # Phase 2: resume executes only the missing requests.
        resumer = spawn_child(cache_dir, ckpt_dir, resume=True)
        stats = json.loads(resumer.communicate(timeout=600)[0])
        assert resumer.returncode == 0
        print(f"resume: executed={stats['executed']} resumed={stats['resumed']}")
        assert stats["failed"] == 0
        # Every manifest entry was honored; a cache write that beat the
        # kill without its manifest record still serves as a cache hit, so
        # the resume never re-executes anything that completed.
        assert stats["resumed"] >= banked
        assert stats["executed"] <= total - stats["resumed"]
        assert stats["results"] == {
            d: r.as_dict() for d, r in reference.results.items()
        }, "resumed results must be bit-identical to an uninterrupted run"
        assert sorted(stats["skipped"]) == sorted(reference.skipped)

        # Phase 3: a second resume is fully warm.
        warm = spawn_child(cache_dir, ckpt_dir, resume=True)
        stats = json.loads(warm.communicate(timeout=600)[0])
        assert warm.returncode == 0
        assert stats["executed"] == 0, "warm resume must execute nothing"
        assert stats["resumed"] == total
        print("warm resume executed nothing")

    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
