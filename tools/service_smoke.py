#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro serve`` daemon.

Spawns a real daemon subprocess (``python -m repro.service``) with fresh
cache and trace-store directories, runs a tiny Figure 7 comparison plan
through the client library twice, and asserts the service contract:

1. the cold pass executes every unique point exactly once;
2. the warm pass is served entirely from the daemon's memo — zero
   simulations, bit-identical results;
3. the daemon drains cleanly on request and exits 0.

Used by the CI ``service`` job; also handy as a quick local health check::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceClient, ServiceEngine, spawn_local_daemon  # noqa: E402
from repro.sim.comparison import comparison_plan  # noqa: E402


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        cache_dir = str(Path(scratch) / "results")
        store_dir = str(Path(scratch) / "traces")
        process, address = spawn_local_daemon(
            workers=2, cache_dir=cache_dir, trace_store=store_dir
        )
        print(f"daemon pid={process.pid} at {address}")
        try:
            engine = ServiceEngine(address, timeout=600.0)

            cold = engine.run(comparison_plan(["intsort", "randacc"], scale="tiny"))
            print(f"cold: {cold.stats.summary()}")
            assert len(cold.results) > 0, "cold pass produced no results"
            assert cold.stats.executed == cold.stats.unique - cold.stats.unavailable, (
                "cold pass must simulate every available unique point once"
            )

            warm = engine.run(comparison_plan(["intsort", "randacc"], scale="tiny"))
            print(f"warm: {warm.stats.summary()}")
            assert warm.stats.executed == 0, "warm pass must simulate nothing"
            assert warm.stats.memo_hits == warm.stats.unique, (
                "warm pass must be served entirely from the daemon memo"
            )
            assert {d: r.as_dict() for d, r in warm.results.items()} == {
                d: r.as_dict() for d, r in cold.results.items()
            }, "warm results must be bit-identical to cold results"

            with ServiceClient(address) as probe:
                counters = probe.server_stats()
            assert counters["executed"] == cold.stats.executed, (
                f"daemon executed {counters['executed']} sims, "
                f"expected {cold.stats.executed}"
            )
            print(
                f"daemon counters: executed={counters['executed']} "
                f"memo_hits={counters['memo_hits']} "
                f"cache_hits={counters['cache_hits']} "
                f"submissions={counters['submissions']}"
            )

            engine.client.shutdown_server()
            engine.close()
            code = process.wait(timeout=120)
            assert code == 0, f"daemon exited with {code}"
            print("daemon drained and exited cleanly")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
