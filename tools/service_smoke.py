#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro serve`` daemon.

Spawns a real daemon subprocess (``python -m repro.service``) with fresh
cache and trace-store directories, runs a tiny Figure 7 comparison plan
through the client library twice, and asserts the service contract:

1. the cold pass executes every unique point exactly once;
2. the warm pass is served entirely from the daemon's memo — zero
   simulations, bit-identical results;
3. the protocol-v3 health probe (and the ``repro status`` table built on
   it) answers with a ready daemon;
4. the daemon drains cleanly on request and exits 0;
5. against a quota-limited daemon (``--max-inflight``), a pipelined second
   submission is rejected with ``retry_after``, and completes after
   backing off — the admission-control round-trip.

Used by the CI ``service`` job; also handy as a quick local health check::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SystemConfig  # noqa: E402
from repro.service import (  # noqa: E402
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceEngine,
    format_health_table,
    probe_endpoint,
    spawn_local_daemon,
)
from repro.sim.comparison import comparison_plan  # noqa: E402
from repro.sim.engine import SimRequest  # noqa: E402


def status_roundtrip(address: str) -> None:
    """Health probe + status table against a live, idle daemon."""

    report = probe_endpoint(address, timeout=30.0)
    assert report.ok, f"health probe failed: {report.error}"
    assert report.ready, f"idle daemon reported not ready: {report.status}"
    assert report.protocol == PROTOCOL_VERSION, report.protocol
    assert report.pool_generation == 0, "no worker should have crashed"
    table = format_health_table([report])
    assert address in table and "ok" in table, table
    print(table)


def quota_roundtrip() -> None:
    """Admission control: rejection, backoff, recovery — against a real daemon."""

    import time

    with spawn_local_daemon(
        workers=1, extra_args=["--max-inflight", "1", "--retry-after", "0.05"]
    ) as (process, address):
        print(f"quota daemon pid={process.pid} at {address}")
        config = SystemConfig.scaled()
        first = [
            SimRequest(workload="intsort", mode="none", scale="tiny", seed=seed,
                       config=config)
            for seed in range(1, 7)
        ]
        second = [SimRequest(workload="randacc", mode="none", scale="tiny", seed=9,
                             config=config)]
        with ServiceClient(address, timeout=600.0) as client:
            sid1 = client.submit_nowait(first)
            sid2 = client.submit_nowait(second)
            rejections = 0
            finished: dict[int, dict] = {}
            while sid1 not in finished or sid2 not in finished:
                event = client.read_event()
                kind = event.get("type")
                if kind == "rejected" and event.get("id") == sid2:
                    rejections += 1
                    time.sleep(float(event.get("retry_after") or 0.05))
                    sid2 = client.submit_nowait(second)
                elif kind == "done":
                    finished[event["id"]] = event
            assert rejections >= 1, (
                "the pipelined second submission must trip the in-flight quota"
            )
            for sid in (sid1, sid2):
                statuses = [o["status"] for o in finished[sid]["outcomes"]]
                assert all(s == "ok" for s in statuses), statuses
            counters = client.server_stats()
            assert counters["rejected_quota"] >= rejections
            print(
                f"quota: {rejections} rejection(s) honored, both submissions "
                f"completed (rejected_quota={counters['rejected_quota']})"
            )
            client.shutdown_server()
        code = process.wait(timeout=120)
        assert code == 0, f"quota daemon exited with {code}"


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        cache_dir = str(Path(scratch) / "results")
        store_dir = str(Path(scratch) / "traces")
        with spawn_local_daemon(
            workers=2, cache_dir=cache_dir, trace_store=store_dir
        ) as (process, address):
            print(f"daemon pid={process.pid} at {address}")
            status_roundtrip(address)
            engine = ServiceEngine(address, timeout=600.0)

            cold = engine.run(comparison_plan(["intsort", "randacc"], scale="tiny"))
            print(f"cold: {cold.stats.summary()}")
            assert len(cold.results) > 0, "cold pass produced no results"
            assert cold.stats.executed == cold.stats.unique - cold.stats.unavailable, (
                "cold pass must simulate every available unique point once"
            )

            warm = engine.run(comparison_plan(["intsort", "randacc"], scale="tiny"))
            print(f"warm: {warm.stats.summary()}")
            assert warm.stats.executed == 0, "warm pass must simulate nothing"
            assert warm.stats.memo_hits == warm.stats.unique, (
                "warm pass must be served entirely from the daemon memo"
            )
            assert {d: r.as_dict() for d, r in warm.results.items()} == {
                d: r.as_dict() for d, r in cold.results.items()
            }, "warm results must be bit-identical to cold results"

            with ServiceClient(address) as probe:
                counters = probe.server_stats()
            assert counters["executed"] == cold.stats.executed, (
                f"daemon executed {counters['executed']} sims, "
                f"expected {cold.stats.executed}"
            )
            print(
                f"daemon counters: executed={counters['executed']} "
                f"memo_hits={counters['memo_hits']} "
                f"cache_hits={counters['cache_hits']} "
                f"submissions={counters['submissions']}"
            )

            engine.client.shutdown_server()
            engine.close()
            code = process.wait(timeout=120)
            assert code == 0, f"daemon exited with {code}"
            print("daemon drained and exited cleanly")
    quota_roundtrip()
    print("service smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
