#!/usr/bin/env python3
"""Regenerate the golden-stats fingerprint file for the equivalence suite.

The golden file (``tests/data/golden_stats.json``) pins the complete
:class:`~repro.sim.results.SimulationResult` — cycles, instructions, every
core/hierarchy counter and (for programmable modes) the prefetcher engine
statistics — for **every registered workload × every available prefetch
mode** at test (tiny) scale.  ``tests/test_sim_integration.py`` asserts each
simulation reproduces its fingerprint *bit-for-bit*, which is the guard that
lets the hot-path code be restructured for speed without any risk of
silently changing the timing model.

Only run this tool when the timing model is *intentionally* changed (a new
feature or a deliberate model fix), never to "make the tests pass" after an
optimisation — an optimisation that changes any number is a bug::

    python tools/update_golden_stats.py          # rewrite the golden file
    python tools/update_golden_stats.py --check  # verify without writing
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import SystemConfig  # noqa: E402
from repro.sim.modes import PrefetchMode, mode_available  # noqa: E402
from repro.sim.system import simulate  # noqa: E402
from repro.workloads import build_workload, registry  # noqa: E402

#: Where the fingerprints live, relative to the repository root.
GOLDEN_PATH = _REPO_ROOT / "tests" / "data" / "golden_stats.json"

#: Fingerprinted scale and seed — the test suite's standard tiny scale.
SCALE = "tiny"
SEED = 42


def compute_golden_stats() -> dict[str, dict]:
    """Simulate every (workload, available mode) point and collect fingerprints."""

    config = SystemConfig.scaled()
    golden: dict[str, dict] = {}
    for name in registry.names():
        workload = build_workload(name, scale=SCALE, seed=SEED)
        for mode in PrefetchMode:
            if not mode_available(workload, mode):
                continue
            result = simulate(workload, mode, config)
            # JSON round-trip normalises containers (tuples -> lists) so the
            # stored fingerprint compares equal to a re-loaded one.
            golden[f"{name}/{mode.value}"] = json.loads(json.dumps(result.as_dict()))
    return golden


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed file instead of writing")
    parser.add_argument("--output", default=str(GOLDEN_PATH), metavar="PATH")
    args = parser.parse_args(argv)

    golden = compute_golden_stats()
    path = Path(args.output)

    if args.check:
        committed = json.loads(path.read_text(encoding="utf-8"))
        mismatched = sorted(
            key
            for key in set(committed) | set(golden)
            if committed.get(key) != golden.get(key)
        )
        for key in mismatched:
            print(f"MISMATCH: {key}", file=sys.stderr)
        print(f"checked {len(golden)} fingerprints: {len(mismatched)} mismatches")
        return 1 if mismatched else 0

    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(golden)} fingerprints to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
