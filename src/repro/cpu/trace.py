"""Dynamic instruction traces.

The workloads in :mod:`repro.workloads` do not run as native programs; they
run once in Python against the simulated address space and record the dynamic
stream of operations the real program would execute: loads and stores with
their virtual addresses and *data dependences*, blocks of arithmetic work,
branches, and (for the software-prefetch variants) prefetch instructions with
their address-generation overhead.

The dependence information is what lets the out-of-order core model recover
exactly as much memory-level parallelism as the real core could: a load that
depends on another load (pointer chasing, `C[B[A[x]]]`) cannot issue until the
first load's data returns, whereas independent loads overlap up to the
load-queue and MSHR limits.  This mirrors footnote 1 of the paper: the hash
join's list walk cannot be overlapped by the out-of-order core because each
load depends on the previous one.

Representation
--------------

A :class:`Trace` is backed by flat parallel arrays (:mod:`array` typecodes in
parentheses), not by a list of op objects:

* ``kinds`` (``'b'``) — one :class:`OpKind` code per op;
* ``addrs`` (``'q'``) — the virtual address (0 for non-memory ops);
* ``counts`` (``'q'``) — machine instructions represented by the op;
* ``dep_offsets`` (``'q'``, length ``len(trace) + 1``) — prefix offsets into
  ``dep_values``: op *i*'s dependences are
  ``dep_values[dep_offsets[i]:dep_offsets[i + 1]]``;
* ``dep_values`` (``'q'``) — the packed dependence indices of every op.

:meth:`Trace.columns` hands those arrays out directly — they *are* the native
representation, which is what the core's replay loop iterates and what the
on-disk :mod:`repro.trace_store` serialises (one ``tobytes()`` per column).
:class:`TraceOp` dataclasses are materialised only on demand (indexing,
iteration), so a trace costs ~25–40 bytes per dynamic op instead of the
several hundred the object-per-op form took, and pickling or encoding it is
a handful of buffer copies rather than millions of object walks.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, Sequence

from ..errors import TraceError

#: Array typecodes of the five flat columns, in :meth:`Trace.columns` order.
COLUMN_TYPECODES = ("b", "q", "q", "q", "q")


class OpKind(IntEnum):
    """Kinds of trace operations."""

    COMPUTE = 0
    LOAD = 1
    STORE = 2
    SOFTWARE_PREFETCH = 3
    BRANCH = 4
    CONFIG = 5


@dataclass(frozen=True)
class TraceOp:
    """A single dynamic operation.

    ``count`` is the number of machine instructions the op represents (only
    greater than one for :attr:`OpKind.COMPUTE` blocks); ``deps`` are indices
    of earlier ops whose results this op consumes.

    ``TraceOp`` is the *view* type: traces store flat columns and materialise
    these objects only when an op is indexed or iterated.
    """

    kind: OpKind
    addr: int = 0
    count: int = 1
    deps: tuple[int, ...] = ()


class Trace:
    """An in-memory dynamic trace, backed by flat parallel arrays."""

    __slots__ = ("_kinds", "_addrs", "_counts", "_dep_offsets", "_dep_values")

    def __init__(self, ops: Sequence[TraceOp] = ()) -> None:
        kinds = array("b")
        addrs = array("q")
        counts = array("q")
        dep_offsets = array("q", [0])
        dep_values = array("q")
        for op in ops:
            kinds.append(op.kind)
            addrs.append(op.addr)
            counts.append(op.count)
            dep_values.extend(op.deps)
            dep_offsets.append(len(dep_values))
        self._kinds = kinds
        self._addrs = addrs
        self._counts = counts
        self._dep_offsets = dep_offsets
        self._dep_values = dep_values

    @classmethod
    def from_columns(
        cls,
        kinds: array,
        addrs: array,
        counts: array,
        dep_offsets: array,
        dep_values: array,
    ) -> "Trace":
        """Adopt pre-built flat columns (no copy).

        The caller (the :class:`TraceBuilder`, the trace store's decoder)
        guarantees consistency: equal column lengths, ``dep_offsets`` of
        length ``len(kinds) + 1`` starting at 0 and ending at
        ``len(dep_values)``.  :meth:`validate` re-checks the dependence
        structure when asked.
        """

        n = len(kinds)
        if not (len(addrs) == len(counts) == n and len(dep_offsets) == n + 1):
            raise TraceError(
                f"inconsistent trace columns: {n} kinds, {len(addrs)} addrs, "
                f"{len(counts)} counts, {len(dep_offsets)} dep offsets"
            )
        if dep_offsets[0] != 0 or dep_offsets[-1] != len(dep_values):
            raise TraceError(
                f"dependence offsets do not span the value column: "
                f"[{dep_offsets[0]}, {dep_offsets[-1]}] vs {len(dep_values)} values"
            )
        trace = cls.__new__(cls)
        trace._kinds = kinds
        trace._addrs = addrs
        trace._counts = counts
        trace._dep_offsets = dep_offsets
        trace._dep_values = dep_values
        return trace

    def columns(self) -> tuple[array, array, array, array, array]:
        """Return ``(kinds, addrs, counts, dep_offsets, dep_values)``.

        This *is* the backing representation — five flat arrays, zero
        conversion cost.  Op *i*'s dependences are
        ``dep_values[dep_offsets[i]:dep_offsets[i + 1]]``; the core's replay
        loop walks ``dep_values`` with a running cursor instead of
        materialising a tuple per op.
        """

        return (
            self._kinds,
            self._addrs,
            self._counts,
            self._dep_offsets,
            self._dep_values,
        )

    def nbytes(self) -> int:
        """Bytes occupied by the backing arrays (the artifact-tier footprint)."""

        return sum(
            column.buffer_info()[1] * column.itemsize for column in self.columns()
        )

    def deps_of(self, index: int) -> tuple[int, ...]:
        """The dependence indices of op ``index`` as a tuple."""

        start = self._dep_offsets[index]
        end = self._dep_offsets[index + 1]
        return tuple(self._dep_values[start:end])

    def __len__(self) -> int:
        return len(self._kinds)

    def __iter__(self) -> Iterator[TraceOp]:
        dep_values = self._dep_values
        dep_offsets = self._dep_offsets
        start = 0
        for index, (kind, addr, count) in enumerate(
            zip(self._kinds, self._addrs, self._counts)
        ):
            end = dep_offsets[index + 1]
            yield TraceOp(
                OpKind(kind), addr=addr, count=count,
                deps=tuple(dep_values[start:end]),
            )
            start = end

    def __getitem__(self, index: int) -> TraceOp:
        if index < 0:
            index += len(self._kinds)
        if not 0 <= index < len(self._kinds):
            raise IndexError(f"trace index {index} out of range")
        return TraceOp(
            OpKind(self._kinds[index]),
            addr=self._addrs[index],
            count=self._counts[index],
            deps=self.deps_of(index),
        )

    @property
    def ops(self) -> list[TraceOp]:
        """The trace as a list of :class:`TraceOp` (materialised on demand)."""

        return list(self)

    # -------------------------------------------------------------- summaries

    def instruction_count(self) -> int:
        """Total dynamic machine instructions represented by the trace."""

        return sum(self._counts)

    def count_kind(self, kind: OpKind) -> int:
        code = int(kind)
        return sum(1 for k in self._kinds if k == code)

    def memory_op_count(self) -> int:
        load = int(OpKind.LOAD)
        store = int(OpKind.STORE)
        return sum(1 for k in self._kinds if k == load or k == store)

    def validate(self) -> None:
        """Check that every dependence points at an earlier op."""

        dep_offsets = self._dep_offsets
        dep_values = self._dep_values
        pos = 0
        for index in range(len(self._kinds)):
            end = dep_offsets[index + 1]
            while pos < end:
                dep = dep_values[pos]
                if dep < 0 or dep >= index:
                    raise TraceError(
                        f"op {index} depends on op {dep}, which is not an earlier op"
                    )
                pos += 1

    def summary(self) -> dict[str, int]:
        return {
            "ops": len(self),
            "instructions": self.instruction_count(),
            "loads": self.count_kind(OpKind.LOAD),
            "stores": self.count_kind(OpKind.STORE),
            "software_prefetches": self.count_kind(OpKind.SOFTWARE_PREFETCH),
            "branches": self.count_kind(OpKind.BRANCH),
            "compute_blocks": self.count_kind(OpKind.COMPUTE),
        }


class TraceBuilder:
    """Convenience builder used by the workloads to record their traces.

    Every emitting method returns the index of the new op, which later ops can
    pass as a dependence.  Example::

        tb = TraceBuilder()
        a = tb.load(addr_of_A)              # independent load
        b = tb.load(addr_of_B, deps=[a])    # dependent (indirect) load
        tb.compute(2, deps=[b])             # work on the loaded value

    The builder appends straight into the flat column arrays — no
    :class:`TraceOp` objects are allocated on the emission path.
    """

    def __init__(self) -> None:
        self._kinds = array("b")
        self._addrs = array("q")
        self._counts = array("q")
        self._dep_offsets = array("q", [0])
        self._dep_values = array("q")

    def _emit(self, kind: int, addr: int, count: int, deps: Iterable[int]) -> int:
        index = len(self._kinds)
        dep_values = self._dep_values
        before = len(dep_values)
        for dep in deps:
            if dep < 0 or dep >= index:
                del dep_values[before:]
                raise TraceError(
                    f"dependence {dep} does not refer to an earlier op "
                    f"(trace currently has {index} ops)"
                )
            dep_values.append(dep)
        self._kinds.append(kind)
        self._addrs.append(addr)
        self._counts.append(count)
        self._dep_offsets.append(len(dep_values))
        return index

    def load(self, addr: int, deps: Iterable[int] = ()) -> int:
        """Record a demand load of the word at ``addr``."""

        return self._emit(OpKind.LOAD, addr, 1, deps)

    def store(self, addr: int, deps: Iterable[int] = ()) -> int:
        """Record a store to the word at ``addr``."""

        return self._emit(OpKind.STORE, addr, 1, deps)

    def compute(self, count: int = 1, deps: Iterable[int] = ()) -> int:
        """Record ``count`` ALU instructions consuming the given results."""

        if count < 1:
            raise TraceError("compute blocks must contain at least one instruction")
        return self._emit(OpKind.COMPUTE, 0, count, deps)

    def branch(self, deps: Iterable[int] = ()) -> int:
        """Record a conditional branch depending on the given results."""

        return self._emit(OpKind.BRANCH, 0, 1, deps)

    def software_prefetch(self, addr: int, deps: Iterable[int] = ()) -> int:
        """Record an explicit software-prefetch instruction for ``addr``."""

        return self._emit(OpKind.SOFTWARE_PREFETCH, addr, 1, deps)

    def build(self) -> Trace:
        """Return the completed trace (adopting the builder's columns)."""

        return Trace.from_columns(
            self._kinds[:],
            self._addrs[:],
            self._counts[:],
            self._dep_offsets[:],
            self._dep_values[:],
        )

    def __len__(self) -> int:
        return len(self._kinds)
