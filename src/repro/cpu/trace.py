"""Dynamic instruction traces.

The workloads in :mod:`repro.workloads` do not run as native programs; they
run once in Python against the simulated address space and record the dynamic
stream of operations the real program would execute: loads and stores with
their virtual addresses and *data dependences*, blocks of arithmetic work,
branches, and (for the software-prefetch variants) prefetch instructions with
their address-generation overhead.

The dependence information is what lets the out-of-order core model recover
exactly as much memory-level parallelism as the real core could: a load that
depends on another load (pointer chasing, `C[B[A[x]]]`) cannot issue until the
first load's data returns, whereas independent loads overlap up to the
load-queue and MSHR limits.  This mirrors footnote 1 of the paper: the hash
join's list walk cannot be overlapped by the out-of-order core because each
load depends on the previous one.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, Sequence

from ..errors import TraceError


class OpKind(IntEnum):
    """Kinds of trace operations."""

    COMPUTE = 0
    LOAD = 1
    STORE = 2
    SOFTWARE_PREFETCH = 3
    BRANCH = 4
    CONFIG = 5


@dataclass(frozen=True)
class TraceOp:
    """A single dynamic operation.

    ``count`` is the number of machine instructions the op represents (only
    greater than one for :attr:`OpKind.COMPUTE` blocks); ``deps`` are indices
    of earlier ops whose results this op consumes.
    """

    kind: OpKind
    addr: int = 0
    count: int = 1
    deps: tuple[int, ...] = ()


class Trace:
    """An in-memory dynamic trace (a sequence of :class:`TraceOp`)."""

    def __init__(self, ops: Sequence[TraceOp]) -> None:
        self._ops = list(ops)
        self._columns: tuple[list[int], list[int], list[int], list[tuple[int, ...]]] | None = None

    def columns(self) -> tuple[list[int], list[int], list[int], list[tuple[int, ...]]]:
        """Return ``(kinds, addrs, counts, deps)`` as parallel flat lists.

        The structure-of-arrays view is what the core's replay loop iterates:
        plain-int kind codes and pre-extracted fields avoid four dataclass
        attribute chases per dynamic op.  Computed once and memoised — traces
        are immutable after construction and replayed once per mode.
        """

        if self._columns is None:
            ops = self._ops
            self._columns = (
                [int(op.kind) for op in ops],
                [op.addr for op in ops],
                [op.count for op in ops],
                [op.deps for op in ops],
            )
        return self._columns

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> TraceOp:
        return self._ops[index]

    @property
    def ops(self) -> list[TraceOp]:
        return self._ops

    # -------------------------------------------------------------- summaries

    def instruction_count(self) -> int:
        """Total dynamic machine instructions represented by the trace."""

        return sum(op.count for op in self._ops)

    def count_kind(self, kind: OpKind) -> int:
        return sum(1 for op in self._ops if op.kind == kind)

    def memory_op_count(self) -> int:
        return sum(1 for op in self._ops if op.kind in (OpKind.LOAD, OpKind.STORE))

    def validate(self) -> None:
        """Check that every dependence points at an earlier op."""

        for index, op in enumerate(self._ops):
            for dep in op.deps:
                if dep < 0 or dep >= index:
                    raise TraceError(
                        f"op {index} depends on op {dep}, which is not an earlier op"
                    )

    def summary(self) -> dict[str, int]:
        return {
            "ops": len(self._ops),
            "instructions": self.instruction_count(),
            "loads": self.count_kind(OpKind.LOAD),
            "stores": self.count_kind(OpKind.STORE),
            "software_prefetches": self.count_kind(OpKind.SOFTWARE_PREFETCH),
            "branches": self.count_kind(OpKind.BRANCH),
            "compute_blocks": self.count_kind(OpKind.COMPUTE),
        }


class TraceBuilder:
    """Convenience builder used by the workloads to record their traces.

    Every emitting method returns the index of the new op, which later ops can
    pass as a dependence.  Example::

        tb = TraceBuilder()
        a = tb.load(addr_of_A)              # independent load
        b = tb.load(addr_of_B, deps=[a])    # dependent (indirect) load
        tb.compute(2, deps=[b])             # work on the loaded value
    """

    def __init__(self) -> None:
        self._ops: list[TraceOp] = []

    def _emit(self, op: TraceOp) -> int:
        for dep in op.deps:
            if dep < 0 or dep >= len(self._ops):
                raise TraceError(
                    f"dependence {dep} does not refer to an earlier op "
                    f"(trace currently has {len(self._ops)} ops)"
                )
        self._ops.append(op)
        return len(self._ops) - 1

    def load(self, addr: int, deps: Iterable[int] = ()) -> int:
        """Record a demand load of the word at ``addr``."""

        return self._emit(TraceOp(OpKind.LOAD, addr=addr, deps=tuple(deps)))

    def store(self, addr: int, deps: Iterable[int] = ()) -> int:
        """Record a store to the word at ``addr``."""

        return self._emit(TraceOp(OpKind.STORE, addr=addr, deps=tuple(deps)))

    def compute(self, count: int = 1, deps: Iterable[int] = ()) -> int:
        """Record ``count`` ALU instructions consuming the given results."""

        if count < 1:
            raise TraceError("compute blocks must contain at least one instruction")
        return self._emit(TraceOp(OpKind.COMPUTE, count=count, deps=tuple(deps)))

    def branch(self, deps: Iterable[int] = ()) -> int:
        """Record a conditional branch depending on the given results."""

        return self._emit(TraceOp(OpKind.BRANCH, deps=tuple(deps)))

    def software_prefetch(self, addr: int, deps: Iterable[int] = ()) -> int:
        """Record an explicit software-prefetch instruction for ``addr``."""

        return self._emit(TraceOp(OpKind.SOFTWARE_PREFETCH, addr=addr, deps=tuple(deps)))

    def build(self) -> Trace:
        """Return the completed trace."""

        return Trace(self._ops)

    def __len__(self) -> int:
        return len(self._ops)
