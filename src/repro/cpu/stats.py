"""Re-export of the core statistics container.

:class:`~repro.cpu.core.CoreStats` is defined next to the core model; this
module exists so that ``from repro.cpu.stats import CoreStats`` reads
naturally in analysis code, mirroring :mod:`repro.memory.stats`.
"""

from .core import CoreStats

__all__ = ["CoreStats"]
