"""Out-of-order core timing model.

The core is an *interval-style* analytic model rather than a cycle-by-cycle
pipeline: each dynamic operation is processed once, in program order, and its
issue, execution and retirement times are derived from

* the front-end issue bandwidth (``issue_width`` instructions per cycle),
* the reorder-buffer window (an op cannot enter the window until the op
  ``rob_entries`` before it has retired),
* the load queue (bounded number of outstanding loads),
* its data dependences (an op executes only when all of its dependences have
  produced their results), and
* the memory hierarchy (loads ask :class:`~repro.memory.hierarchy.MemoryHierarchy`
  for their completion time, which is where cache hits, MSHR contention and
  DRAM latency enter).

This captures exactly the behaviour the paper's evaluation turns on: an
out-of-order core can overlap *independent* misses up to its window and MSHR
limits, but serialises dependent loads (pointer chasing), which is why the
irregular benchmarks are memory bound without help and why a prefetcher that
runs ahead of the dependence chain gives such large speedups.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..config import CoreConfig
from ..memory.hierarchy import MemoryHierarchy
from .trace import OpKind, Trace


@dataclass
class CoreStats:
    """Counters describing one simulated run of a trace."""

    cycles: float = 0.0
    instructions: int = 0
    ops: int = 0
    loads: int = 0
    stores: int = 0
    software_prefetches: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    load_latency_total: float = 0.0
    load_stall_total: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_total / self.loads if self.loads else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ops": self.ops,
            "loads": self.loads,
            "stores": self.stores,
            "software_prefetches": self.software_prefetches,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "ipc": self.ipc,
            "average_load_latency": self.average_load_latency,
        }


@dataclass
class OutOfOrderCore:
    """Interval timing model of the 3-wide out-of-order main core."""

    config: CoreConfig
    hierarchy: MemoryHierarchy
    stats: CoreStats = field(default_factory=CoreStats)

    def run(self, trace: Trace) -> CoreStats:
        """Simulate ``trace`` to completion and return the run statistics.

        This is the simulator's innermost loop — every dynamic op of every
        simulation funnels through it — so it is written flat: the trace is
        consumed as structure-of-arrays columns, all counters accumulate in
        locals (folded into :class:`CoreStats` once at the end), bound
        methods replace per-op attribute chases, and the three-way ``max``
        is unrolled.  The timing model itself is byte-for-byte the one
        documented above; the golden-stats suite pins its outputs.
        """

        config = self.config
        issue_width = config.issue_width
        rob_entries = config.rob_entries
        lq_entries = config.load_queue_entries
        alu_latency = config.int_alu_latency
        mispredict_penalty = config.branch_mispredict_penalty
        mispredict_every = (
            int(round(1.0 / config.branch_mispredict_rate))
            if config.branch_mispredict_rate > 0
            else 0
        )

        hierarchy = self.hierarchy
        demand_access = hierarchy.demand_access_time
        prefetch_access = hierarchy.prefetch_access

        # The trace's native representation is five flat ``array`` columns
        # (compact storage, cheap pickling/encoding), but CPython iterates
        # plain lists measurably faster than arrays — an array re-boxes an
        # int object on every subscript, a list hands out ready references.
        # One ``tolist()`` per column converts at C speed, and the lists are
        # dropped when this frame returns, so the artifact-tier memory win
        # is untouched.
        kinds, addrs, counts, dep_offsets, dep_values = (
            column.tolist() for column in trace.columns()
        )
        # ``dep_offsets`` has n+1 prefix offsets; op i's deps end at entry
        # i+1, so the shifted slice zips as a per-op "deps end" column and
        # the loop below never subscripts the offsets.
        dep_ends = dep_offsets[1:]
        kind_load = int(OpKind.LOAD)
        kind_store = int(OpKind.STORE)
        kind_swpf = int(OpKind.SOFTWARE_PREFETCH)
        kind_branch = int(OpKind.BRANCH)

        total_ops = len(kinds)
        completion: list[float] = []
        completion_append = completion.append
        retire_window: deque[float] = deque()
        retire_append = retire_window.append
        retire_popleft = retire_window.popleft
        retire_len = 0
        outstanding_loads: deque[float] = deque()
        loads_append = outstanding_loads.append
        loads_popleft = outstanding_loads.popleft
        loads_len = 0

        # Front-end model: a running "fetch clock" advanced by
        # instructions / width, plus the in-order-issue constraint that op i
        # cannot issue before op i-1.
        fetch_clock = 0.0
        previous_issue = 0.0
        last_retire = 0.0
        branch_counter = 0

        instructions = 0
        loads = 0
        stores = 0
        software_prefetches = 0
        branches = 0
        branch_mispredicts = 0
        load_latency_total = 0.0
        load_stall_total = 0.0

        # zip() iteration instead of per-op column __getitem__ calls; the
        # packed dependence column is consumed with a running cursor
        # (``dep_pos`` always equals the current op's dep_offsets entry), so
        # no per-op tuple — and, for the dep-free majority of ops, not even
        # an iterator — is ever materialised.  Completion times are recorded
        # by appending (op i completes in iteration i), which also drops the
        # enumerate bookkeeping from the loop.
        dep_pos = 0
        for kind, addr, count, dep_end in zip(kinds, addrs, counts, dep_ends):
            instructions += count

            # Reorder-buffer constraint: the window holds rob_entries ops.
            issue_time = fetch_clock
            if previous_issue > issue_time:
                issue_time = previous_issue
            if retire_len >= rob_entries:
                rob_ready = retire_window[0]
                if rob_ready > issue_time:
                    issue_time = rob_ready
            fetch_clock = issue_time + count / issue_width
            previous_issue = issue_time

            deps_ready = issue_time
            while dep_pos < dep_end:
                dep_time = completion[dep_values[dep_pos]]
                dep_pos += 1
                if dep_time > deps_ready:
                    deps_ready = dep_time

            if kind == kind_load:
                loads += 1
                # Load-queue constraint: a bounded number of loads in flight.
                if loads_len >= lq_entries:
                    lq_ready = loads_popleft()
                    loads_len -= 1
                    if lq_ready > deps_ready:
                        deps_ready = lq_ready
                complete = demand_access(addr, deps_ready)
                loads_append(complete)
                loads_len += 1
                latency = complete - deps_ready
                load_latency_total += latency
                if latency > alu_latency:
                    load_stall_total += latency
            elif kind == kind_store:
                stores += 1
                # Stores retire through the store buffer without stalling the
                # core; the cache access still happens for occupancy/traffic.
                demand_access(addr, deps_ready, write=True)
                complete = deps_ready + alu_latency
            elif kind == kind_swpf:
                software_prefetches += 1
                # Non-blocking: the prefetch is issued once its address is
                # ready; the instruction itself completes immediately.
                prefetch_access(addr, deps_ready)
                complete = deps_ready + alu_latency
            elif kind == kind_branch:
                branches += 1
                branch_counter += 1
                complete = deps_ready + alu_latency
                if mispredict_every and branch_counter % mispredict_every == 0:
                    branch_mispredicts += 1
                    # A mispredict flushes the front end: later ops cannot be
                    # fetched until the branch resolves plus the penalty.
                    flush_until = complete + mispredict_penalty
                    if flush_until > fetch_clock:
                        fetch_clock = flush_until
            else:  # COMPUTE (and CONFIG, which costs a single instruction)
                base = fetch_clock if fetch_clock > deps_ready else deps_ready
                complete = base + alu_latency

            completion_append(complete)

            if complete > last_retire:
                last_retire = complete
            retire_append(last_retire)
            retire_len += 1
            if retire_len > rob_entries:
                retire_popleft()
                retire_len -= 1

        stats = CoreStats(
            cycles=last_retire,
            instructions=instructions,
            ops=total_ops,
            loads=loads,
            stores=stores,
            software_prefetches=software_prefetches,
            branches=branches,
            branch_mispredicts=branch_mispredicts,
            load_latency_total=load_latency_total,
            load_stall_total=load_stall_total,
        )
        self.stats = stats
        return stats
