"""Out-of-order core timing model.

The core is an *interval-style* analytic model rather than a cycle-by-cycle
pipeline: each dynamic operation is processed once, in program order, and its
issue, execution and retirement times are derived from

* the front-end issue bandwidth (``issue_width`` instructions per cycle),
* the reorder-buffer window (an op cannot enter the window until the op
  ``rob_entries`` before it has retired),
* the load queue (bounded number of outstanding loads),
* its data dependences (an op executes only when all of its dependences have
  produced their results), and
* the memory hierarchy (loads ask :class:`~repro.memory.hierarchy.MemoryHierarchy`
  for their completion time, which is where cache hits, MSHR contention and
  DRAM latency enter).

This captures exactly the behaviour the paper's evaluation turns on: an
out-of-order core can overlap *independent* misses up to its window and MSHR
limits, but serialises dependent loads (pointer chasing), which is why the
irregular benchmarks are memory bound without help and why a prefetcher that
runs ahead of the dependence chain gives such large speedups.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..config import CoreConfig
from ..memory.hierarchy import MemoryHierarchy
from .trace import OpKind, Trace


@dataclass
class CoreStats:
    """Counters describing one simulated run of a trace."""

    cycles: float = 0.0
    instructions: int = 0
    ops: int = 0
    loads: int = 0
    stores: int = 0
    software_prefetches: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    load_latency_total: float = 0.0
    load_stall_total: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_total / self.loads if self.loads else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ops": self.ops,
            "loads": self.loads,
            "stores": self.stores,
            "software_prefetches": self.software_prefetches,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "ipc": self.ipc,
            "average_load_latency": self.average_load_latency,
        }


@dataclass
class OutOfOrderCore:
    """Interval timing model of the 3-wide out-of-order main core."""

    config: CoreConfig
    hierarchy: MemoryHierarchy
    stats: CoreStats = field(default_factory=CoreStats)

    def run(self, trace: Trace) -> CoreStats:
        """Simulate ``trace`` to completion and return the run statistics."""

        config = self.config
        hierarchy = self.hierarchy
        stats = CoreStats()

        issue_width = config.issue_width
        rob_entries = config.rob_entries
        lq_entries = config.load_queue_entries
        mispredict_every = (
            int(round(1.0 / config.branch_mispredict_rate))
            if config.branch_mispredict_rate > 0
            else 0
        )

        completion: list[float] = [0.0] * len(trace)
        retire_window: deque[float] = deque()
        outstanding_loads: deque[float] = deque()

        # Front-end model: a running "fetch clock" advanced by
        # instructions / width, plus the in-order-issue constraint that op i
        # cannot issue before op i-1.
        fetch_clock = 0.0
        previous_issue = 0.0
        last_retire = 0.0
        branch_counter = 0

        for index, op in enumerate(trace.ops):
            stats.ops += 1
            stats.instructions += op.count

            # Reorder-buffer constraint: the window holds rob_entries ops.
            rob_ready = retire_window[0] if len(retire_window) >= rob_entries else 0.0

            issue_time = max(fetch_clock, previous_issue, rob_ready)
            fetch_clock = issue_time + op.count / issue_width
            previous_issue = issue_time

            deps_ready = issue_time
            for dep in op.deps:
                dep_time = completion[dep]
                if dep_time > deps_ready:
                    deps_ready = dep_time

            kind = op.kind
            if kind == OpKind.LOAD:
                stats.loads += 1
                # Load-queue constraint: a bounded number of loads in flight.
                if len(outstanding_loads) >= lq_entries:
                    lq_ready = outstanding_loads.popleft()
                    if lq_ready > deps_ready:
                        deps_ready = lq_ready
                result = hierarchy.demand_access(op.addr, deps_ready)
                complete = result.completion_time
                outstanding_loads.append(complete)
                stats.load_latency_total += complete - deps_ready
                if complete - deps_ready > self.config.int_alu_latency:
                    stats.load_stall_total += complete - deps_ready
            elif kind == OpKind.STORE:
                stats.stores += 1
                # Stores retire through the store buffer without stalling the
                # core; the cache access still happens for occupancy/traffic.
                hierarchy.demand_access(op.addr, deps_ready, write=True)
                complete = deps_ready + config.int_alu_latency
            elif kind == OpKind.SOFTWARE_PREFETCH:
                stats.software_prefetches += 1
                # Non-blocking: the prefetch is issued once its address is
                # ready; the instruction itself completes immediately.
                hierarchy.prefetch_access(op.addr, deps_ready)
                complete = deps_ready + config.int_alu_latency
            elif kind == OpKind.BRANCH:
                stats.branches += 1
                branch_counter += 1
                complete = deps_ready + config.int_alu_latency
                if mispredict_every and branch_counter % mispredict_every == 0:
                    stats.branch_mispredicts += 1
                    # A mispredict flushes the front end: later ops cannot be
                    # fetched until the branch resolves plus the penalty.
                    fetch_clock = max(fetch_clock, complete + config.branch_mispredict_penalty)
            else:  # COMPUTE (and CONFIG, which costs a single instruction)
                complete = max(fetch_clock, deps_ready) + config.int_alu_latency

            completion[index] = complete

            retire_time = max(complete, last_retire)
            last_retire = retire_time
            retire_window.append(retire_time)
            if len(retire_window) > rob_entries:
                retire_window.popleft()

        stats.cycles = last_retire
        self.stats = stats
        return stats
