"""Main-core model: dynamic traces and the out-of-order timing model."""

from .core import CoreStats, OutOfOrderCore
from .trace import OpKind, Trace, TraceBuilder, TraceOp

__all__ = [
    "OpKind",
    "Trace",
    "TraceBuilder",
    "TraceOp",
    "OutOfOrderCore",
    "CoreStats",
]
