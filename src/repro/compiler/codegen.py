"""Code generation: prefetch chains → PPU kernels + prefetcher configuration.

For every :class:`~repro.compiler.split.PrefetchChain` the generator emits

* an *on-load* kernel for the chain's root array: it recovers the current
  loop index from the observed virtual address (``(vaddr - base) / size``),
  adds the look-ahead distance (taken from the EWMA calculators, seeded with
  the software prefetch's constant distance when one was present), and
  prefetches the root element that far ahead, tagged so the fill triggers the
  next event;
* one *on-fill* kernel per intermediate step: it reads the returned word
  (``get_data()``), applies the step's index arithmetic, and prefetches into
  the next array, again tagged if there is a further step; and
* the configuration instructions the main program must run before the loop:
  the root array's address bounds in the filter table (with iteration timing
  and chain-start flags for the EWMAs), global registers for every
  loop-invariant parameter the kernels use, the memory-request tags for the
  intermediate fills, and a chain-end entry for the final array when its
  bounds are known.

This is Section 6.3 of the paper, retargeted from LLVM IR to the kernel ISA in
:mod:`repro.programmable.kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from ..errors import CompilationError
from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder, Reg
from .bounds import infer_bounds
from .ir import ArrayDecl, BinOp, Constant, IndexVar, Load, Loop, Param, Value
from .split import Incoming, PrefetchChain


@dataclass
class CompiledPrefetchProgram:
    """The output of a compiler pass for one loop."""

    loop_name: str
    configuration: PrefetcherConfiguration
    chains: list[PrefetchChain] = field(default_factory=list)
    converted_sources: list[str] = field(default_factory=list)
    failures: list[tuple[str, str]] = field(default_factory=list)
    #: Per-iteration main-core instructions removed by dead-code elimination
    #: of the converted software prefetches (see :mod:`repro.compiler.dce`).
    removed_main_instructions: int = 0

    @property
    def converted(self) -> bool:
        return bool(self.chains)

    def summary(self) -> dict[str, object]:
        return {
            "loop": self.loop_name,
            "chains": [chain.arrays for chain in self.chains],
            "converted_sources": list(self.converted_sources),
            "failures": list(self.failures),
            "kernels": sorted(self.configuration.kernels),
            "removed_main_instructions": self.removed_main_instructions,
        }


# --------------------------------------------------------------- expressions


def _element_shift(array: ArrayDecl) -> int:
    size = array.element_bytes
    if size & (size - 1):
        raise CompilationError(f"array {array.name!r}: element size {size} is not a power of two")
    return size.bit_length() - 1


def _emit_expr(
    builder: KernelBuilder,
    value: Value,
    configuration: PrefetcherConfiguration,
    *,
    incoming: Optional[Reg],
    index_from_vaddr: Optional[Reg],
) -> Union[Reg, int]:
    """Lower an index expression to kernel code; returns a register or immediate."""

    if isinstance(value, Constant):
        return value.value
    if isinstance(value, Param):
        return builder.get_global(configuration.global_index(value.name))
    if isinstance(value, Incoming):
        if incoming is None:
            raise CompilationError("expression uses incoming data but none is available")
        return incoming
    if isinstance(value, IndexVar):
        if index_from_vaddr is None:
            raise CompilationError("expression uses the induction variable outside the root event")
        return index_from_vaddr
    if isinstance(value, BinOp):
        lhs = _emit_expr(
            builder, value.lhs, configuration, incoming=incoming, index_from_vaddr=index_from_vaddr
        )
        rhs = _emit_expr(
            builder, value.rhs, configuration, incoming=incoming, index_from_vaddr=index_from_vaddr
        )
        emit = {
            "add": builder.add,
            "sub": builder.sub,
            "mul": builder.mul,
            "and": builder.and_,
            "or": builder.or_,
            "xor": builder.xor,
            "shl": builder.shl,
            "shr": builder.shr,
        }[value.op]
        return emit(lhs, rhs)
    if isinstance(value, Load):
        raise CompilationError(
            "a load survived into code generation; the dependence split is incomplete"
        )
    raise CompilationError(f"cannot lower IR value {value!r}")


# -------------------------------------------------------------------- chains


def generate_configuration(
    loop: Loop,
    chains: list[PrefetchChain],
    bindings: Mapping[str, int],
    *,
    kernel_prefix: str,
    default_distance: int = 4,
    configuration: Optional[PrefetcherConfiguration] = None,
) -> CompiledPrefetchProgram:
    """Emit kernels and configuration for ``chains`` of ``loop``.

    ``configuration`` lets a caller pre-populate the target configuration
    (the manual derivation pipeline registers pointer-chase walker kernels
    and their tags first, so a chain's final prefetch can re-trigger them);
    by default a fresh configuration is created.
    """

    if configuration is None:
        configuration = PrefetcherConfiguration()
    program = CompiledPrefetchProgram(loop_name=loop.name, configuration=configuration)

    for chain_index, chain in enumerate(chains):
        try:
            _generate_chain(
                loop,
                chain,
                chain_index,
                bindings,
                configuration,
                kernel_prefix=kernel_prefix,
                default_distance=default_distance,
            )
        except CompilationError as error:
            program.failures.append((chain.source, str(error)))
            continue
        program.chains.append(chain)
        program.converted_sources.append(chain.source)

    configuration.validate()
    return program


def _collect_params(value: Value, into: set[str]) -> None:
    if isinstance(value, Param):
        into.add(value.name)
    for operand in value.operands():
        _collect_params(operand, into)


def _generate_chain(
    loop: Loop,
    chain: PrefetchChain,
    chain_index: int,
    bindings: Mapping[str, int],
    configuration: PrefetcherConfiguration,
    *,
    kernel_prefix: str,
    default_distance: int,
) -> None:
    if not chain.steps:
        raise CompilationError("empty prefetch chain")

    steps = chain.steps
    root = steps[0]
    stream_name = (
        chain.stream_name if chain.stream_name is not None else f"{kernel_prefix}_c{chain_index}"
    )
    if chain.distance_hint is not None:
        seed_distance = chain.distance_hint
    else:
        seed_distance = chain.root_distance if chain.root_distance > 0 else default_distance
    configuration.add_stream(stream_name, default_distance=seed_distance)

    # Global registers: every array base plus every parameter used in index
    # arithmetic (hash masks, shifts, table sizes, ...).
    params: set[str] = set()
    for step in steps:
        params.add(step.array.base_param)
        _collect_params(step.index_expr, params)
    for name in sorted(params):
        if name not in bindings:
            raise CompilationError(f"parameter {name!r} is not bound to a runtime value")
        configuration.set_global(name, int(bindings[name]))

    # Memory-request tags: one per fill that must trigger a follow-on event.
    tag_names: list[Optional[str]] = []
    for step_index in range(len(steps)):
        if step_index < len(steps) - 1:
            tag_names.append(f"{stream_name}_s{step_index}")
        else:
            tag_names.append(None)

    # Kernels.  Kernel 0 runs on demand loads of the root array; kernel i>0
    # runs when the fill carrying tag i-1 returns.
    kernel_names: list[str] = []
    for step_index, step in enumerate(steps):
        name = f"{stream_name}_e{step_index}"
        kernel_names.append(name)

    for step_index, step in enumerate(steps):
        builder = KernelBuilder(kernel_names[step_index])
        next_tag = -1
        if tag_names[step_index] is not None:
            next_tag = configuration.add_tag(
                tag_names[step_index],
                kernel_names[step_index + 1],
                stream=stream_name,
                chain_end=False,
            )
        elif chain.final_tag is not None:
            # The chain feeds a pre-registered follow-on kernel (a pointer-
            # chase walker): tag the final prefetch so its fill re-triggers.
            next_tag = chain.final_tag

        if step_index == 0:
            _emit_root_kernel(
                builder, chain, configuration, stream_name, next_tag, loop
            )
        else:
            _emit_fill_kernel(builder, steps[step_index], configuration, next_tag)
        configuration.add_kernel(builder.build())

    # Filter-table entry for the root array: trigger the on-load kernel, feed
    # the iteration-time EWMA, and start the timed chain.
    root_bounds = infer_bounds(root.array, loop, bindings)
    configuration.add_range(
        f"{stream_name}_{root.array.name}",
        root_bounds[0],
        root_bounds[1],
        load_kernel=kernel_names[0],
        stream=stream_name,
        time_iterations=True,
        chain_start=True,
    )

    # Chain-end entry for the final array, when its bounds are known, so the
    # chain-latency EWMA gets its samples.
    final = steps[-1]
    if len(steps) > 1 and not chain.suppress_chain_end:
        try:
            final_bounds = infer_bounds(final.array, loop, bindings, allow_trip_count=False)
        except CompilationError:
            final_bounds = None
        if final_bounds is not None:
            configuration.add_range(
                f"{stream_name}_{final.array.name}_end",
                final_bounds[0],
                final_bounds[1],
                stream=stream_name,
                chain_end=True,
            )


def _emit_root_kernel(
    builder: KernelBuilder,
    chain: PrefetchChain,
    configuration: PrefetcherConfiguration,
    stream_name: str,
    next_tag: int,
    loop: Loop,
) -> None:
    """Kernel triggered by a demand load to the root array."""

    root = chain.root
    shift = _element_shift(root.array)
    base = builder.get_global(configuration.global_index(root.array.base_param))
    vaddr = builder.get_vaddr()
    index = builder.shr(builder.sub(vaddr, base), shift)
    lookahead = builder.get_lookahead(configuration.stream_index(stream_name))
    target_index = builder.add(index, lookahead)
    target_addr = builder.add(base, builder.shl(target_index, shift))
    builder.prefetch(target_addr, tag=next_tag)


def _emit_fill_kernel(
    builder: KernelBuilder,
    step,
    configuration: PrefetcherConfiguration,
    next_tag: int,
) -> None:
    """Kernel triggered by the fill of the previous step's prefetch."""

    shift = _element_shift(step.array)
    incoming = builder.get_data()
    index = _emit_expr(
        builder, step.index_expr, configuration, incoming=incoming, index_from_vaddr=None
    )
    base = builder.get_global(configuration.global_index(step.array.base_param))
    if isinstance(index, int):
        offset: Union[Reg, int] = index << shift if index >= 0 else index
        address = builder.add(base, offset)
    else:
        address = builder.add(base, builder.shl(index, shift))
    builder.prefetch(address, tag=next_tag)
