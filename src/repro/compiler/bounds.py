"""Array bounds detection (Section 6.2).

The prefetcher's filter table needs the virtual-address bounds of every array
that triggers events.  For typed arrays the length is declared and the bounds
are trivial; for pointer-style arrays the pass falls back to the loop's trip
count (the loop-invariant termination condition), which is valid for arrays
walked directly by the induction variable.  When neither is available the
conversion fails for that array.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import CompilationError
from .ir import ArrayDecl, Loop


def infer_bounds(
    array: ArrayDecl,
    loop: Loop,
    bindings: Mapping[str, int],
    *,
    allow_trip_count: bool = True,
) -> tuple[int, int]:
    """Return ``(base, end)`` virtual addresses for ``array``.

    ``bindings`` maps parameter names to their runtime values (array bases,
    lengths, the loop trip count) — the information the configuration
    instructions carry at run time.
    """

    if array.base_param not in bindings:
        raise CompilationError(
            f"array {array.name!r}: base parameter {array.base_param!r} is not bound"
        )
    base = int(bindings[array.base_param])

    length: Optional[int] = None
    if array.length is not None:
        length = int(array.length)
    elif array.length_param is not None and array.length_param in bindings:
        length = int(bindings[array.length_param])
    elif allow_trip_count and loop.trip_count_param is not None and loop.trip_count_param in bindings:
        length = int(bindings[loop.trip_count_param])

    if length is None or length <= 0:
        raise CompilationError(
            f"array {array.name!r}: bounds cannot be determined (no declared length, "
            "no length parameter, and no loop-invariant trip count)"
        )
    return base, base + length * array.element_bytes
