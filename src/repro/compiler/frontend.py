"""Restricted-Python front end: a plain traversal function → loop IR.

Workloads no longer need to build :mod:`repro.compiler.ir` graphs by hand;
they write the traversal loop body as an ordinary Python function and
:func:`parse_loop` turns it into a :class:`~repro.compiler.ir.Loop`::

    from repro.compiler.frontend import compute, parse_loop, prefetch

    def traversal(j, col_idx, vals, x):
        prefetch(x[col_idx[j + 16]], stream="spmv_col_idx", distance=8)
        gather = x[col_idx[j]]
        value = vals[j]
        compute(2, gather, value)

    loop = parse_loop(traversal, name="spmv", arrays=[...], ...)

The function is **parsed, never executed** — ``prefetch`` and ``compute``
exist only so the traversal reads as normal Python.  The first parameter is
the loop induction variable; every further parameter names a declared array.

Supported statement forms (anything else raises
:class:`~repro.errors.CompilationError` with the offending line):

``prefetch(array[index], distance=…, stream=…, chain_end=…, name=…)``
    A software prefetch.  The keyword hints become the corresponding
    :class:`~repro.compiler.ir.SoftwarePrefetchStmt` hint fields, which the
    derivation pipeline honours and the conversion/pragma passes ignore.

``name = array[index]`` / bare ``array[index]``
    A demand load.  Assignment binds the loaded value to ``name``; later uses
    of ``name`` share the same IR node, exactly like an SSA value.

``compute(n, value, …)``
    ``n`` arithmetic instructions consuming previously bound loads.

``for v in range(start, end): …``
    A data-dependent inner loop (an edge walk).  Loads in the body are marked
    control-dependent — out of reach of both compiler passes — and ``v`` is
    bound to the lowered ``start`` expression, preserving the dependence
    chain through the bound.  ``end`` is control flow only and is discarded.

``while array[x] != x: x = array[x]``
    A pointer chase to a self-rooted element.  Lowered to a
    control-dependent load of ``array[x]`` plus a
    :class:`~repro.compiler.ir.PointerChaseStmt`, which the derivation
    pipeline turns into a self-re-triggering walker kernel.

Index expressions may use the induction variable, integer constants, bound
load values, nested subscripts (producing a fresh
:class:`~repro.compiler.ir.Load` per occurrence) and the operators
``+ - * & | ^ << >>``; any other name is treated as a loop-invariant
:class:`~repro.compiler.ir.Param` (hash masks, table sizes, …).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Mapping, Optional, Sequence, Union

from ..errors import CompilationError
from .ir import (
    ArrayDecl,
    BinOp,
    ComputeStmt,
    Constant,
    IndexVar,
    Load,
    LoadStmt,
    Loop,
    Param,
    PointerChaseStmt,
    SoftwarePrefetchStmt,
    Value,
)

# ------------------------------------------------------------------- markers


def prefetch(target, *, distance=None, stream=None, chain_end=None, name=None):  # pragma: no cover
    """Marker for a software prefetch inside a traversal function.

    Only meaningful to :func:`parse_loop`; calling it at run time is an error
    because traversal functions are parsed, never executed.
    """

    raise CompilationError(
        "prefetch() marks a software prefetch inside a traversal function; "
        "traversal functions are parsed by parse_loop(), not executed"
    )


def compute(count, *values):  # pragma: no cover
    """Marker for arithmetic work inside a traversal function."""

    raise CompilationError(
        "compute() marks arithmetic work inside a traversal function; "
        "traversal functions are parsed by parse_loop(), not executed"
    )


_BINOPS: dict[type, str] = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.BitAnd: "and",
    ast.BitOr: "or",
    ast.BitXor: "xor",
    ast.LShift: "shl",
    ast.RShift: "shr",
}


# -------------------------------------------------------------------- parsing


def parse_loop(
    traversal: Union[Callable, str],
    *,
    name: str,
    arrays: Sequence[ArrayDecl],
    trip_count_param: Optional[str] = None,
    pragma_prefetch: bool = False,
    constants: Optional[Mapping[str, int]] = None,
) -> Loop:
    """Parse a traversal function (or its source) into a :class:`Loop`.

    Args:
        traversal: The traversal function, or its source code as a string.
        name: Loop name (diagnostics and kernel prefixes).
        arrays: Declarations for every array the traversal touches; each
            array parameter of the function must match one by name.
        trip_count_param: Parameter holding the loop trip count.
        pragma_prefetch: Mark the loop as ``#pragma prefetch`` annotated.
        constants: Names lowered to compile-time constants (e.g. a module's
            ``SOFTWARE_PREFETCH_DISTANCE``) rather than runtime parameters.

    Returns:
        The lowered loop.  ``has_irregular_control_flow`` is set
        automatically when the body contains a ``for``/``while``.
    """

    function = _function_def(traversal)
    parameters = [arg.arg for arg in function.args.args]
    if not parameters:
        raise CompilationError(
            f"traversal {function.name!r} needs at least the induction-variable parameter"
        )
    arrays_by_name = {array.name: array for array in arrays}
    if len(arrays_by_name) != len(arrays):
        raise CompilationError("duplicate array declarations")
    for parameter in parameters[1:]:
        if parameter not in arrays_by_name:
            raise CompilationError(
                f"traversal {function.name!r}: parameter {parameter!r} does not match "
                f"any declared array (expected one of {sorted(arrays_by_name)})"
            )

    loop = Loop(
        name,
        IndexVar(parameters[0]),
        trip_count_param=trip_count_param,
        arrays=list(arrays),
        pragma_prefetch=pragma_prefetch,
    )
    parser = _LoopParser(loop, arrays_by_name, constants=constants)
    parser.parse_block(function.body, control_dependent=False)
    return loop


def _function_def(traversal: Union[Callable, str]) -> ast.FunctionDef:
    if callable(traversal):
        try:
            source = inspect.getsource(traversal)
        except (OSError, TypeError) as error:
            raise CompilationError(
                f"cannot read the source of {traversal!r}; pass the source string instead"
            ) from error
    else:
        source = traversal
    try:
        module = ast.parse(textwrap.dedent(source))
    except SyntaxError as error:
        raise CompilationError(f"traversal function does not parse: {error}") from error
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise CompilationError("no function definition found in the traversal source")


class _LoopParser:
    """Lowers the statements of one traversal function body."""

    def __init__(
        self,
        loop: Loop,
        arrays: Mapping[str, ArrayDecl],
        *,
        constants: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.loop = loop
        self.arrays = arrays
        self.constants = dict(constants or {})
        self.indvar_name = loop.indvar.name
        #: SSA-style environment: local name → the IR value bound to it.
        self.bindings: dict[str, Value] = {}

    # ------------------------------------------------------------- statements

    def parse_block(self, statements: Sequence[ast.stmt], *, control_dependent: bool) -> None:
        for statement in statements:
            self._parse_statement(statement, control_dependent=control_dependent)

    def _parse_statement(self, statement: ast.stmt, *, control_dependent: bool) -> None:
        if isinstance(statement, ast.Expr):
            self._parse_expression_statement(statement.value, control_dependent)
            return
        if isinstance(statement, ast.Assign):
            self._parse_assignment(statement, control_dependent)
            return
        if isinstance(statement, ast.For):
            self._parse_for(statement, control_dependent)
            return
        if isinstance(statement, ast.While):
            self._parse_while(statement, control_dependent)
            return
        if isinstance(statement, ast.Pass):
            return
        raise self._error(
            statement,
            "unsupported statement; traversal bodies may contain prefetch()/compute() "
            "calls, loads, assignments from loads, for-range edge walks and "
            "while-pointer-chases",
        )

    def _parse_expression_statement(self, value: ast.expr, control_dependent: bool) -> None:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return  # docstring
        if isinstance(value, ast.Call):
            callee = self._callee(value)
            if callee == "prefetch":
                self._parse_prefetch(value, control_dependent)
                return
            if callee == "compute":
                self._parse_compute(value)
                return
            raise self._error(
                value, f"unsupported call {callee!r}; only prefetch() and compute() exist"
            )
        if isinstance(value, ast.Subscript):
            load = self._lower_subscript(value, control_dependent)
            self.loop.add(LoadStmt(load))
            return
        raise self._error(value, "unsupported expression statement")

    def _parse_assignment(self, statement: ast.Assign, control_dependent: bool) -> None:
        if len(statement.targets) != 1 or not isinstance(statement.targets[0], ast.Name):
            raise self._error(statement, "assignments must bind exactly one plain name")
        target = statement.targets[0].id
        if target in self.arrays or target == self.indvar_name:
            raise self._error(
                statement, f"cannot rebind {target!r} (array or induction variable)"
            )
        if not isinstance(statement.value, ast.Subscript):
            raise self._error(
                statement,
                "only loads can be bound to names (name = array[index]); other "
                "arithmetic belongs in compute()",
            )
        load = self._lower_subscript(statement.value, control_dependent)
        self.loop.add(LoadStmt(load))
        self.bindings[target] = load

    def _parse_prefetch(self, call: ast.Call, control_dependent: bool) -> None:
        if len(call.args) != 1 or not isinstance(call.args[0], ast.Subscript):
            raise self._error(
                call, "prefetch() takes exactly one array[index] positional argument"
            )
        array, index = self._subscript_parts(call.args[0], control_dependent)
        distance: Optional[int] = None
        stream: Optional[str] = None
        chain_end: Optional[bool] = None
        label: Optional[str] = None
        for keyword in call.keywords:
            argument = keyword.value
            if not isinstance(argument, ast.Constant):
                raise self._error(call, f"prefetch() hint {keyword.arg!r} must be a literal")
            if keyword.arg == "distance":
                distance = int(argument.value)
            elif keyword.arg == "stream":
                stream = str(argument.value)
            elif keyword.arg == "chain_end":
                chain_end = bool(argument.value)
            elif keyword.arg == "name":
                label = str(argument.value)
            else:
                raise self._error(call, f"unknown prefetch() hint {keyword.arg!r}")
        self.loop.add(
            SoftwarePrefetchStmt(
                array,
                index,
                name=label if label is not None else f"swpf_{array.name}",
                distance_hint=distance,
                stream=stream,
                chain_end_range=chain_end,
            )
        )

    def _parse_compute(self, call: ast.Call) -> None:
        if not call.args or not (
            isinstance(call.args[0], ast.Constant) and isinstance(call.args[0].value, int)
        ):
            raise self._error(call, "compute() needs a literal instruction count first")
        uses: list[Value] = []
        for argument in call.args[1:]:
            if not isinstance(argument, ast.Name) or argument.id not in self.bindings:
                raise self._error(
                    call, "compute() consumes previously bound load values only"
                )
            uses.append(self.bindings[argument.id])
        self.loop.add(ComputeStmt(int(call.args[0].value), uses=tuple(uses)))

    def _parse_for(self, statement: ast.For, control_dependent: bool) -> None:
        if not isinstance(statement.target, ast.Name):
            raise self._error(statement, "for loops must bind a single plain name")
        call = statement.iter
        if not (isinstance(call, ast.Call) and self._callee(call) == "range"):
            raise self._error(statement, "for loops must iterate over range(start, end)")
        if not 1 <= len(call.args) <= 2 or call.keywords:
            raise self._error(statement, "range() takes one or two positional bounds")
        if statement.orelse:
            raise self._error(statement, "for/else is not supported")
        # The loop variable carries the dependence chain of the *start* bound
        # (e.g. edge = row_offsets[frontier[i]]); the end bound is control
        # flow only and never reaches an address computation.
        if len(call.args) == 2:
            start = self._lower_expr(call.args[0], control_dependent)
        else:
            start = Constant(0)
        self.bindings[statement.target.id] = start
        self.loop.has_irregular_control_flow = True
        self.parse_block(statement.body, control_dependent=True)

    def _parse_while(self, statement: ast.While, control_dependent: bool) -> None:
        del control_dependent  # the chase body is control dependent by definition
        pattern = "while array[x] != x: x = array[x]"
        test = statement.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.NotEq)
            and isinstance(test.left, ast.Subscript)
            and isinstance(test.comparators[0], ast.Name)
        ):
            raise self._error(statement, f"while loops must be pointer chases: {pattern}")
        chased = test.comparators[0].id
        array_node = test.left.value
        index_node = test.left.slice
        if not (
            isinstance(array_node, ast.Name)
            and isinstance(index_node, ast.Name)
            and index_node.id == chased
        ):
            raise self._error(statement, f"while loops must be pointer chases: {pattern}")
        body = [node for node in statement.body if not isinstance(node, ast.Pass)]
        if not (
            len(body) == 1
            and isinstance(body[0], ast.Assign)
            and len(body[0].targets) == 1
            and isinstance(body[0].targets[0], ast.Name)
            and body[0].targets[0].id == chased
            and isinstance(body[0].value, ast.Subscript)
            and isinstance(body[0].value.value, ast.Name)
            and body[0].value.value.id == array_node.id
            and isinstance(body[0].value.slice, ast.Name)
            and body[0].value.slice.id == chased
        ):
            raise self._error(statement, f"while loops must be pointer chases: {pattern}")
        if statement.orelse:
            raise self._error(statement, "while/else is not supported")
        if chased not in self.bindings:
            raise self._error(
                statement, f"chase variable {chased!r} must be bound to a load first"
            )
        array = self._array(array_node)
        start = self.bindings[chased]
        hop = Load(array, start, control_dependent=True)
        self.loop.add(LoadStmt(hop))
        self.loop.add(PointerChaseStmt(array, start, name=f"chase_{array.name}"))
        self.loop.has_irregular_control_flow = True
        self.bindings[chased] = hop

    # ------------------------------------------------------------ expressions

    def _lower_expr(self, node: ast.expr, control_dependent: bool) -> Value:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return Constant(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            operand = self._lower_expr(node.operand, control_dependent)
            if isinstance(operand, Constant):
                return Constant(-operand.value)
            raise self._error(node, "negation is only supported on constants")
        if isinstance(node, ast.Name):
            if node.id == self.indvar_name:
                return self.loop.indvar
            if node.id in self.bindings:
                return self.bindings[node.id]
            if node.id in self.constants:
                return Constant(int(self.constants[node.id]))
            if node.id in self.arrays:
                raise self._error(
                    node, f"bare array reference {node.id!r}; arrays must be subscripted"
                )
            return Param(node.id)
        if isinstance(node, ast.BinOp):
            for node_type, op in _BINOPS.items():
                if isinstance(node.op, node_type):
                    return BinOp(
                        op,
                        self._lower_expr(node.left, control_dependent),
                        self._lower_expr(node.right, control_dependent),
                    )
            raise self._error(node, f"unsupported operator {type(node.op).__name__}")
        if isinstance(node, ast.Subscript):
            return self._lower_subscript(node, control_dependent)
        raise self._error(node, f"unsupported expression {type(node).__name__}")

    def _lower_subscript(self, node: ast.Subscript, control_dependent: bool) -> Load:
        array, index = self._subscript_parts(node, control_dependent)
        return Load(array, index, control_dependent=control_dependent)

    def _subscript_parts(
        self, node: ast.Subscript, control_dependent: bool
    ) -> tuple[ArrayDecl, Value]:
        array = self._array(node.value)
        return array, self._lower_expr(node.slice, control_dependent)

    def _array(self, node: ast.expr) -> ArrayDecl:
        if not (isinstance(node, ast.Name) and node.id in self.arrays):
            raise self._error(
                node, "subscripts must index a declared array by its parameter name"
            )
        return self.arrays[node.id]

    # ----------------------------------------------------------------- helpers

    @staticmethod
    def _callee(call: ast.Call) -> str:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return "<expression>"

    def _error(self, node: ast.AST, message: str) -> CompilationError:
        line = getattr(node, "lineno", "?")
        return CompilationError(f"loop {self.loop.name!r}, line {line}: {message}")
