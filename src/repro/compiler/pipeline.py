"""Registry-facing derivation pipeline: loop IR → manual-mode configuration.

The conversion and pragma passes (:mod:`repro.compiler.convert`,
:mod:`repro.compiler.pragma`) model the paper's *automatic* compiler and are
deliberately limited to what it can prove; the ``manual`` mode has so far been
hand-written kernels.  This module closes the gap: it drives the same stages
— dependence analysis, bounds detection, DCE accounting, code generation —
but honours the programmer hints the loop IR can carry
(:class:`~repro.compiler.ir.SoftwarePrefetchStmt` hint fields and
:class:`~repro.compiler.ir.PointerChaseStmt`), producing a configuration that
is behaviourally identical to the hand-written one.  Workloads opt in through
:meth:`repro.workloads.base.Workload.derived_manual_configuration`, and the
``compiled`` kernel source selects the result everywhere a manual kernel is
used.

Stages (each recorded on the returned :class:`DerivedKernels` so
``tools/dump_kernel.py --stage`` can show the intermediates):

1. **Pointer-chase lowering** — every :class:`PointerChaseStmt` becomes a
   self-re-triggering tagged walker kernel registered *before* the chains, so
   its tag claims the low tag numbers exactly as the hand-written
   configurations do.
2. **Dependence analysis** — Algorithm 1's DFS
   (:func:`repro.compiler.analysis.decompose_prefetch`) splits each software
   prefetch into a chain of single-load events; hints are transferred onto
   the resulting :class:`~repro.compiler.split.PrefetchChain`.
3. **DCE accounting** — per-iteration main-core instructions the conversion
   removes (:mod:`repro.compiler.dce`).
4. **Bounds + code generation** —
   :func:`repro.compiler.codegen.generate_configuration` emits the kernels,
   tags, streams, globals and filter ranges into the pre-populated
   configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import CompilationError
from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder, KernelProgram, Opcode
from .analysis import decompose_prefetch
from .codegen import CompiledPrefetchProgram, _element_shift, generate_configuration
from .dce import prefetch_overhead_instructions
from .ir import (
    ComputeStmt,
    LoadStmt,
    Loop,
    PointerChaseStmt,
    SoftwarePrefetchStmt,
    Statement,
    StoreStmt,
)
from .split import PrefetchChain

#: Seed look-ahead used when a prefetch carries neither a distance hint nor a
#: recoverable constant distance — the same default the hand-written helper
#: :func:`repro.workloads.kernels.add_stride_indirect_chain` uses.
DEFAULT_DISTANCE = 8


@dataclass(frozen=True)
class LoweredChase:
    """A pointer-chase statement lowered to a self-re-triggering walker."""

    statement: PointerChaseStmt
    kernel_name: str
    tag_name: str
    tag: int


@dataclass
class DerivedKernels:
    """Every stage of the loop-IR → manual-configuration derivation."""

    loop: Loop
    bindings: dict[str, int]
    #: Stage 1 output: one walker per pointer chase.
    chases: list[LoweredChase]
    #: Stage 2 output: every successfully decomposed chain (hints attached),
    #: including any that later failed code generation.
    chains: list[PrefetchChain]
    #: Stage 3 output: per-iteration main-core instructions DCE removes.
    removed_main_instructions: int
    #: Stage 4 output: the generated program (kernels + configuration).
    program: CompiledPrefetchProgram

    @property
    def configuration(self) -> PrefetcherConfiguration:
        return self.program.configuration

    @property
    def derived(self) -> bool:
        """True when the pipeline produced at least one kernel."""

        return bool(self.configuration.kernels)

    @property
    def failures(self) -> list[tuple[str, str]]:
        return list(self.program.failures)


def derive_manual_configuration(
    loop: Loop,
    bindings: Mapping[str, int],
    *,
    kernel_prefix: Optional[str] = None,
    default_distance: int = DEFAULT_DISTANCE,
) -> DerivedKernels:
    """Derive a manual-mode prefetcher configuration from ``loop``.

    Unlike the conversion/pragma passes this pipeline honours programmer
    hints (stream names, seed distances, chain-end suppression) and lowers
    pointer chases, so for a faithfully annotated loop the result matches the
    hand-written configuration's observable behaviour exactly.
    """

    prefix = kernel_prefix if kernel_prefix is not None else f"{loop.name}_gen"
    configuration = PrefetcherConfiguration()

    # Stage 1: pointer chases.  Registered first so walker tags take the low
    # numbers, matching the hand-written configuration order.
    chases: list[LoweredChase] = []
    chase_tags: dict[str, int] = {}
    failures: list[tuple[str, str]] = []
    for statement in loop.body:
        if not isinstance(statement, PointerChaseStmt):
            continue
        try:
            lowered = _lower_pointer_chase(
                statement, configuration, bindings, kernel_prefix=prefix
            )
        except CompilationError as error:
            failures.append((statement.name, str(error)))
            continue
        chases.append(lowered)
        chase_tags[statement.array.name] = lowered.tag

    # Stage 2: dependence analysis of each software prefetch, transferring
    # the prefetch's hints onto the resulting chain.  A chain ending at a
    # chased array tags its final prefetch so the walker takes over.
    chains: list[PrefetchChain] = []
    removed = 0
    for prefetch in loop.software_prefetches():
        try:
            chain = decompose_prefetch(loop, prefetch.array, prefetch.index, prefetch.name)
        except CompilationError as error:
            failures.append((prefetch.name, str(error)))
            continue
        chain.stream_name = prefetch.stream
        chain.distance_hint = prefetch.distance_hint
        chain.suppress_chain_end = prefetch.chain_end_range is False
        chain.final_tag = chase_tags.get(chain.steps[-1].array.name)
        chains.append(chain)
        # Stage 3: DCE accounting for the converted prefetch.
        removed += prefetch_overhead_instructions(prefetch)

    # Stage 4: bounds + code generation into the pre-populated configuration.
    program = generate_configuration(
        loop,
        list(chains),
        bindings,
        kernel_prefix=prefix,
        default_distance=default_distance,
        configuration=configuration,
    )
    program.failures = failures + program.failures
    program.removed_main_instructions = removed
    return DerivedKernels(
        loop=loop,
        bindings=dict(bindings),
        chases=chases,
        chains=chains,
        removed_main_instructions=removed,
        program=program,
    )


def _lower_pointer_chase(
    statement: PointerChaseStmt,
    configuration: PrefetcherConfiguration,
    bindings: Mapping[str, int],
    *,
    kernel_prefix: str,
) -> LoweredChase:
    """Lower ``while array[x] != x: x = array[x]`` to a tagged walker kernel.

    The walker runs on every fill of the chased array: it recovers the
    element index from the address, stops if the value equals the index (a
    root), and otherwise prefetches ``array[value]`` tagged with itself so
    the walk re-triggers until the root is observed.
    """

    array = statement.array
    if array.base_param not in bindings:
        raise CompilationError(
            f"{statement.name}: chase array {array.name!r} base parameter "
            f"{array.base_param!r} is not bound to a runtime value"
        )
    shift = _element_shift(array)
    configuration.set_global(array.base_param, int(bindings[array.base_param]))

    kernel_name = f"{kernel_prefix}_{statement.name}_{array.name}"
    tag_name = f"{kernel_name}_fill"
    tag = configuration.add_tag(tag_name, kernel_name, stream=None)

    walker = KernelBuilder(kernel_name)
    base = walker.get_global(configuration.global_index(array.base_param))
    value = walker.get_data()
    index = walker.shr(walker.sub(walker.get_vaddr(), base), shift)
    walker.branch_eq(value, index, "root")
    walker.prefetch(walker.add(base, walker.shl(value, shift)), tag=tag)
    walker.label("root")
    walker.halt()
    configuration.add_kernel(walker.build())
    return LoweredChase(
        statement=statement, kernel_name=kernel_name, tag_name=tag_name, tag=tag
    )


# ------------------------------------------------------------ pretty printing
#
# Textual renderings of the pipeline stages, used by ``tools/dump_kernel.py
# --stage`` and handy in tests and notebooks.


def format_loop(loop: Loop, bindings: Optional[Mapping[str, int]] = None) -> str:
    """Render the raw loop IR (arrays, flags, body statements)."""

    lines = [f"loop {loop.name!r}  indvar={loop.indvar.name}"]
    if loop.trip_count_param is not None:
        lines.append(f"  trip count: {loop.trip_count_param}")
    flags = []
    if loop.pragma_prefetch:
        flags.append("pragma_prefetch")
    if loop.has_irregular_control_flow:
        flags.append("irregular_control_flow")
    if flags:
        lines.append(f"  flags: {', '.join(flags)}")
    lines.append("  arrays:")
    for array in loop.arrays:
        extent = (
            f"length_param={array.length_param}"
            if array.length_param is not None
            else (f"length={array.length}" if array.length is not None else "unbounded")
        )
        lines.append(
            f"    {array.name}: base={array.base_param} {extent} "
            f"element_bytes={array.element_bytes}"
        )
    lines.append("  body:")
    for statement in loop.body:
        lines.append(f"    {_format_statement(statement)}")
    if bindings:
        lines.append("  bindings:")
        for name in sorted(bindings):
            lines.append(f"    {name} = {int(bindings[name]):#x}")
    return "\n".join(lines)


def _format_statement(statement: Statement) -> str:
    if isinstance(statement, SoftwarePrefetchStmt):
        hints = []
        if statement.distance_hint is not None:
            hints.append(f"distance={statement.distance_hint}")
        if statement.stream is not None:
            hints.append(f"stream={statement.stream!r}")
        if statement.chain_end_range is not None:
            hints.append(f"chain_end_range={statement.chain_end_range}")
        suffix = f"  [{', '.join(hints)}]" if hints else ""
        return f"swpf {statement.name}: &{statement.array.name}[{statement.index!r}]{suffix}"
    if isinstance(statement, LoadStmt):
        load = statement.load
        tail = "  [control dependent]" if load.control_dependent else ""
        return f"load {load.array.name}[{load.index!r}]{tail}"
    if isinstance(statement, StoreStmt):
        return f"store {statement.array.name}[{statement.index!r}]"
    if isinstance(statement, ComputeStmt):
        return f"compute x{statement.count} (uses {len(statement.uses)} values)"
    if isinstance(statement, PointerChaseStmt):
        return (
            f"chase {statement.name}: while {statement.array.name}[x] != x "
            f"starting at {statement.start!r}"
        )
    return repr(statement)


def format_chains(derived: DerivedKernels) -> str:
    """Render the post-analysis stage: lowered chases and event chains."""

    lines: list[str] = []
    for chase in derived.chases:
        lines.append(
            f"chase {chase.statement.name} over {chase.statement.array.name}: "
            f"walker kernel {chase.kernel_name!r}, tag {chase.tag} ({chase.tag_name})"
        )
    for chain in derived.chains:
        arrow = " -> ".join(chain.arrays)
        lines.append(f"chain from {chain.source}: {arrow}")
        lines.append(f"  root distance: {chain.root_distance}")
        if chain.stream_name is not None:
            lines.append(f"  stream hint: {chain.stream_name}")
        if chain.distance_hint is not None:
            lines.append(f"  distance hint: {chain.distance_hint}")
        if chain.suppress_chain_end:
            lines.append("  chain-end range: suppressed")
        if chain.final_tag is not None:
            lines.append(f"  final prefetch tag: {chain.final_tag} (pointer-chase walker)")
        for index, step in enumerate(chain.steps):
            kind = "root" if step.is_root else "fill"
            lines.append(f"  step {index} ({kind}): {step.array.name}[{step.index_expr!r}]")
    for source, reason in derived.failures:
        lines.append(f"failed {source}: {reason}")
    if not lines:
        lines.append("(nothing derived)")
    return "\n".join(lines)


def format_bounds(derived: DerivedKernels) -> str:
    """Render the post-DCE/bounds stage: ranges, streams, tags, globals."""

    configuration = derived.configuration
    lines = [
        f"removed main-core instructions per iteration (DCE): "
        f"{derived.removed_main_instructions}"
    ]
    lines.append("filter ranges:")
    for entry in configuration.ranges:
        attributes = []
        if entry.load_kernel:
            attributes.append(f"load_kernel={entry.load_kernel}")
        if entry.stream:
            attributes.append(f"stream={entry.stream}")
        if entry.time_iterations:
            attributes.append("time_iterations")
        if entry.chain_start:
            attributes.append("chain_start")
        if entry.chain_end:
            attributes.append("chain_end")
        lines.append(
            f"  {entry.name}: [{entry.base:#x}, {entry.end:#x})  {' '.join(attributes)}"
        )
    lines.append("streams:")
    for stream in configuration.streams.values():
        lines.append(
            f"  [{stream.index}] {stream.name}: default_distance={stream.default_distance}"
        )
    lines.append("tags:")
    for tag in configuration.tags.values():
        stream = tag.stream if tag.stream is not None else "-"
        lines.append(f"  [{tag.tag}] {tag.name}: kernel={tag.kernel} stream={stream}")
    lines.append("globals:")
    for name, index in configuration.global_names.items():
        lines.append(f"  [{index}] {name} = {configuration.global_values()[index]:#x}")
    lines.append(
        f"configuration instructions: {configuration.config_instruction_count()}"
    )
    return "\n".join(lines)


def format_kernel(program: KernelProgram) -> str:
    """Disassemble one kernel program."""

    lines = [f"kernel {program.name} ({len(program)} instructions, {program.size_bytes} bytes):"]
    for index, instruction in enumerate(program.instructions):
        opcode = instruction.opcode
        parts = [f"  {index:3d}: {opcode.name:<13}"]
        if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
            parts.append(
                f"{_operand(instruction.a)}, {_operand(instruction.b)} -> @{instruction.target}"
            )
        elif opcode == Opcode.JUMP:
            parts.append(f"-> @{instruction.target}")
        elif opcode == Opcode.PREFETCH:
            parts.append(f"addr={_operand(instruction.a)} tag={_operand(instruction.b)}")
        elif opcode == Opcode.HALT:
            pass
        else:
            parts.append(
                f"r{instruction.dst} <- {_operand(instruction.a)}, {_operand(instruction.b)}"
            )
        lines.append(" ".join(parts).rstrip())
    return "\n".join(lines)


def format_kernels(configuration: PrefetcherConfiguration) -> str:
    """Disassemble every kernel of a configuration."""

    kernels = configuration.kernels
    if not kernels:
        return "(no kernels)"
    return "\n\n".join(format_kernel(kernels[name]) for name in kernels)


def _operand(operand) -> str:
    return str(operand.value) if operand.is_immediate else f"r{operand.value}"
