"""Chain/event decomposition data structures (``split_on_loads``).

Algorithm 1 of the paper splits the address-generation code of a software
prefetch into *events*, each ending in exactly one load: the first event is
triggered by the loop's own strided access (its induction variable recovered
from the observed address), and each subsequent event is triggered by the
return of the previous event's prefetch.  :class:`PrefetchChain` is the result
of that split: an ordered list of :class:`ChainStep`, root first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ir import ArrayDecl, Value


@dataclass(frozen=True)
class Incoming(Value):
    """Placeholder for the value produced by the previous step's prefetch.

    At code-generation time it becomes the PPU's ``get_data()`` — the word of
    the forwarded cache line at the triggering address.
    """

    def __repr__(self) -> str:
        return "Incoming()"


@dataclass(frozen=True)
class ChainStep:
    """One event of a prefetch chain.

    ``array`` is the data structure this step prefetches from;
    ``index_expr`` computes the element index.  For the root step the
    expression is over the induction variable (plus constants); for later
    steps it is over :class:`Incoming` (the previous step's loaded value) and
    loop-invariant parameters.
    """

    array: ArrayDecl
    index_expr: Value
    is_root: bool = False


@dataclass
class PrefetchChain:
    """A root-first sequence of chain steps plus metadata."""

    steps: list[ChainStep] = field(default_factory=list)
    #: Constant look-ahead distance found in the root index (``x + dist``);
    #: zero when the source had none (pragma-generated chains).
    root_distance: int = 0
    #: Name of the software prefetch or load that produced the chain.
    source: str = "chain"

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def root(self) -> ChainStep:
        return self.steps[0]

    @property
    def arrays(self) -> tuple[str, ...]:
        return tuple(step.array.name for step in self.steps)

    def signature(self) -> tuple[str, ...]:
        """Used to de-duplicate chains discovered more than once."""

        return self.arrays
