"""Chain/event decomposition data structures (``split_on_loads``).

Algorithm 1 of the paper splits the address-generation code of a software
prefetch into *events*, each ending in exactly one load: the first event is
triggered by the loop's own strided access (its induction variable recovered
from the observed address), and each subsequent event is triggered by the
return of the previous event's prefetch.  :class:`PrefetchChain` is the result
of that split: an ordered list of :class:`ChainStep`, root first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ir import ArrayDecl, Value


@dataclass(frozen=True)
class Incoming(Value):
    """Placeholder for the value produced by the previous step's prefetch.

    At code-generation time it becomes the PPU's ``get_data()`` — the word of
    the forwarded cache line at the triggering address.
    """

    def __repr__(self) -> str:
        return "Incoming()"


@dataclass(frozen=True)
class ChainStep:
    """One event of a prefetch chain.

    ``array`` is the data structure this step prefetches from;
    ``index_expr`` computes the element index.  For the root step the
    expression is over the induction variable (plus constants); for later
    steps it is over :class:`Incoming` (the previous step's loaded value) and
    loop-invariant parameters.
    """

    array: ArrayDecl
    index_expr: Value
    is_root: bool = False


@dataclass
class PrefetchChain:
    """A root-first sequence of chain steps plus metadata.

    The four hint fields are populated by the manual derivation pipeline
    (:mod:`repro.compiler.pipeline`) from the software prefetch's hint
    attributes; chains built by the conversion and pragma passes leave them
    at their defaults, which keeps those passes' output byte-for-byte what
    it was before hints existed.
    """

    steps: list[ChainStep] = field(default_factory=list)
    #: Constant look-ahead distance found in the root index (``x + dist``);
    #: zero when the source had none (pragma-generated chains).
    root_distance: int = 0
    #: Name of the software prefetch or load that produced the chain.
    source: str = "chain"
    #: Explicit EWMA stream name (``None``: derive from the kernel prefix).
    stream_name: Optional[str] = None
    #: Initial EWMA look-ahead, overriding :attr:`root_distance`.
    distance_hint: Optional[int] = None
    #: Skip the chain-end filter range even when the final array's bounds
    #: are known.
    suppress_chain_end: bool = False
    #: Tag for the final step's prefetch, linking the chain into a
    #: pre-registered follow-on kernel (a pointer-chase walker).
    final_tag: Optional[int] = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def root(self) -> ChainStep:
        return self.steps[0]

    @property
    def arrays(self) -> tuple[str, ...]:
        return tuple(step.array.name for step in self.steps)

    def signature(self) -> tuple[str, ...]:
        """Used to de-duplicate chains discovered more than once."""

        return self.arrays
