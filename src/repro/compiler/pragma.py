"""Pragma-driven event generation (Section 6.4).

For a loop annotated with ``#pragma prefetch`` the compiler has no software
prefetches to start from; instead it looks for loads that feature indirection
(their address depends on the value of another load) whose dependence chain
bottoms out at the loop induction variable, and generates the same chains of
events the conversion pass would.  Because there is no programmer-supplied
distance, the chains rely entirely on the EWMA look-ahead.

The pass reproduces the paper's limitations: it cannot see through
data-dependent control flow (linked lists, variable-length inner edge walks),
it has no runtime knowledge of which structures already hit in the cache (so
it may generate useless prefetches — the paper notes slightly reduced
performance for IntSort, ConjGrad and PageRank from exactly this), and it can
only discover patterns expressible as single-load event chains.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import CompilationError
from .analysis import decompose_prefetch, find_variant_loads
from .codegen import CompiledPrefetchProgram, generate_configuration
from .ir import Load, Loop
from .split import PrefetchChain


def _indirect_top_level_loads(loop: Loop) -> tuple[list[Load], list[tuple[str, str]]]:
    """Loads with at least one load feeding their address, not nested in another load.

    Returns the candidate loads plus failure records for indirect loads the
    pass cannot touch because they sit behind data-dependent control flow
    (list walks, variable-length inner loops).
    """

    all_loads = loop.loads()
    nested: set[int] = set()
    for load in all_loads:
        for inner in find_variant_loads(load.index, loop):
            nested.add(id(inner))

    candidates: list[Load] = []
    skipped: list[tuple[str, str]] = []
    for load in all_loads:
        if id(load) in nested:
            continue
        if load.control_dependent:
            skipped.append(
                (
                    f"load:{load.array.name}",
                    "address depends on data-dependent control flow; the pragma "
                    "pass cannot express loops",
                )
            )
            continue
        if find_variant_loads(load.index, loop):
            candidates.append(load)
    return candidates, skipped


def generate_from_pragma(
    loop: Loop,
    bindings: Mapping[str, int],
    *,
    kernel_prefix: Optional[str] = None,
    default_distance: int = 4,
) -> CompiledPrefetchProgram:
    """Generate prefetch events for a ``#pragma prefetch`` loop."""

    if not loop.pragma_prefetch:
        raise CompilationError(
            f"loop {loop.name!r} is not annotated with '#pragma prefetch'"
        )

    prefix = kernel_prefix if kernel_prefix is not None else f"{loop.name}_pragma"
    chains: list[PrefetchChain] = []
    signatures: set[tuple[str, ...]] = set()

    candidates, failures = _indirect_top_level_loads(loop)
    for load in candidates:
        source = f"load:{load.array.name}"
        try:
            chain = decompose_prefetch(loop, load.array, load.index, source)
        except CompilationError as error:
            failures.append((source, str(error)))
            continue
        if chain.signature() in signatures:
            continue
        signatures.add(chain.signature())
        chains.append(chain)

    if not chains and not failures:
        failures.append(("loop", "no indirect loads discovered under the pragma"))

    program = generate_configuration(
        loop, chains, bindings, kernel_prefix=prefix, default_distance=default_distance
    )
    program.failures = failures + program.failures
    return program
