"""Dead-code elimination accounting.

After the software prefetches are converted to PPU events, the prefetch
instructions themselves and any address-generation code used *only* by them
are removed from the main program (the last step of Algorithm 1).  In this
reproduction the main program is a dynamic trace, so "removal" means the
converted-mode trace simply does not contain those instructions; this module
computes how many per-iteration instructions that is, which the workloads use
both to build the converted trace and to report the dynamic-instruction
overhead of software prefetching (Section 7.1 quotes +113 % for IntSort,
+83 % for RandAcc and +56 % for HJ-2).
"""

from __future__ import annotations

from .ir import BinOp, Constant, IndexVar, Load, Param, SoftwarePrefetchStmt, Value


def _count_nodes(value: Value) -> tuple[int, int]:
    """Return ``(arithmetic_ops, loads)`` in the expression tree."""

    if isinstance(value, (Constant, Param, IndexVar)):
        return 0, 0
    if isinstance(value, Load):
        inner_ops, inner_loads = _count_nodes(value.index)
        return inner_ops, inner_loads + 1
    if isinstance(value, BinOp):
        lhs_ops, lhs_loads = _count_nodes(value.lhs)
        rhs_ops, rhs_loads = _count_nodes(value.rhs)
        return lhs_ops + rhs_ops + 1, lhs_loads + rhs_loads
    return 0, 0


def prefetch_overhead_instructions(prefetch: SoftwarePrefetchStmt) -> int:
    """Main-core instructions one software prefetch costs per loop iteration.

    Counts the prefetch instruction itself, the arithmetic generating its
    address, and the extra demand loads needed to form the address (e.g.
    loading ``key[x + dist]`` purely to compute a prefetch target).
    """

    ops, loads = _count_nodes(prefetch.index)
    return 1 + ops + loads


def removed_instructions(prefetches: list[SoftwarePrefetchStmt]) -> int:
    """Total per-iteration instructions removed when ``prefetches`` are converted."""

    return sum(prefetch_overhead_instructions(p) for p in prefetches)
