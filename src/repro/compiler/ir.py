"""Loop-level intermediate representation.

The IR plays the role of the paper's LLVM IR in SSA form, restricted to what
the two compiler passes actually inspect: a single loop with an induction
variable, arrays accessed inside it, an expression graph over loop-invariant
parameters, the induction variable and loads, plus software-prefetch and
store statements.  Workloads describe their kernels in this IR; the passes in
:mod:`repro.compiler.convert` and :mod:`repro.compiler.pragma` analyse it and
emit PPU kernels.

Design notes
------------

* Expressions form a DAG of :class:`Value` nodes.  There is no explicit phi
  node: the loop's induction variable is the only control-flow-dependent value
  the passes accept, exactly as in the paper ("Phi nodes identify either the
  loop's induction variable, or another control-flow dependent value.  The
  latter case requires more complex analysis, and in practice is rare").
* Loops whose bodies contain inner control flow that the passes cannot express
  (linked-list walks, data-dependent inner loops) mark it with
  :attr:`Loop.has_irregular_control_flow`; both passes refuse to convert
  accesses that depend on it, which reproduces the paper's limitations on
  G500-List and the full G500-CSR edge walk.
* Array elements are 64-bit words, matching the rest of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..errors import CompilationError

# --------------------------------------------------------------------- values


class Value:
    """Base class of all IR expression nodes."""

    def operands(self) -> tuple["Value", ...]:
        return ()


@dataclass(frozen=True)
class Constant(Value):
    """A compile-time integer constant."""

    value: int

    def __repr__(self) -> str:
        return f"Constant({self.value})"


@dataclass(frozen=True)
class Param(Value):
    """A loop-invariant runtime value (array base, hash mask, size, ...).

    Parameters are bound to concrete values at code-generation time through
    the ``bindings`` mapping; in hardware they become global prefetcher
    registers.
    """

    name: str

    def __repr__(self) -> str:
        return f"Param({self.name})"


@dataclass(frozen=True)
class IndexVar(Value):
    """The loop induction variable."""

    name: str = "i"

    def __repr__(self) -> str:
        return f"IndexVar({self.name})"


@dataclass(frozen=True)
class ArrayDecl:
    """An array accessed in the loop.

    ``base_param`` names the parameter holding the base address.  Bounds are
    known when ``length_param`` (or ``length``) is given — the typed-array
    case of Section 6.2; otherwise the bounds pass falls back to the loop trip
    count for arrays indexed directly by the induction variable.
    """

    name: str
    base_param: str
    length_param: Optional[str] = None
    length: Optional[int] = None
    element_bytes: int = 8

    def __repr__(self) -> str:
        return f"ArrayDecl({self.name})"


@dataclass(frozen=True)
class BinOp(Value):
    """A binary arithmetic/logic operation."""

    op: str
    lhs: Value
    rhs: Value

    _VALID = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise CompilationError(f"unsupported BinOp {self.op!r}")

    def operands(self) -> tuple[Value, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"BinOp({self.op}, {self.lhs!r}, {self.rhs!r})"


@dataclass(frozen=True)
class Load(Value):
    """``array[index]`` — a 64-bit load whose value feeds other expressions."""

    array: ArrayDecl
    index: Value
    #: Marks loads whose address depends on inner, data-dependent control flow
    #: (e.g. the linked-list walk in HJ-8 / G500-List).  Neither compiler pass
    #: can convert through such loads.
    control_dependent: bool = False

    def operands(self) -> tuple[Value, ...]:
        return (self.index,)

    def __repr__(self) -> str:
        return f"Load({self.array.name}[{self.index!r}])"


# ----------------------------------------------------------------- statements


class Statement:
    """Base class of loop-body statements."""


@dataclass(frozen=True)
class SoftwarePrefetchStmt(Statement):
    """``SWPF(&array[index])`` in the original source.

    The three optional *hint* fields carry programmer knowledge the manual
    derivation pipeline (:mod:`repro.compiler.pipeline`) honours when it
    turns this prefetch into a PPU event chain; the conversion and pragma
    passes ignore them, exactly as a real compiler would ignore tuning
    attributes it does not implement.
    """

    array: ArrayDecl
    index: Value
    #: Optional label used in diagnostics.
    name: str = "swpf"
    #: Initial EWMA look-ahead for the derived stream, overriding the
    #: constant distance found in the index expression (``i + d``).
    distance_hint: Optional[int] = None
    #: Explicit name for the derived EWMA stream (the key under which the
    #: final look-ahead appears in the engine statistics).
    stream: Optional[str] = None
    #: ``False`` suppresses the chain-end filter range for the final array
    #: even when its bounds are known (e.g. when another chain's stream
    #: already times that structure); ``None`` means automatic.
    chain_end_range: Optional[bool] = None


@dataclass(frozen=True)
class StoreStmt(Statement):
    """``array[index] = value``."""

    array: ArrayDecl
    index: Value
    value: Optional[Value] = None


@dataclass(frozen=True)
class LoadStmt(Statement):
    """A demand load whose value is consumed by compute (records loop reads)."""

    load: Load


@dataclass(frozen=True)
class ComputeStmt(Statement):
    """Arithmetic work that consumes values but produces no memory traffic."""

    count: int = 1
    uses: tuple[Value, ...] = ()


@dataclass(frozen=True)
class PointerChaseStmt(Statement):
    """``while array[x] != x: x = array[x]`` — a data-dependent pointer chase.

    The chase itself sits behind data-dependent control flow, so neither the
    conversion nor the pragma pass can express it; the manual derivation
    pipeline lowers it to a self-re-triggering tagged walker kernel (the
    union-find pattern: each fill of ``array`` prefetches ``array[value]``
    until a root, ``array[x] == x``, is observed).
    """

    array: ArrayDecl
    start: Value
    name: str = "chase"


# ----------------------------------------------------------------------- loop


@dataclass
class Loop:
    """A single counted loop, the unit both compiler passes operate on."""

    name: str
    indvar: IndexVar
    trip_count_param: Optional[str] = None
    body: list[Statement] = field(default_factory=list)
    arrays: list[ArrayDecl] = field(default_factory=list)
    #: True when the loop was annotated with ``#pragma prefetch``.
    pragma_prefetch: bool = False
    #: True when the body contains data-dependent inner control flow the
    #: passes cannot express (linked lists, variable-length inner loops).
    has_irregular_control_flow: bool = False

    # ------------------------------------------------------------------ build

    def add(self, statement: Statement) -> Statement:
        self.body.append(statement)
        return statement

    def declare_array(self, array: ArrayDecl) -> ArrayDecl:
        if all(existing.name != array.name for existing in self.arrays):
            self.arrays.append(array)
        return array

    # ----------------------------------------------------------------- queries

    def software_prefetches(self) -> list[SoftwarePrefetchStmt]:
        return [s for s in self.body if isinstance(s, SoftwarePrefetchStmt)]

    def loads(self) -> list[Load]:
        """Every distinct Load value reachable from the loop body."""

        seen: list[Load] = []
        seen_ids: set[int] = set()

        def visit(value: Value) -> None:
            if id(value) in seen_ids:
                return
            seen_ids.add(id(value))
            if isinstance(value, Load):
                seen.append(value)
            for operand in value.operands():
                visit(operand)

        for statement in self.body:
            for value in _statement_values(statement):
                visit(value)
        return seen

    def array(self, name: str) -> ArrayDecl:
        for array in self.arrays:
            if array.name == name:
                return array
        raise CompilationError(f"loop {self.name!r} declares no array named {name!r}")


def _statement_values(statement: Statement) -> Iterable[Value]:
    if isinstance(statement, SoftwarePrefetchStmt):
        return (statement.index,)
    if isinstance(statement, StoreStmt):
        return (statement.index,) if statement.value is None else (statement.index, statement.value)
    if isinstance(statement, LoadStmt):
        return (statement.load,)
    if isinstance(statement, ComputeStmt):
        return statement.uses
    if isinstance(statement, PointerChaseStmt):
        return (statement.start,)
    return ()


# -------------------------------------------------------------- small helpers


def add(lhs: Value, rhs: Union[Value, int]) -> BinOp:
    return BinOp("add", lhs, _wrap(rhs))


def sub(lhs: Value, rhs: Union[Value, int]) -> BinOp:
    return BinOp("sub", lhs, _wrap(rhs))


def mul(lhs: Value, rhs: Union[Value, int]) -> BinOp:
    return BinOp("mul", lhs, _wrap(rhs))


def and_(lhs: Value, rhs: Union[Value, int]) -> BinOp:
    return BinOp("and", lhs, _wrap(rhs))


def shr(lhs: Value, rhs: Union[Value, int]) -> BinOp:
    return BinOp("shr", lhs, _wrap(rhs))


def shl(lhs: Value, rhs: Union[Value, int]) -> BinOp:
    return BinOp("shl", lhs, _wrap(rhs))


def _wrap(value: Union[Value, int]) -> Value:
    return Constant(value) if isinstance(value, int) else value
