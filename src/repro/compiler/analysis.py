"""Dependence analysis: the depth-first search of Algorithm 1.

Starting from a prefetch's address expression, the pass walks backwards
through the data-dependence graph until it reaches loop-invariant values, a
non-loop-invariant load, or the loop's induction variable.  Each
non-loop-invariant load splits the expression into a new event; more than one
distinct non-invariant load feeding a single address makes the conversion
fail, as do values with no induction-variable provenance and loads behind
data-dependent control flow.  The failures are reported with reasons so the
workloads (and tests) can check that the pass fails exactly where the paper
says it must.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CompilationError
from .ir import ArrayDecl, BinOp, Constant, IndexVar, Load, Loop, Param, Value
from .split import ChainStep, Incoming, PrefetchChain

#: Upper bound on chain length; real chains in the paper are 2-4 events.
MAX_CHAIN_LENGTH = 8


# ----------------------------------------------------------------- predicates


def is_loop_invariant(value: Value, loop: Loop) -> bool:
    """True when ``value`` does not change across iterations of ``loop``."""

    if isinstance(value, (Constant, Param)):
        return True
    if isinstance(value, (IndexVar, Incoming)):
        return False
    if isinstance(value, Load):
        # A load could be invariant if its address is, but the paper hoists
        # such loads into global registers before this point; treating all
        # loads as variant is conservative and matches the workloads' IR.
        return False
    if isinstance(value, BinOp):
        return is_loop_invariant(value.lhs, loop) and is_loop_invariant(value.rhs, loop)
    raise CompilationError(f"unknown IR value {value!r}")


def contains_indvar(value: Value) -> bool:
    if isinstance(value, IndexVar):
        return True
    return any(contains_indvar(operand) for operand in value.operands())


def contains_incoming(value: Value) -> bool:
    if isinstance(value, Incoming):
        return True
    return any(contains_incoming(operand) for operand in value.operands())


def find_variant_loads(value: Value, loop: Loop) -> list[Load]:
    """Distinct non-loop-invariant loads reachable from ``value``.

    Loads nested inside another load's index expression are *not* returned —
    the search stops at the first load on each path, because that load is
    where the expression splits into a new event.
    """

    found: list[Load] = []
    seen: set[int] = set()

    def visit(node: Value) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, Load):
            if not is_loop_invariant(node, loop) and all(node is not other for other in found):
                found.append(node)
            return  # do not descend into the load's own address
        for operand in node.operands():
            visit(operand)

    visit(value)
    return found


# ---------------------------------------------------------------- substitution


def substitute_load(value: Value, target: Load, replacement: Value) -> Value:
    """Return ``value`` with ``target`` replaced by ``replacement``."""

    if value is target:
        return replacement
    if isinstance(value, BinOp):
        return BinOp(
            value.op,
            substitute_load(value.lhs, target, replacement),
            substitute_load(value.rhs, target, replacement),
        )
    return value


# ------------------------------------------------------------- root distances


def extract_root_distance(value: Value, indvar: IndexVar) -> int:
    """Extract the constant look-ahead from a root index of the form ``i + d``.

    Accepts the bare induction variable (distance 0) and ``i + constant`` /
    ``constant + i``.  Anything else — a scaled or hashed induction variable —
    is rejected, mirroring the paper's requirement that the loop's strided
    access be recoverable from an observed address.
    """

    if isinstance(value, IndexVar):
        return 0
    if isinstance(value, BinOp) and value.op == "add":
        lhs, rhs = value.lhs, value.rhs
        if isinstance(lhs, IndexVar) and isinstance(rhs, Constant):
            return rhs.value
        if isinstance(rhs, IndexVar) and isinstance(lhs, Constant):
            return lhs.value
    raise CompilationError(
        "root access is not a simple strided walk of the induction variable "
        f"(found {value!r}); the induction variable cannot be recovered from "
        "an observed address"
    )


def _invariant_apart_from_incoming(value: Value, loop: Loop) -> bool:
    """True when ``value`` only combines the incoming data with invariants."""

    if isinstance(value, Incoming):
        return True
    if isinstance(value, (Constant, Param)):
        return True
    if isinstance(value, BinOp):
        return _invariant_apart_from_incoming(value.lhs, loop) and _invariant_apart_from_incoming(
            value.rhs, loop
        )
    return False


# ------------------------------------------------------------------ the DFS


def decompose_prefetch(
    loop: Loop,
    target_array: ArrayDecl,
    index_expr: Value,
    source_name: str,
) -> PrefetchChain:
    """Split one prefetch address computation into a chain of events.

    Raises :class:`~repro.errors.CompilationError` with a human-readable
    reason when the paper's pass would fail on this prefetch.
    """

    steps_reversed: list[ChainStep] = []
    current_array = target_array
    current_expr = index_expr

    for _ in range(MAX_CHAIN_LENGTH + 1):
        variant_loads = find_variant_loads(current_expr, loop)

        control_dependent = [load for load in variant_loads if load.control_dependent]
        if control_dependent:
            raise CompilationError(
                f"{source_name}: address depends on a load behind data-dependent "
                f"control flow ({control_dependent[0]!r}); software prefetches "
                "cannot express loops"
            )

        if len(variant_loads) > 1:
            raise CompilationError(
                f"{source_name}: more than one non-loop-invariant load feeds a single "
                "address, so the event cannot be triggered by a single data value"
            )

        if len(variant_loads) == 1:
            load = variant_loads[0]
            expr = substitute_load(current_expr, load, Incoming())
            if contains_indvar(expr):
                raise CompilationError(
                    f"{source_name}: address mixes the induction variable with loaded "
                    "data; the event cannot be reconstructed from one observation"
                )
            if not _invariant_apart_from_incoming(expr, loop):
                raise CompilationError(
                    f"{source_name}: address contains values with unknown provenance"
                )
            steps_reversed.append(ChainStep(array=current_array, index_expr=expr, is_root=False))
            current_array = load.array
            current_expr = load.index
            continue

        # No variant loads left: this must be the strided root access.
        if not contains_indvar(current_expr):
            raise CompilationError(
                f"{source_name}: no induction variable found on the dependence path; "
                "there is nothing to derive look-ahead from"
            )
        distance = extract_root_distance(current_expr, loop.indvar)
        steps_reversed.append(
            ChainStep(array=current_array, index_expr=current_expr, is_root=True)
        )
        steps_reversed.reverse()
        return PrefetchChain(
            steps=steps_reversed, root_distance=distance, source=source_name
        )

    raise CompilationError(f"{source_name}: dependence chain longer than {MAX_CHAIN_LENGTH} events")
