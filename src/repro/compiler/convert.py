"""Software-prefetch conversion pass (Algorithm 1 of the paper).

Given a loop containing software prefetches, the pass

1. runs the depth-first dependence search backwards from each prefetch
   (:mod:`repro.compiler.analysis`), failing where the paper fails
   (control-dependent loads, multiple loads per address, no induction
   variable);
2. splits the surviving address computations into chains of single-load
   events (:mod:`repro.compiler.split`);
3. infers array bounds (:mod:`repro.compiler.bounds`);
4. generates PPU kernels and the prefetcher configuration
   (:mod:`repro.compiler.codegen`); and
5. accounts for the software prefetches and address-generation code removed
   from the main program (:mod:`repro.compiler.dce`).
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import CompilationError
from .analysis import decompose_prefetch
from .codegen import CompiledPrefetchProgram, generate_configuration
from .dce import prefetch_overhead_instructions
from .ir import Loop
from .split import PrefetchChain


def convert_software_prefetches(
    loop: Loop,
    bindings: Mapping[str, int],
    *,
    kernel_prefix: Optional[str] = None,
    default_distance: int = 4,
) -> CompiledPrefetchProgram:
    """Convert every software prefetch in ``loop`` into PPU events.

    ``bindings`` supplies the runtime values of the loop's parameters (array
    base addresses, lengths, masks, the trip count) — the same values the
    generated configuration instructions would carry at run time.

    The returned program records, per prefetch, whether it was converted or
    why it could not be, plus how many main-core instructions the conversion
    removed; workloads use the latter when constructing their converted-mode
    traces.
    """

    prefix = kernel_prefix if kernel_prefix is not None else loop.name
    prefetches = loop.software_prefetches()

    chains: list[PrefetchChain] = []
    failures: list[tuple[str, str]] = []
    removed = 0
    for prefetch in prefetches:
        try:
            chain = decompose_prefetch(loop, prefetch.array, prefetch.index, prefetch.name)
        except CompilationError as error:
            failures.append((prefetch.name, str(error)))
            continue
        chains.append(chain)
        removed += prefetch_overhead_instructions(prefetch)

    program = generate_configuration(
        loop, chains, bindings, kernel_prefix=prefix, default_distance=default_distance
    )
    program.failures = failures + program.failures
    program.removed_main_instructions = removed
    if not prefetches:
        program.failures.append(
            ("loop", "no software prefetches to convert; use the pragma pass instead")
        )
    return program
