"""Compiler assistance (Section 6 of the paper).

The paper implements two LLVM passes: one that converts *software prefetch*
instructions (and the address-generation code feeding them) into PPU event
kernels plus configuration instructions, and one that generates the events
from scratch for loops annotated with ``#pragma prefetch``.  LLVM is not
available here, so the passes operate on a small loop-level IR
(:mod:`repro.compiler.ir`) that the workloads use to describe their kernels —
the same role the paper's source code plus annotations plays.

* :mod:`repro.compiler.analysis` — depth-first dependence search from a
  prefetch back to the loop induction variable, failing exactly where the
  paper's pass fails (multiple non-invariant loads feeding one address,
  values with no induction-variable provenance, control flow).
* :mod:`repro.compiler.split` — ``split_on_loads``: the chain-of-events
  decomposition, one single-load event per step.
* :mod:`repro.compiler.bounds` — array bounds detection for the filter table.
* :mod:`repro.compiler.codegen` — event kernels in the PPU ISA plus the
  prefetcher configuration (address ranges, globals, tags, EWMA streams).
* :mod:`repro.compiler.dce` — dead-code elimination accounting: which main
  program instructions disappear once the software prefetches are removed.
* :mod:`repro.compiler.convert` — the software-prefetch conversion driver
  (Algorithm 1).
* :mod:`repro.compiler.pragma` — the pragma pass, which discovers
  stride-indirect chains without software-prefetch hints.
* :mod:`repro.compiler.frontend` — restricted-Python front end: a plain
  traversal function parsed (never executed) into the loop IR.
* :mod:`repro.compiler.pipeline` — the registry-facing derivation pipeline
  that turns a hinted loop into the ``manual``-mode configuration
  (the ``compiled`` kernel source).
"""

from .codegen import CompiledPrefetchProgram
from .convert import convert_software_prefetches
from .frontend import parse_loop
from .ir import (
    ArrayDecl,
    BinOp,
    ComputeStmt,
    Constant,
    IndexVar,
    Load,
    Loop,
    Param,
    PointerChaseStmt,
    SoftwarePrefetchStmt,
    StoreStmt,
    Value,
)
from .pipeline import DerivedKernels, derive_manual_configuration
from .pragma import generate_from_pragma

__all__ = [
    "ArrayDecl",
    "BinOp",
    "ComputeStmt",
    "Constant",
    "IndexVar",
    "Load",
    "Loop",
    "Param",
    "PointerChaseStmt",
    "SoftwarePrefetchStmt",
    "StoreStmt",
    "Value",
    "CompiledPrefetchProgram",
    "DerivedKernels",
    "convert_software_prefetches",
    "derive_manual_configuration",
    "generate_from_pragma",
    "parse_loop",
]
