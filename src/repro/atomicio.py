"""Atomic write-then-rename files shared by the on-disk caches.

Both persistent tiers — the :class:`~repro.sim.engine.cache.ResultCache`
and the :class:`~repro.trace_store.TraceStore` — publish entries with the
same discipline: write the payload to a temp file in the target directory,
then ``os.replace`` it into place, so concurrent readers (other runs,
multiprocess workers, service-daemon threads) only ever see a complete old
or complete new file.

The original per-class implementations named the temp file
``<entry>.tmp.<pid>``, which is unique across *processes* but not within
one: two concurrent writers of the same entry in the same process — exactly
what a long-lived ``repro serve`` daemon produces when a pool completion
callback and a submission handler both store the same digest — would share
one temp path, interleave their bytes, and then race ``os.replace`` (the
loser raises ``FileNotFoundError``; worse, a corrupt interleaving can win
the rename).  :func:`atomic_write_bytes` therefore makes temp names unique
per *write* — ``<entry>.tmp.<pid>.<thread>.<seq>`` — while keeping the pid
as the first suffix component so the dead-writer sweep can still tell
whether the owning process is alive.

The sweep (:func:`sweep_dead_writer_tmp_files`) removes temp files whose
writer process no longer exists: a run killed between the write and the
rename would otherwise leave its temp file behind forever.  Temp files of
live processes — concurrent runs sharing the directory — are left alone,
as are this process's own (a writer may be mid-rename on another thread).
"""

from __future__ import annotations

import itertools
import os
import threading
from pathlib import Path

#: Process-wide sequence making every temp name unique even when one thread
#: writes the same entry twice back to back.
_WRITE_SEQUENCE = itertools.count()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for the pid embedded in a temp-file name."""

    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # exists but owned elsewhere / platform quirk
        return True
    return True


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically via a uniquely-named temp file.

    Readers never observe a partial file, and concurrent writers of the same
    path — across processes *or* within one — never share a temp file: last
    rename wins with a complete payload either way.
    """

    tmp = path.parent / (
        f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}.{next(_WRITE_SEQUENCE)}"
    )
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        # Never leave a temp file behind on an error *this* process survives
        # (disk full, encoding bug); the sweep only reaps dead writers.
        tmp.unlink(missing_ok=True)
        raise


def writer_pid(tmp_path: Path) -> int | None:
    """The writer pid embedded in a temp-file name, or ``None`` if unparsable.

    Understands both the current ``<entry>.tmp.<pid>.<thread>.<seq>`` layout
    and the legacy ``<entry>.tmp.<pid>`` one, so upgrading does not strand
    old leftovers.
    """

    name = tmp_path.name
    marker = name.rfind(".tmp.")
    if marker < 0:
        return None
    first = name[marker + len(".tmp.") :].split(".", 1)[0]
    return int(first) if first.isdigit() else None


def sweep_dead_writer_tmp_files(directory: Path) -> int:
    """Remove ``*.tmp.*`` leftovers whose writer process is gone.

    Returns how many files were removed.  Files owned by a live process (a
    concurrent run sharing this directory) or by this process itself are
    kept.
    """

    removed = 0
    for stale in directory.glob("*.tmp.*"):
        pid = writer_pid(stale)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            stale.unlink()
            removed += 1
        except OSError:  # pragma: no cover - lost a race with another sweeper
            pass
    return removed
