"""Shared retry/backoff and deadline primitives for the execution stack.

Every layer that waits on something fallible — the :class:`~repro.service.
ServiceClient` connecting or resubmitting, the service daemon requeueing a
crashed chunk, the :class:`~repro.sim.engine.MultiprocessRunner` retrying a
hung worker's chunk — used to grow its own ad-hoc loop (typically an
uncapped, jitter-free ``delay *= 2``).  This module is the one shared
vocabulary:

* :class:`RetryPolicy` — bounded attempts with capped exponential backoff
  and **deterministic seeded jitter**: the jitter for attempt *n* is a pure
  function of ``(seed, n)``, so tests reproduce exact delay sequences while
  distinct clients (distinct seeds) still decorrelate their retries.
* :class:`Deadline` — a monotonic-clock budget threaded through runs,
  requests and chunks.  The clock is injectable, so deadline logic is unit
  tested without sleeping.

Neither class sleeps or spawns anything by itself; callers own their loops
and pass ``policy.delay(attempt)`` to whatever sleep primitive fits their
concurrency model (``time.sleep``, ``loop.call_later``, a queue timeout).
See ``docs/resilience.md`` for how the layers compose.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Optional, Union

from .errors import DeadlineExceededError

__all__ = ["RetryPolicy", "Deadline", "DeadlineExceededError"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    Attributes:
        max_attempts: Total tries, including the first (so ``3`` means one
            initial attempt plus at most two retries).
        base_delay: Delay before the first retry, in seconds.
        max_delay: Cap applied to the exponential term.  The returned delay
            never exceeds ``max_delay * (1 + jitter)``.
        multiplier: Exponential growth factor between retries.
        jitter: Maximum jitter *fraction* added on top of the capped delay.
            The actual fraction for attempt *n* is deterministic — a hash of
            ``(seed, n)`` mapped to ``[0, jitter)`` — never a live RNG.
        seed: Decorrelation seed.  Give each client/worker its own (its
            name, say) so a thundering herd spreads out, while a fixed seed
            reproduces the exact delay sequence in tests.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: str = ""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("RetryPolicy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("RetryPolicy delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("RetryPolicy multiplier must be >= 1")

    @property
    def retries(self) -> int:
        """Retries after the initial attempt."""

        return self.max_attempts - 1

    def _jitter_fraction(self, attempt: int) -> float:
        if not self.jitter:
            return 0.0
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode("utf-8")).digest()
        return self.jitter * (int.from_bytes(digest[:8], "big") / 2**64)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), capped and jittered.

        ``delay(0)`` is the wait before the *first* retry.  The exponential
        term is capped at :attr:`max_delay` **before** jitter is added, so
        the hard upper bound is ``max_delay * (1 + jitter)``.
        """

        if attempt < 0:
            raise ValueError("attempt index must be >= 0")
        capped = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        return capped * (1.0 + self._jitter_fraction(attempt))

    def delays(self) -> Iterator[float]:
        """Every retry delay this policy allows, in order."""

        for attempt in range(self.retries):
            yield self.delay(attempt)

    def with_seed(self, seed: str) -> "RetryPolicy":
        """The same policy decorrelated under a different seed."""

        return replace(self, seed=seed)


#: Anything accepted where a deadline is expected: a budget in seconds, an
#: existing :class:`Deadline`, or ``None`` for "unbounded".
DeadlineLike = Union["Deadline", float, int, None]


class Deadline:
    """A monotonic point in time after which work should stop.

    Created from a budget in seconds; share one instance across layers so
    nested waits (a run's deadline bounding each chunk's pool wait, say)
    consume a single budget instead of restarting it.  ``clock`` is
    injectable for tests.
    """

    __slots__ = ("seconds", "expires_at", "_clock")

    def __init__(
        self, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if seconds < 0:
            raise ValueError("deadline budget must be non-negative")
        self.seconds = float(seconds)
        self._clock = clock
        self.expires_at = clock() + self.seconds

    @classmethod
    def after(
        cls, value: DeadlineLike, *, clock: Callable[[], float] = time.monotonic
    ) -> Optional["Deadline"]:
        """Normalise a seconds-or-deadline-or-``None`` argument.

        The single conversion every deadline-accepting API uses: ``None``
        stays ``None`` (no deadline), an existing deadline passes through
        (shared budget), a number starts a fresh budget.
        """

        if value is None or isinstance(value, Deadline):
            return value
        return cls(float(value), clock=clock)

    def remaining(self) -> float:
        """Seconds left, clamped to zero."""

        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""

        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.seconds:g}s deadline"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline({self.seconds:g}s, {self.remaining():.3f}s remaining)"
