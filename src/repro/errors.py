"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can distinguish library failures from programming errors in their own
code with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid system, prefetcher or workload configuration was supplied."""


class AddressSpaceError(ReproError):
    """An invalid operation on the simulated virtual address space."""


class AllocationError(AddressSpaceError):
    """Allocation failed (out of simulated address space or bad size)."""


class AccessError(AddressSpaceError):
    """A read or write touched unmapped simulated memory."""


class TraceError(ReproError):
    """A malformed dynamic trace (bad dependence, unknown op kind, ...)."""


class TraceStoreError(ReproError):
    """A trace-store artifact could not be encoded or decoded.

    Raised by :mod:`repro.trace_store.format` on malformed, truncated or
    checksum-failing artifact bytes.  :meth:`repro.trace_store.TraceStore.get`
    converts it into a cache miss — a corrupt on-disk entry must never
    escape to the engine.
    """


class KernelError(ReproError):
    """An invalid PPU kernel program (bad register, unknown opcode, ...)."""


class KernelRuntimeError(KernelError):
    """A PPU kernel faulted at run time.

    In hardware this simply terminates the prefetch event (Section 5.1 of the
    paper: "any operation that would usually cause a trap or exception
    immediately causes termination of the prefetch event").  The interpreter
    raises this error internally and the PPU model converts it into a silent
    kernel abort.
    """


class CompilationError(ReproError):
    """The compiler pass could not convert the requested loop."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class VectorBackendUnsupported(SimulationError):
    """The vectorized replay backend cannot drive this request.

    Raised internally by :mod:`repro.sim.vector` when a trace, hierarchy or
    configuration falls outside what the numpy-backed replay supports (no
    numpy, programmable prefetcher hooks, non-power-of-two line sizes,
    mismatched lane configurations, ...).  Callers catch it and fall back to
    the interpreter path — it never escapes :func:`repro.sim.system.simulate`.
    """


class DeadlineExceededError(ReproError):
    """A deadline attached to a run, request or chunk expired.

    Raised by :meth:`repro.resilience.Deadline.check`; the runners convert
    it into labelled per-request failures (never cached, so a later
    ``--resume`` run retries exactly the expired work) and the service
    daemon converts it into ``failed`` outcomes for the expired waiters.
    """


class DuplicateResultError(ReproError):
    """Two simulation results were recorded for the same (workload, mode) key.

    Raised by :meth:`repro.sim.comparison.ComparisonResult.add` so that a
    mis-built plan cannot silently overwrite a prior measurement.
    """


class RegistryError(ReproError):
    """Invalid use of the workload registry.

    Raised when a workload name is registered twice (two kernels cannot share
    a ``SimRequest.workload`` key) or when a lookup names an unregistered
    workload.
    """


class ServiceError(ReproError):
    """A failure in the simulation service tier (``repro serve``).

    Raised by the :mod:`repro.service` client for connection failures that
    survive retry-with-backoff, protocol timeouts, and server-reported
    submission errors.
    """


class ServiceProtocolError(ServiceError):
    """A malformed message crossed the service wire protocol.

    Covers undecodable lines, non-object payloads and messages whose fields
    cannot be mapped back onto :class:`~repro.sim.engine.SimRequest` /
    :class:`~repro.sim.results.SimulationResult` values.
    """


class WorkerCrashedError(ServiceError):
    """A service pool worker died while executing a chunk.

    Raised internally by :class:`repro.service.pool.ChunkPool`; the server
    catches it, requeues the chunk, and only surfaces a failure label to
    waiting clients when the chunk exhausts its retry budget.
    """


class WorkloadError(ReproError):
    """A workload was asked for something it cannot provide.

    For example, requesting a software-prefetch trace for PageRank, which the
    paper notes cannot express software prefetches (Boost iterators hide the
    element addresses).
    """
