"""Prefetch modes — the bars of Figure 7 plus the Figure 11 ablation."""

from __future__ import annotations

from enum import Enum

from ..workloads.base import Workload


class PrefetchMode(Enum):
    """Every prefetching configuration the evaluation compares."""

    NONE = "none"
    STRIDE = "stride"
    GHB_REGULAR = "ghb-regular"
    GHB_LARGE = "ghb-large"
    SOFTWARE = "software"
    PRAGMA = "pragma"
    CONVERTED = "converted"
    MANUAL = "manual"
    #: The Figure 11 ablation: programmable prefetching with PPUs that block
    #: on intermediate loads instead of raising events.
    MANUAL_BLOCKED = "manual-blocked"

    @property
    def uses_programmable_prefetcher(self) -> bool:
        return self in (
            PrefetchMode.PRAGMA,
            PrefetchMode.CONVERTED,
            PrefetchMode.MANUAL,
            PrefetchMode.MANUAL_BLOCKED,
        )

    @property
    def trace_variant(self) -> str:
        """The trace variant this mode replays (only ``software`` differs)."""

        return "software" if self is PrefetchMode.SOFTWARE else "plain"

    @property
    def needs_workload_build(self) -> bool:
        """Whether simulating this mode requires the real workload.

        The programmable modes install kernel configurations built from the
        workload's data structures and their PPUs read line *contents*, so a
        stored trace artifact alone cannot drive them; every other mode can
        replay from the artifact tier (:mod:`repro.trace_store`) without a
        workload rebuild.
        """

        return self.uses_programmable_prefetcher

    @property
    def label(self) -> str:
        """Label used in the figure legends (matches the paper's wording)."""

        return {
            PrefetchMode.NONE: "No prefetching",
            PrefetchMode.STRIDE: "Stride",
            PrefetchMode.GHB_REGULAR: "GHB (regular)",
            PrefetchMode.GHB_LARGE: "GHB (large)",
            PrefetchMode.SOFTWARE: "Software",
            PrefetchMode.PRAGMA: "Pragma",
            PrefetchMode.CONVERTED: "Converted",
            PrefetchMode.MANUAL: "Manual",
            PrefetchMode.MANUAL_BLOCKED: "Blocked",
        }[self]


#: The modes shown in Figure 7, in bar order.
FIGURE7_MODES = [
    PrefetchMode.STRIDE,
    PrefetchMode.GHB_REGULAR,
    PrefetchMode.GHB_LARGE,
    PrefetchMode.SOFTWARE,
    PrefetchMode.PRAGMA,
    PrefetchMode.CONVERTED,
    PrefetchMode.MANUAL,
]


def mode_available(workload: Workload, mode: PrefetchMode) -> bool:
    """Whether ``mode`` can be built for ``workload``.

    Mirrors the missing bars of Figure 7: software prefetching (and therefore
    its conversion) is impossible for PageRank because the Boost iterators
    never expose element addresses, and a compiler pass that produced no
    events leaves nothing to run.
    """

    if mode == PrefetchMode.SOFTWARE:
        return workload.supports_software_prefetch()
    if mode == PrefetchMode.CONVERTED:
        if not workload.supports_software_prefetch():
            return False
        return bool(workload.converted_configuration().kernels)
    if mode == PrefetchMode.PRAGMA:
        return bool(workload.pragma_configuration().kernels)
    return True
