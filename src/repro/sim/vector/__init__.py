"""Vectorized numpy replay backend for the non-programmable prefetch modes.

The package replays :class:`~repro.cpu.trace.Trace` columns through the
memory hierarchy with chunked numpy precomputation
(:mod:`~repro.sim.vector.columns`) feeding a fused, bit-identical state
machine (:mod:`~repro.sim.vector.replay`), and can drive N cache-geometry
lanes over one trace pass (:func:`replay_trace_batch`).

Backend selection mirrors the kernel compiler's environment switch: the
vector backend is on by default whenever numpy is importable, and
``REPRO_REPLAY_BACKEND=interp`` (or ``off``/``0``/``false``/``no``) forces
the interpreter.  ``REPRO_REPLAY_BACKEND=vector`` states the default
explicitly — useful in CI matrices.  When numpy is missing, or a specific
request falls outside the supported envelope (programmable modes,
non-power-of-two line sizes, mismatched lane geometry), the caller falls
back to the interpreter silently: the backend changes wall-clock time, never
results, and the golden-stats suite pins that equivalence.
"""

from __future__ import annotations

import os

from .columns import CHUNK_OPS, TraceColumnPlan, numpy_available
from .replay import replay_trace, replay_trace_batch

#: Environment variable selecting the replay backend per request.
BACKEND_ENV_VAR = "REPRO_REPLAY_BACKEND"

#: Values that force the interpreter path (mirrors the kernel compiler's
#: ``REPRO_KERNEL_COMPILER`` off-values; ``interp`` is the documented one).
_OFF_VALUES = frozenset({"interp", "interpreter", "off", "0", "false", "no"})


def vector_backend_enabled() -> bool:
    """Whether requests should try the vector backend before the interpreter.

    True when numpy imported and :data:`BACKEND_ENV_VAR` is unset or set to
    anything but an off-value.  A true return is an *attempt*, not a
    guarantee: per-request support checks may still fall back.
    """

    value = os.environ.get(BACKEND_ENV_VAR, "")
    if value.strip().lower() in _OFF_VALUES:
        return False
    return numpy_available()


__all__ = [
    "BACKEND_ENV_VAR",
    "CHUNK_OPS",
    "TraceColumnPlan",
    "numpy_available",
    "replay_trace",
    "replay_trace_batch",
    "vector_backend_enabled",
]
