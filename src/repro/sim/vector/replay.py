"""Fused, bit-identical replay over precomputed trace columns.

:func:`replay_trace` (one hierarchy) and :func:`replay_trace_batch` (N
hierarchies, one pass) are drop-in replacements for
:meth:`repro.cpu.core.OutOfOrderCore.run` on the non-programmable prefetch
modes.  All per-op *pure* arithmetic — set/tag extraction, page numbers,
front-end fetch increments, dependence spans — comes precomputed per chunk
from :class:`~repro.sim.vector.columns.TraceColumnPlan`; what remains here is
the inherently sequential state machine: the ROB/LQ window, the dependence
walk, and the cache/MSHR/TLB/DRAM bookkeeping.

That state machine is *generated*, not handwritten: following the kernel
compiler's idiom (:mod:`repro.programmable.compiler`), :func:`_chunk_source`
emits one specialized replay loop per (core config, cache geometry, DRAM
shape, prefetcher attachment) signature, with every configuration constant
baked in as a literal and the L1/L2 probe, MSHR allocate, DRAM channel pick
and cache fill all inlined into a single function body.  The source
transcribes the interpreter's arithmetic *exactly* (same operations, same
order, same float expressions), which is what the golden-stats gate demands;
``exec`` of the compiled source is cached per signature, so a sweep over N
workloads pays the (millisecond) compile once.

Three safety invariants make the specialization a replay of the interpreter
rather than a fork of the timing model:

* **Shared state, not copies.**  The loop mutates the hierarchy's own cache
  sets, MSHR heaps, TLB dicts and DRAM channels.  Prefetchers attached via
  the demand snoop (stride, GHB) and software-prefetch ops still go through
  ``MemoryHierarchy.prefetch_access``, so their mutations interleave with
  the fused loop exactly as they do with the interpreter.
* **Only exact arithmetic is reordered.**  Integer counters accumulate in
  loop locals and fold into the shared stats once at the end (integer
  addition commutes exactly); DRAM busy cycles are a multiple of the line
  service time and stay exact in float64, so they fold too.  Genuinely
  order-dependent float state (MSHR stall cycles) is kept in locals only in
  the *pure* variant — no snoop, no software prefetches — where this loop
  is provably the sole writer, and is updated through the shared objects in
  the general variant.
* **Write-only bookkeeping is elided.**  ``CacheLine.lru_stamp`` and
  ``Cache._lru_counter`` are written by the interpreter but never read —
  replacement order lives in each set dict's insertion order — so the
  generated loop skips them; no statistic (and therefore no golden
  fingerprint) observes the difference.
* **Dead code is dropped only under a checked invariant.**  The
  interpreter's ``previous_issue`` term never exceeds ``fetch_clock`` when
  per-op instruction counts are non-negative (the column plan verifies
  this); the TLB fast path reuses the previous op's page only while nothing
  else can have touched TLB recency order (reset after every snoop or
  software prefetch).

Anything this module cannot replay bit-identically — programmable-prefetcher
hooks, non-power-of-two line sizes, lanes that disagree on line or page
geometry — raises :class:`~repro.errors.VectorBackendUnsupported` *before*
touching any hierarchy state, so callers can fall back to the interpreter.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Sequence

from ...config import CoreConfig
from ...cpu.core import CoreStats
from ...cpu.trace import OpKind, Trace
from ...errors import VectorBackendUnsupported
from ...memory.cache import CacheLine
from ...memory.hierarchy import MemoryHierarchy
from .columns import CHUNK_OPS, TraceColumnPlan

_KIND_COMPUTE = int(OpKind.COMPUTE)
_KIND_LOAD = int(OpKind.LOAD)
_KIND_STORE = int(OpKind.STORE)
_KIND_SWPF = int(OpKind.SOFTWARE_PREFETCH)
_KIND_BRANCH = int(OpKind.BRANCH)

#: Integer counters accumulated in loop locals and folded once per run.
#: Order in this tuple is the order of the generated prologue/epilogue.
_INT_COUNTERS = (
    "tlb_accesses", "tlb_l1_hits",
    "l1_read_accesses", "l1_read_hits", "l1_write_accesses", "l1_write_hits",
    "l1_inflight_merges", "l1_misses", "l1_prefetch_used",
    "l1_evictions", "l1_dirty_evictions", "l1_prefetch_evicted_unused",
    "l1_allocations",
    "l2_read_accesses", "l2_read_hits", "l2_inflight_merges", "l2_misses",
    "l2_prefetch_used", "l2_evictions", "l2_dirty_evictions",
    "l2_prefetch_evicted_unused", "l2_allocations",
    "dram_demand", "dram_writebacks",
)


def _check_lane_supported(hierarchy: MemoryHierarchy, line_shift: int, page_bytes: int) -> None:
    """Reject configurations the specialized loop cannot replay bit-identically."""

    if hierarchy._advance_hook is not None:
        raise VectorBackendUnsupported(
            "an advance hook is installed (programmable prefetcher attached)"
        )
    l1_shift = hierarchy.l1._line_shift
    l2_shift = hierarchy.l2._line_shift
    if l1_shift is None or l2_shift is None:
        raise VectorBackendUnsupported("non-power-of-two cache line size")
    if l1_shift != line_shift or l2_shift != line_shift:
        raise VectorBackendUnsupported("lanes disagree on cache line size")
    if hierarchy.tlb._page_bytes != page_bytes:
        raise VectorBackendUnsupported("lanes disagree on TLB page size")


def _mispredict_every(core_config: CoreConfig) -> int:
    """The interpreter's deterministic mispredict period (0 = never)."""

    if core_config.branch_mispredict_rate > 0:
        return int(round(1.0 / core_config.branch_mispredict_rate))
    return 0


# --------------------------------------------------------------------------
# Source generation
# --------------------------------------------------------------------------

#: Compiled chunk-replay functions, keyed by the full specialization tuple.
_COMPILED: dict[tuple, Callable] = {}


def _tlb_block(load_time: str) -> str:
    """The inlined TLB access shared by the load and store paths (indent 3).

    A TLB L1 hit has translation latency 0.0, and ``t + 0.0 == t`` bitwise
    for the non-negative floats the model produces, so both hit paths skip
    the addition the interpreter performs.  ``last_page`` short-circuits the
    recency update: when the page matches the previous access it is already
    the MRU tail, so the interpreter's delete/re-insert is a dict no-op.
    """

    return f"""\
            tlb_accesses += 1
            if page == last_page:
                tlb_l1_hits += 1
                t = {load_time}
            elif page in tlb_l1:
                del tlb_l1[page]
                tlb_l1[page] = None
                tlb_l1_hits += 1
                last_page = page
                t = {load_time}
            else:
                t = {load_time} + tlb_miss(page)
                last_page = page"""


def _chunk_source(
    rob: int,
    lq: int,
    alu: int,
    penalty: int,
    every: int,
    l1_hit: int,
    l1_cap: int,
    l1_assoc: int,
    l1_shift: int,
    l2_hit: int,
    l2_cap: int,
    l2_assoc: int,
    l2_mask: int,
    l2_shift: int,
    dram_lat: int,
    svc: int,
    channels: int,
    has_snoop: bool,
    shared: bool,
) -> str:
    """Emit the specialized chunk-replay function for one signature.

    Every statement mirrors a statement in ``OutOfOrderCore.run``,
    ``MemoryHierarchy.demand_access_time``/``_access_l2``,
    ``MSHRFile.allocate``, ``Cache.fill_entry`` or ``DRAMModel.access``;
    when editing either side, keep them in lockstep — the golden suite and
    the differential harness will catch a divergence, not tolerate it.

    ``shared`` selects the general variant: LRU counters and MSHR stall
    floats live on the hierarchy objects because snoop-driven prefetchers
    or software-prefetch ops interleave writes with ours.  The pure variant
    (no snoop, no SWPF ops in the trace) keeps them in locals for the whole
    chunk and writes them back once.
    """

    pure = not shared

    if pure:
        l1_stall_stmt = "l1_stall += grant - t"
        l2_stall_stmt = "l2_stall += l2_grant - time2"
    else:
        l1_stall_stmt = "l1_mshrs.total_stall_cycles += grant - t"
        l2_stall_stmt = "l2_mshrs.total_stall_cycles += l2_grant - time2"

    # Optional ``level`` tracking: only the demand snoop consumes it.
    lvl_l1 = '\n                    level = "l1"' if has_snoop else ""
    lvl_l1_inflight = '\n                    level = "l1_inflight"' if has_snoop else ""
    lvl_l2 = '\n                        level = "l2"' if has_snoop else ""
    lvl_l2_inflight = '\n                        level = "l2_inflight"' if has_snoop else ""
    lvl_dram = '\n                    level = "dram"' if has_snoop else ""

    # ----- prologue -------------------------------------------------------
    lines = ["def _replay_chunk_compiled(lane, chunk, set_col, tag_col):"]
    lines.append("""\
    l1_sets = lane.l1_sets
    l2_sets = lane.l2_sets
    l1_completions = lane.l1_completions
    l2_completions = lane.l2_completions
    channel_free = lane.channel_free
    tlb_l1 = lane.tlb_l1
    tlb_miss = lane.tlb_miss
    completion = lane.completion
    completion_append = completion.append
    retires = lane.retires
    retires_append = retires.append
    rob_idx = len(retires) - %d
    outstanding_loads = lane.outstanding_loads
    loads_append = outstanding_loads.append
    loads_popleft = outstanding_loads.popleft
    loads_len = lane.loads_len
    fetch_clock = lane.fetch_clock
    last_retire = lane.last_retire
    branch_counter = lane.branch_counter
    last_page = lane.last_page
    load_latency_total = lane.load_latency_total
    load_stall_total = lane.load_stall_total
    dram_busy = lane.dram_busy""" % rob)
    if pure:
        lines.append("""\
    l1_stall = lane.l1_stall
    l2_stall = lane.l2_stall""")
    else:
        lines.append("""\
    l1_mshrs = lane.l1_mshrs
    l2_mshrs = lane.l2_mshrs
    prefetch_access = lane.prefetch_access""")
    if has_snoop:
        lines.append("    snoop = lane.snoop")
    for name in _INT_COUNTERS:
        lines.append(f"    {name} = lane.{name}")
    lines.append("""\
    dep_values = chunk.dep_values
    dep_pos = 0""")

    # ----- loop header ----------------------------------------------------
    # The pure variant never reads op addresses (pages and set/tag columns
    # are precomputed; no snoop or software prefetch needs the raw
    # address), so its zip carries one column less.  The cache-line index
    # is not a column at all: on the rare L1 miss it is reassembled from
    # the set/tag pair (``tag << set_shift | set_index``), which is exact
    # because the set count is a power of two.
    if shared:
        lines.append("""\
    for kind, addr, fetch_incr, dep_end, page, set_index, tag in zip(
        chunk.kinds, chunk.addrs, chunk.fetch_incr, chunk.dep_ends,
        chunk.pages, set_col, tag_col,
    ):""")
    else:
        lines.append("""\
    for kind, fetch_incr, dep_end, page, set_index, tag in zip(
        chunk.kinds, chunk.fetch_incr, chunk.dep_ends,
        chunk.pages, set_col, tag_col,
    ):""")

    # ----- front end ------------------------------------------------------
    # ``issue_time = max(fetch_clock, previous_issue, window head)`` loses
    # the ``previous_issue`` term: fetch_clock advances by a non-negative
    # increment from the previous issue time (verified by the column plan),
    # so it dominates.  The ROB window head is retires[i - rob] — the
    # retire-window deque is replaced by the append-only retires list.
    lines.append("""\
        issue_time = fetch_clock
        if rob_idx >= 0:
            rob_ready = retires[rob_idx]
            if rob_ready > issue_time:
                issue_time = rob_ready
        rob_idx += 1
        fetch_clock = issue_time + fetch_incr
        deps_ready = issue_time
        while dep_pos < dep_end:
            dep_time = completion[dep_values[dep_pos]]
            dep_pos += 1
            if dep_time > deps_ready:
                deps_ready = dep_time""")

    # ----- shared inline blocks ------------------------------------------
    l1_mshr_block = f"""\
                while l1_completions and l1_completions[0] <= t:
                    heappop(l1_completions)
                if len(l1_completions) < {l1_cap!r}:
                    grant = t
                else:
                    grant = l1_completions[0]
                    {l1_stall_stmt}
                    while l1_completions and l1_completions[0] <= grant:
                        heappop(l1_completions)
                l1_allocations += 1"""

    if channels == 2:
        dram_block = f"""\
                    free0 = channel_free[0]
                    free1 = channel_free[1]
                    if free1 < free0:
                        start = time3 if time3 > free1 else free1
                        channel_free[1] = start + {svc!r}
                    else:
                        start = time3 if time3 > free0 else free0
                        channel_free[0] = start + {svc!r}"""
    else:
        dram_block = f"""\
                    dram_channel = 0
                    dram_earliest = channel_free[0]
                    for dram_i in range(1, {channels!r}):
                        dram_free = channel_free[dram_i]
                        if dram_free < dram_earliest:
                            dram_earliest = dram_free
                            dram_channel = dram_i
                    start = time3 if time3 > dram_earliest else dram_earliest
                    channel_free[dram_channel] = start + {svc!r}"""

    l2_block = f"""\
                time2 = grant + {l1_hit!r}
                line_index = tag << {l1_shift!r} | set_index
                l2_read_accesses += 1
                l2_set = l2_sets[line_index & {l2_mask!r}]
                l2_tag = line_index >> {l2_shift!r}
                l2_line = l2_set.get(l2_tag)
                if l2_line is not None:
                    del l2_set[l2_tag]
                    l2_set[l2_tag] = l2_line
                    if l2_line.prefetched and not l2_line.used:
                        l2_line.used = True
                        l2_prefetch_used += 1
                    fill_time = l2_line.fill_time
                    if fill_time <= time2:
                        l2_read_hits += 1
                        complete = time2 + {l2_hit!r}{lvl_l2}
                    else:
                        l2_inflight_merges += 1
                        earliest = time2 + {l2_hit!r}
                        complete = fill_time if fill_time > earliest else earliest{lvl_l2_inflight}
                else:
                    l2_misses += 1
                    while l2_completions and l2_completions[0] <= time2:
                        heappop(l2_completions)
                    if len(l2_completions) < {l2_cap!r}:
                        l2_grant = time2
                    else:
                        l2_grant = l2_completions[0]
                        {l2_stall_stmt}
                        while l2_completions and l2_completions[0] <= l2_grant:
                            heappop(l2_completions)
                    l2_allocations += 1
                    time3 = l2_grant + {l2_hit!r}
{dram_block}
                    dram_busy += {svc!r}
                    dram_demand += 1
                    complete = start + {dram_lat!r}
                    l2_existing = l2_set.get(l2_tag)
                    if l2_existing is not None:
                        if complete < l2_existing.fill_time:
                            l2_existing.fill_time = complete
                        del l2_set[l2_tag]
                        l2_set[l2_tag] = l2_existing
                    else:
                        if len(l2_set) >= {l2_assoc!r}:
                            l2_victim = l2_set.pop(next(iter(l2_set)))
                            l2_evictions += 1
                            if l2_victim.dirty:
                                l2_dirty_evictions += 1
                                dram_writebacks += 1
                            if l2_victim.prefetched and not l2_victim.used:
                                l2_prefetch_evicted_unused += 1
                        l2_set[l2_tag] = CacheLine(l2_tag, complete, False, False, False, 0)
                    heappush(l2_completions, complete){lvl_dram}"""

    def l1_fill_block(write: bool) -> str:
        dirty_merge = (
            "\n                    l1_existing.dirty = True" if write else ""
        )
        return f"""\
                l1_existing = cache_set.get(tag)
                if l1_existing is not None:
                    if complete < l1_existing.fill_time:
                        l1_existing.fill_time = complete{dirty_merge}
                    del cache_set[tag]
                    cache_set[tag] = l1_existing
                else:
                    if len(cache_set) >= {l1_assoc!r}:
                        l1_victim = cache_set.pop(next(iter(cache_set)))
                        l1_evictions += 1
                        if l1_victim.dirty:
                            l1_dirty_evictions += 1
                        if l1_victim.prefetched and not l1_victim.used:
                            l1_prefetch_evicted_unused += 1
                    cache_set[tag] = CacheLine(tag, complete, False, False, {write!r}, 0)
                heappush(l1_completions, complete)"""

    # ----- LOAD -----------------------------------------------------------
    lines.append(f"""\
        if kind == {_KIND_LOAD!r}:
            if loads_len >= {lq!r}:
                lq_ready = loads_popleft()
                loads_len -= 1
                if lq_ready > deps_ready:
                    deps_ready = lq_ready
{_tlb_block("deps_ready")}
            l1_read_accesses += 1
            cache_set = l1_sets[set_index]
            line = cache_set.get(tag)
            if line is not None:
                fill_time = line.fill_time
                if fill_time <= t:
                    l1_read_hits += 1
                    complete = t + {l1_hit!r}{lvl_l1}
                else:
                    l1_inflight_merges += 1
                    earliest = t + {l1_hit!r}
                    complete = fill_time if fill_time > earliest else earliest{lvl_l1_inflight}
                del cache_set[tag]
                cache_set[tag] = line
                if line.prefetched and not line.used:
                    line.used = True
                    l1_prefetch_used += 1
            else:
                l1_misses += 1
{l1_mshr_block}
{l2_block}
{l1_fill_block(False)}""")
    if has_snoop:
        lines.append("""\
            snoop(addr, t, level)
            last_page = -1""")
    lines.append(f"""\
            loads_append(complete)
            loads_len += 1
            latency = complete - deps_ready
            load_latency_total += latency
            if latency > {alu!r}:
                load_stall_total += latency""")

    # ----- COMPUTE (the second most common kind gets the second test) -----
    lines.append(f"""\
        elif kind == {_KIND_COMPUTE!r}:
            base = fetch_clock if fetch_clock > deps_ready else deps_ready
            complete = base + {alu!r}""")

    # ----- STORE ----------------------------------------------------------
    # The store's hierarchy completion time is discarded (store-buffer
    # model) and writes are never snooped; ``complete`` from the inlined
    # miss path is overwritten below.
    lines.append(f"""\
        elif kind == {_KIND_STORE!r}:
{_tlb_block("deps_ready")}
            l1_write_accesses += 1
            cache_set = l1_sets[set_index]
            line = cache_set.get(tag)
            if line is not None:
                if line.fill_time <= t:
                    l1_write_hits += 1
                else:
                    l1_inflight_merges += 1
                del cache_set[tag]
                cache_set[tag] = line
                line.dirty = True
                if line.prefetched and not line.used:
                    line.used = True
                    l1_prefetch_used += 1
            else:
                l1_misses += 1
{l1_mshr_block}
{l2_block}
{l1_fill_block(True)}
            complete = deps_ready + {alu!r}""")

    # ----- BRANCH ---------------------------------------------------------
    if every:
        lines.append(f"""\
        elif kind == {_KIND_BRANCH!r}:
            branch_counter += 1
            complete = deps_ready + {alu!r}
            if branch_counter % {every!r} == 0:
                flush_until = complete + {penalty!r}
                if flush_until > fetch_clock:
                    fetch_clock = flush_until""")
    else:
        lines.append(f"""\
        elif kind == {_KIND_BRANCH!r}:
            branch_counter += 1
            complete = deps_ready + {alu!r}""")

    # ----- SOFTWARE_PREFETCH (absent from pure traces by construction) ----
    if shared:
        lines.append(f"""\
        elif kind == {_KIND_SWPF!r}:
            prefetch_access(addr, deps_ready)
            last_page = -1
            complete = deps_ready + {alu!r}""")

    # ----- everything else (CONFIG costs a single instruction) -----------
    lines.append(f"""\
        else:
            base = fetch_clock if fetch_clock > deps_ready else deps_ready
            complete = base + {alu!r}""")

    # ----- retire ---------------------------------------------------------
    lines.append("""\
        completion_append(complete)
        if complete > last_retire:
            last_retire = complete
        retires_append(last_retire)""")

    # ----- epilogue -------------------------------------------------------
    lines.append("""\
    lane.loads_len = loads_len
    lane.fetch_clock = fetch_clock
    lane.last_retire = last_retire
    lane.branch_counter = branch_counter
    lane.last_page = last_page
    lane.load_latency_total = load_latency_total
    lane.load_stall_total = load_stall_total
    lane.dram_busy = dram_busy""")
    if pure:
        lines.append("""\
    lane.l1_stall = l1_stall
    lane.l2_stall = l2_stall""")
    for name in _INT_COUNTERS:
        lines.append(f"    lane.{name} = {name}")

    return "\n".join(lines) + "\n"


def _chunk_fn(
    hierarchy: MemoryHierarchy, core_config: CoreConfig, *, has_snoop: bool, shared: bool
) -> Callable:
    """The compiled chunk-replay function for one lane's signature."""

    l1 = hierarchy.l1
    l2 = hierarchy.l2
    dram = hierarchy.dram
    key = (
        core_config.rob_entries,
        core_config.load_queue_entries,
        core_config.int_alu_latency,
        core_config.branch_mispredict_penalty,
        _mispredict_every(core_config),
        hierarchy._l1_hit_latency,
        hierarchy.l1_mshrs._capacity,
        l1._associativity,
        hierarchy._l1_set_shift,
        hierarchy._l2_hit_latency,
        hierarchy.l2_mshrs._capacity,
        l2._associativity,
        hierarchy._l2_set_mask,
        hierarchy._l2_set_shift,
        dram._access_latency,
        dram._service_cycles,
        len(dram._channel_free),
        has_snoop,
        shared,
    )
    fn = _COMPILED.get(key)
    if fn is None:
        source = _chunk_source(*key)
        namespace = {"heappop": heappop, "heappush": heappush, "CacheLine": CacheLine}
        exec(compile(source, "<repro.sim.vector.replay>", "exec"), namespace)
        fn = namespace["_replay_chunk_compiled"]
        _COMPILED[key] = fn
    return fn


# --------------------------------------------------------------------------
# Lane state
# --------------------------------------------------------------------------


class _Lane:
    """One hierarchy's replay state, persisted between chunks.

    The compiled chunk function unpacks these fields into locals, runs, and
    repacks — the pack/unpack cost is amortised over
    :data:`~.columns.CHUNK_OPS` ops.
    """

    __slots__ = (
        # static per-lane references
        "hierarchy", "l1", "l2", "l1_sets", "l2_sets",
        "l1_mshrs", "l2_mshrs", "l1_completions", "l2_completions",
        "channel_free", "tlb_l1", "tlb_miss", "prefetch_access", "snoop",
        "l1_set_mask", "l1_set_shift", "chunk_fn", "pure",
        # core timing state
        "completion", "retires", "outstanding_loads", "loads_len",
        "fetch_clock", "last_retire", "branch_counter", "last_page",
        "load_latency_total", "load_stall_total",
        # pure-variant mirrors of order-dependent shared floats
        "l1_stall", "l2_stall",
        # exact float accumulator (multiples of the DRAM service time)
        "dram_busy",
    ) + _INT_COUNTERS

    def __init__(self, hierarchy: MemoryHierarchy, core_config: CoreConfig, shared: bool) -> None:
        self.hierarchy = hierarchy
        self.l1 = hierarchy.l1
        self.l2 = hierarchy.l2
        self.l1_sets = hierarchy.l1._sets
        self.l2_sets = hierarchy.l2._sets
        self.l1_mshrs = hierarchy.l1_mshrs
        self.l2_mshrs = hierarchy.l2_mshrs
        self.l1_completions = hierarchy.l1_mshrs._completions
        self.l2_completions = hierarchy.l2_mshrs._completions
        self.channel_free = hierarchy.dram._channel_free
        self.tlb_l1 = hierarchy._tlb_l1_entries
        self.tlb_miss = hierarchy.tlb.miss
        self.prefetch_access = hierarchy.prefetch_access
        self.snoop = hierarchy._demand_snoop
        self.l1_set_mask = hierarchy._l1_set_mask
        self.l1_set_shift = hierarchy._l1_set_shift
        self.pure = not shared
        self.chunk_fn = _chunk_fn(
            hierarchy, core_config, has_snoop=self.snoop is not None, shared=shared
        )

        self.completion: list[float] = []
        self.retires: list[float] = []
        self.outstanding_loads: deque[float] = deque()
        self.loads_len = 0
        self.fetch_clock = 0.0
        self.last_retire = 0.0
        self.branch_counter = 0
        self.last_page = -1
        self.load_latency_total = 0.0
        self.load_stall_total = 0.0

        # Pure variant: this loop is the sole writer of the MSHR stall
        # accumulators, so the lane carries them (seeded with the current
        # values) and *assigns* them back — bit-identical to the
        # interpreter's in-place adds because the add order is preserved.
        self.l1_stall = hierarchy.l1_mshrs.total_stall_cycles
        self.l2_stall = hierarchy.l2_mshrs.total_stall_cycles
        self.dram_busy = 0.0

        for name in _INT_COUNTERS:
            setattr(self, name, 0)

    def fold_stats(self) -> None:
        """Apply the locally accumulated counters to the shared stats objects.

        Integer addition is commutative and exact, so folding once at the
        end produces the same totals as the interpreter's per-op increments
        even though prefetch paths incremented the same objects mid-run.
        The DRAM busy fold is float but exact (every term is a multiple of
        the line service time, far below 2**53).
        """

        hierarchy = self.hierarchy
        tlb_stats = hierarchy.tlb.stats
        tlb_stats.accesses += self.tlb_accesses
        tlb_stats.l1_hits += self.tlb_l1_hits

        l1_stats = self.l1.stats
        l1_stats.demand_read_accesses += self.l1_read_accesses
        l1_stats.demand_read_hits += self.l1_read_hits
        l1_stats.demand_write_accesses += self.l1_write_accesses
        l1_stats.demand_write_hits += self.l1_write_hits
        l1_stats.inflight_merges += self.l1_inflight_merges
        l1_stats.misses += self.l1_misses
        l1_stats.prefetch_used += self.l1_prefetch_used
        l1_stats.evictions += self.l1_evictions
        l1_stats.dirty_evictions += self.l1_dirty_evictions
        l1_stats.prefetch_evicted_unused += self.l1_prefetch_evicted_unused

        l2_stats = self.l2.stats
        l2_stats.demand_read_accesses += self.l2_read_accesses
        l2_stats.demand_read_hits += self.l2_read_hits
        l2_stats.inflight_merges += self.l2_inflight_merges
        l2_stats.misses += self.l2_misses
        l2_stats.prefetch_used += self.l2_prefetch_used
        l2_stats.evictions += self.l2_evictions
        l2_stats.dirty_evictions += self.l2_dirty_evictions
        l2_stats.prefetch_evicted_unused += self.l2_prefetch_evicted_unused

        self.l1_mshrs.total_allocations += self.l1_allocations
        self.l2_mshrs.total_allocations += self.l2_allocations
        if self.pure:
            self.l1_mshrs.total_stall_cycles = self.l1_stall
            self.l2_mshrs.total_stall_cycles = self.l2_stall

        dram_stats = self.hierarchy.dram.stats
        dram_stats.demand_accesses += self.dram_demand
        dram_stats.writebacks += self.dram_writebacks
        dram_stats.busy_cycles += self.dram_busy


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def replay_trace_batch(
    trace: Trace,
    hierarchies: Sequence[MemoryHierarchy],
    core_config: CoreConfig,
    *,
    chunk_ops: int = CHUNK_OPS,
) -> list[CoreStats]:
    """Replay ``trace`` over N hierarchies in one pass; return N CoreStats.

    All lanes must share the core configuration, line size and page size;
    they may differ freely in cache geometry (sets, associativity, latency,
    MSHRs) and attached hardware prefetchers.  The trace columns are decoded
    once per chunk; each lane then consumes the shared chunk with its own
    vectorized set/tag columns, so simulating N geometries costs one column
    pass plus N state machines instead of N full replays.

    Raises :class:`VectorBackendUnsupported` — before mutating any lane —
    when numpy is missing or any lane falls outside the supported envelope.
    """

    if not hierarchies:
        return []
    first = hierarchies[0]
    line_shift = first.l1._line_shift
    if line_shift is None:
        raise VectorBackendUnsupported("non-power-of-two cache line size")
    page_bytes = first.tlb._page_bytes
    for hierarchy in hierarchies:
        _check_lane_supported(hierarchy, line_shift, page_bytes)
    plan = TraceColumnPlan(
        trace,
        page_bytes=page_bytes,
        line_shift=line_shift,
        issue_width=core_config.issue_width,
        chunk_ops=chunk_ops,
    )

    counts = plan.kind_counts()
    software_prefetches = counts[_KIND_SWPF]
    lanes = [
        _Lane(
            hierarchy,
            core_config,
            shared=hierarchy._demand_snoop is not None or software_prefetches > 0,
        )
        for hierarchy in hierarchies
    ]

    lane_set_tag = plan.lane_set_tag
    want_addrs = any(not lane.pure for lane in lanes)
    for chunk in plan.chunks(want_addrs=want_addrs):
        # Lanes sharing a geometry share the chunk's set/tag columns.
        geometry_cache: dict[tuple[int, int], tuple[list, list]] = {}
        for lane in lanes:
            key = (lane.l1_set_mask, lane.l1_set_shift)
            columns = geometry_cache.get(key)
            if columns is None:
                columns = lane_set_tag(chunk, key[0], key[1])
                geometry_cache[key] = columns
            lane.chunk_fn(lane, chunk, columns[0], columns[1])

    instructions = plan.total_instructions()
    loads = counts[_KIND_LOAD]
    stores = counts[_KIND_STORE]
    branches = counts[_KIND_BRANCH]
    mispredict_every = _mispredict_every(core_config)
    # branch_counter runs 1..branches with a mispredict at every multiple of
    # mispredict_every, so the count closes to a division.
    branch_mispredicts = branches // mispredict_every if mispredict_every else 0

    results = []
    for lane in lanes:
        lane.fold_stats()
        results.append(
            CoreStats(
                cycles=lane.last_retire,
                instructions=instructions,
                ops=plan.n,
                loads=loads,
                stores=stores,
                software_prefetches=software_prefetches,
                branches=branches,
                branch_mispredicts=branch_mispredicts,
                load_latency_total=lane.load_latency_total,
                load_stall_total=lane.load_stall_total,
            )
        )
    return results


def replay_trace(
    trace: Trace,
    hierarchy: MemoryHierarchy,
    core_config: CoreConfig,
    *,
    chunk_ops: int = CHUNK_OPS,
) -> CoreStats:
    """Single-lane :func:`replay_trace_batch` — the per-request entry point."""

    return replay_trace_batch(trace, [hierarchy], core_config, chunk_ops=chunk_ops)[0]
