"""Chunked numpy precomputation over trace columns.

The vectorized replay backend consumes a :class:`~repro.cpu.trace.Trace`
through this module: the five flat ``array`` columns are adopted zero-copy as
numpy views (``np.frombuffer`` over the backing buffers), and every per-op
quantity that is a *pure function of the op* — the cache-line index, the
L1 set index and tag, the TLB page number, the front-end fetch increment,
the per-op dependence span — is computed for a whole chunk at once with
vectorized integer arithmetic (``(addrs >> shift) & mask`` over the chunk)
instead of once per op in interpreted Python.

Chunks are materialised as plain Python lists (one ``ndarray.tolist()`` per
derived column, a single C-level conversion) because the replay state
machine that consumes them is still a CPython loop, and CPython iterates
lists of ready ``int``/``float`` objects far faster than it subscripts
ndarrays.  Resident size stays O(chunk), not O(trace): each chunk's derived
columns are dropped before the next chunk is built, which is what lets the
same plan drive paper-scale traces without holding several decoded copies
of the whole trace at once.

What is *not* precomputed here is everything that depends on simulation
state — cache residency, MSHR occupancy, completion times.  Those are
inherently sequential (a line filled at time T changes the outcome of every
later access to its set) and are handled by the fused state machine in
:mod:`repro.sim.vector.replay`, which falls back to exactly the
interpreter's arithmetic, op by op, over these precomputed columns.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from ...cpu.trace import OpKind, Trace
from ...errors import VectorBackendUnsupported

try:  # numpy is an optional extra; the interpreter path never needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via numpy-absent tests
    _np = None

#: Ops per precomputed chunk.  Large enough to amortise the numpy kernel
#: launches and ``tolist()`` calls, small enough that a chunk's derived
#: columns stay cache- and memory-friendly at paper scale.
CHUNK_OPS = 1 << 16


def numpy_available() -> bool:
    """Whether the optional numpy dependency imported successfully."""

    return _np is not None


class ChunkColumns(NamedTuple):
    """One chunk's geometry-independent derived columns (plain lists)."""

    start: int
    end: int
    kinds: list
    #: Raw op addresses — materialised only when a consumer needs them
    #: (demand snoop, software prefetch); ``None`` otherwise.
    addrs: "object"
    #: Per-op front-end advance: ``count / issue_width`` (float).
    fetch_incr: list
    #: Per-op dependence end offsets, rebased to this chunk's value slice.
    dep_ends: list
    #: This chunk's slice of the packed dependence indices (global op ids).
    dep_values: list
    #: TLB page number of every op's address.
    pages: list
    #: Cache-line index (``addr >> line_shift``) as an ndarray for per-lane
    #: set/tag derivation.  Never materialised as a list: the replay loop
    #: reassembles a line index from set/tag on the rare cache miss.
    lines_np: "object"


class TraceColumnPlan:
    """Zero-copy numpy views over a trace plus chunked derived columns.

    One plan serves any number of replay lanes: the chunk columns above are
    lane-independent, and per-lane L1 set/tag columns are derived from the
    shared ``lines_np`` view with two vectorized ops per (chunk, lane) via
    :meth:`lane_set_tag`.
    """

    def __init__(
        self,
        trace: Trace,
        *,
        page_bytes: int,
        line_shift: int,
        issue_width: int,
        chunk_ops: int = CHUNK_OPS,
    ) -> None:
        if _np is None:
            raise VectorBackendUnsupported("numpy is not installed")
        if chunk_ops < 1:
            raise VectorBackendUnsupported(f"invalid chunk size {chunk_ops}")
        kinds, addrs, counts, dep_offsets, dep_values = trace.columns()
        self.n = len(kinds)
        np = _np
        # array('b'/'q') expose the buffer protocol, so these views share
        # the trace's storage — adopting a trace costs no copies at all.
        self._kinds = np.frombuffer(kinds, dtype=np.int8)
        self._addrs = np.frombuffer(addrs, dtype=np.int64)
        self._counts = np.frombuffer(counts, dtype=np.int64)
        self._dep_offsets = np.frombuffer(dep_offsets, dtype=np.int64)
        self._dep_values = np.frombuffer(dep_values, dtype=np.int64)
        if self.n and int(self._addrs.min()) < 0:
            raise VectorBackendUnsupported("trace contains negative addresses")
        # The replay loop drops the interpreter's ``previous_issue`` term
        # under the invariant that the front end never moves backwards,
        # which holds exactly when every per-op instruction count is
        # non-negative.
        if self.n and int(self._counts.min()) < 0:
            raise VectorBackendUnsupported("trace contains negative instruction counts")
        self._issue_width = issue_width
        self._line_shift = line_shift
        self._page_shift = (
            page_bytes.bit_length() - 1 if page_bytes & (page_bytes - 1) == 0 else None
        )
        self._page_bytes = page_bytes
        self._chunk_ops = chunk_ops

    # ------------------------------------------------------------- summaries

    def kind_counts(self) -> dict[int, int]:
        """Vectorized per-kind op counts (exact, folded into CoreStats once)."""

        np = _np
        return {
            int(kind): int(np.count_nonzero(self._kinds == int(kind)))
            for kind in OpKind
        }

    def total_instructions(self) -> int:
        return int(self._counts.sum(dtype=_np.int64))

    # --------------------------------------------------------------- chunks

    def chunks(self, *, want_addrs: bool = True) -> Iterator[ChunkColumns]:
        """Yield the trace as consecutive :class:`ChunkColumns`.

        ``want_addrs=False`` skips materialising the raw address list —
        every ``tolist`` conversion the consumer will not read is measurable
        against the fused loop's own cost.
        """

        np = _np
        issue_width = self._issue_width
        line_shift = self._line_shift
        page_shift = self._page_shift
        dep_offsets = self._dep_offsets
        for start in range(0, self.n, self._chunk_ops):
            end = min(start + self._chunk_ops, self.n)
            addrs_np = self._addrs[start:end]
            lines_np = addrs_np >> line_shift
            if page_shift is not None:
                pages_np = addrs_np >> page_shift
            else:
                pages_np = addrs_np // self._page_bytes
            # ``count / issue_width``: both operands are exactly
            # representable in float64, so numpy's elementwise divide is the
            # same correctly-rounded result CPython's int/int produces.
            fetch_incr = (self._counts[start:end] / issue_width).tolist()
            dep_lo = int(dep_offsets[start])
            dep_hi = int(dep_offsets[end])
            yield ChunkColumns(
                start=start,
                end=end,
                kinds=self._kinds[start:end].tolist(),
                addrs=addrs_np.tolist() if want_addrs else None,
                fetch_incr=fetch_incr,
                dep_ends=(dep_offsets[start + 1 : end + 1] - dep_lo).tolist(),
                dep_values=self._dep_values[dep_lo:dep_hi].tolist(),
                pages=pages_np.tolist(),
                lines_np=lines_np,
            )

    @staticmethod
    def lane_set_tag(chunk: ChunkColumns, set_mask: int, set_shift: int) -> tuple[list, list]:
        """Per-lane L1 ``(set index, tag)`` columns for one chunk.

        This is the batched tag/set extraction: one ``&`` and one ``>>``
        over the whole chunk per lane, shared-input, no per-op Python
        arithmetic.  Lanes with different cache geometries differ only in
        ``set_mask``/``set_shift``, so N geometry lanes cost N×2 vector ops
        per chunk over a single pass of the trace columns.
        """

        lines_np = chunk.lines_np
        return (lines_np & set_mask).tolist(), (lines_np >> set_shift).tolist()
