"""Simulation driver: assemble a system, run a workload under a prefetch mode.

The batch engine (:mod:`repro.sim.engine`) is the preferred entry point for
anything that runs more than one simulation: declare :class:`SimRequest`
points, collect them in a :class:`SimPlan`, and execute through a
:class:`SimEngine` to get deduplication, optional multiprocessing, and a
persistent result cache.  :func:`simulate` remains the single-point primitive.
"""

from .comparison import ComparisonResult, comparison_plan, run_comparison
from .engine import (
    BatchResult,
    EngineStats,
    MultiprocessRunner,
    ResultCache,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
)
from .modes import PrefetchMode, mode_available
from .results import SimulationResult
from .system import simulate, simulate_batch
from .sweeps import (
    cache_geometry_sweep,
    ppu_count_frequency_sweep,
    ppu_frequency_sweep,
)
from .vector import vector_backend_enabled

__all__ = [
    "PrefetchMode",
    "mode_available",
    "SimulationResult",
    "simulate",
    "simulate_batch",
    "vector_backend_enabled",
    "cache_geometry_sweep",
    "run_comparison",
    "comparison_plan",
    "ComparisonResult",
    "ppu_frequency_sweep",
    "ppu_count_frequency_sweep",
    "SimRequest",
    "SimPlan",
    "SimEngine",
    "BatchResult",
    "EngineStats",
    "SerialRunner",
    "MultiprocessRunner",
    "ResultCache",
]
