"""Simulation driver: assemble a system, run a workload under a prefetch mode."""

from .comparison import ComparisonResult, run_comparison
from .modes import PrefetchMode, mode_available
from .results import SimulationResult
from .system import simulate
from .sweeps import ppu_count_frequency_sweep, ppu_frequency_sweep

__all__ = [
    "PrefetchMode",
    "mode_available",
    "SimulationResult",
    "simulate",
    "run_comparison",
    "ComparisonResult",
    "ppu_frequency_sweep",
    "ppu_count_frequency_sweep",
]
