"""Simulation results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..memory.stats import HierarchyStats


@dataclass
class SimulationResult:
    """Everything recorded from one simulation run."""

    workload: str
    mode: str
    cycles: float
    instructions: int
    core: dict[str, float] = field(default_factory=dict)
    hierarchy: HierarchyStats = field(default_factory=HierarchyStats)
    prefetcher: Optional[dict[str, Any]] = None

    # ------------------------------------------------------------ derived

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_read_hit_rate(self) -> float:
        return self.hierarchy.l1_read_hit_rate

    @property
    def l2_read_hit_rate(self) -> float:
        return self.hierarchy.l2_read_hit_rate

    @property
    def l1_prefetch_utilisation(self) -> float:
        return self.hierarchy.l1_prefetch_utilisation

    @property
    def dram_accesses(self) -> float:
        return self.hierarchy.dram_total_accesses

    @property
    def activity_factors(self) -> list[float]:
        if not self.prefetcher:
            return []
        return list(self.prefetcher.get("activity_factors", []))

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (same workload)."""

        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles

    def extra_memory_accesses(self, baseline: "SimulationResult") -> float:
        """Fractional extra DRAM traffic relative to ``baseline``."""

        if baseline.dram_accesses == 0:
            return 0.0
        return self.dram_accesses / baseline.dram_accesses - 1.0

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`as_dict` output (derived keys ignored)."""

        return cls(
            workload=data["workload"],
            mode=data["mode"],
            cycles=data["cycles"],
            instructions=data["instructions"],
            core=dict(data.get("core") or {}),
            hierarchy=HierarchyStats.from_dict(data.get("hierarchy") or {}),
            prefetcher=data.get("prefetcher"),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "l1_read_hit_rate": self.l1_read_hit_rate,
            "l2_read_hit_rate": self.l2_read_hit_rate,
            "l1_prefetch_utilisation": self.l1_prefetch_utilisation,
            "dram_accesses": self.dram_accesses,
            "core": dict(self.core),
            "hierarchy": self.hierarchy.as_dict(),
            "prefetcher": self.prefetcher,
        }


def geometric_mean(values: list[float]) -> float:
    """Geometric mean, used for the paper's average speedups."""

    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
