"""Multi-workload, multi-mode comparison driver (the engine behind Figure 7).

Since the batch-engine refactor this module is a thin plan-builder: it
declares one :class:`~repro.sim.engine.SimRequest` per ``(workload, mode)``
point plus the shared no-prefetch baseline, hands the plan to a
:class:`~repro.sim.engine.SimEngine`, and folds the batch back into the
:class:`ComparisonResult` view the figures consume.  Unavailable modes (the
missing Figure 7 bars) execute to nothing and are skipped, as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..errors import DuplicateResultError
from ..workloads import registry
from ..workloads.base import Workload
from .engine import EngineStats, SimEngine, SimPlan, SimRequest, SerialRunner
from .modes import FIGURE7_MODES, PrefetchMode
from .results import SimulationResult, geometric_mean


@dataclass
class ComparisonResult:
    """Baseline and per-mode results for a set of workloads.

    Attributes:
        baselines: No-prefetching result per workload name.
        results: Result per ``(workload, mode value)`` pair for every other
            mode.
        engine_stats: Statistics of the engine run that produced the results
            (set by :func:`run_comparison`; ``None`` for hand-assembled
            comparisons).
    """

    baselines: dict[str, SimulationResult] = field(default_factory=dict)
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)
    engine_stats: Optional[EngineStats] = None

    def add(self, result: SimulationResult, *, replace: bool = False) -> None:
        """Record one result; duplicates raise unless ``replace`` is set."""

        if result.mode == PrefetchMode.NONE.value:
            if result.workload in self.baselines and not replace:
                raise DuplicateResultError(
                    f"duplicate baseline result for workload {result.workload!r}"
                )
            self.baselines[result.workload] = result
        else:
            key = (result.workload, result.mode)
            if key in self.results and not replace:
                raise DuplicateResultError(
                    f"duplicate result for workload {result.workload!r} "
                    f"mode {result.mode!r}"
                )
            self.results[key] = result

    # ----------------------------------------------------------------- views

    def result(self, workload: str, mode: PrefetchMode) -> Optional[SimulationResult]:
        """The recorded result for ``(workload, mode)``, or ``None``."""

        if mode == PrefetchMode.NONE:
            return self.baselines.get(workload)
        return self.results.get((workload, mode.value))

    def speedup(self, workload: str, mode: PrefetchMode) -> Optional[float]:
        """Speedup of ``mode`` over the workload's no-prefetch baseline.

        Returns ``None`` when either the baseline or the mode result is
        missing (an unavailable Figure 7 bar).
        """

        baseline = self.baselines.get(workload)
        result = self.result(workload, mode)
        if baseline is None or result is None:
            return None
        return result.speedup_over(baseline)

    def speedups_for_mode(self, mode: PrefetchMode) -> dict[str, float]:
        """Per-workload speedups for ``mode``, omitting missing points."""

        speedups: dict[str, float] = {}
        for workload in self.baselines:
            value = self.speedup(workload, mode)
            if value is not None:
                speedups[workload] = value
        return speedups

    def geomean_speedup(self, mode: PrefetchMode) -> float:
        """Geometric-mean speedup of ``mode`` across recorded workloads."""

        return geometric_mean(list(self.speedups_for_mode(mode).values()))

    @property
    def workloads(self) -> list[str]:
        """Workload names with a recorded baseline, in insertion order."""

        return list(self.baselines)


def comparison_plan(
    workload_names: Optional[Iterable[str]] = None,
    modes: Optional[Iterable[PrefetchMode]] = None,
    *,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
) -> SimPlan:
    """Declare every (workload, mode) point plus the shared baselines."""

    names = list(workload_names) if workload_names is not None else registry.paper_names()
    mode_list = list(modes) if modes is not None else list(FIGURE7_MODES)
    system_config = config if config is not None else SystemConfig.scaled()

    plan = SimPlan()
    for name in names:
        plan.add(
            SimRequest(
                workload=name,
                mode=PrefetchMode.NONE.value,
                scale=scale,
                seed=seed,
                config=system_config,
            )
        )
        for mode in mode_list:
            if mode == PrefetchMode.NONE:
                continue
            plan.add(
                SimRequest(
                    workload=name,
                    mode=mode.value,
                    scale=scale,
                    seed=seed,
                    config=system_config,
                )
            )
    return plan


def run_comparison(
    workload_names: Optional[Iterable[str]] = None,
    modes: Optional[Iterable[PrefetchMode]] = None,
    *,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    workloads: Optional[dict[str, Workload]] = None,
    engine: Optional[SimEngine] = None,
) -> ComparisonResult:
    """Simulate every (workload, mode) pair plus the no-prefetching baseline.

    ``engine`` shares memoised/cached results (and a parallel runner) across
    callers; when omitted a serial engine is created, reusing any pre-built
    workload objects passed via ``workloads``.  Unavailable modes (missing
    Figure 7 bars) are skipped silently.
    """

    if engine is None:
        engine = SimEngine(runner=SerialRunner(workloads=workloads))
    plan = comparison_plan(workload_names, modes, config=config, scale=scale, seed=seed)
    batch = engine.run(plan)

    comparison = ComparisonResult(engine_stats=batch.stats)
    for request in plan:
        result = batch.get(request)
        if result is not None:
            comparison.add(result)
    return comparison
