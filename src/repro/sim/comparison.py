"""Multi-workload, multi-mode comparison driver (the engine behind Figure 7)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..workloads import WORKLOAD_ORDER, build_workload
from ..workloads.base import Workload
from .modes import FIGURE7_MODES, PrefetchMode, mode_available
from .results import SimulationResult, geometric_mean
from .system import simulate


@dataclass
class ComparisonResult:
    """Baseline and per-mode results for a set of workloads."""

    baselines: dict[str, SimulationResult] = field(default_factory=dict)
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)

    def add(self, result: SimulationResult) -> None:
        if result.mode == PrefetchMode.NONE.value:
            self.baselines[result.workload] = result
        else:
            self.results[(result.workload, result.mode)] = result

    # ----------------------------------------------------------------- views

    def result(self, workload: str, mode: PrefetchMode) -> Optional[SimulationResult]:
        if mode == PrefetchMode.NONE:
            return self.baselines.get(workload)
        return self.results.get((workload, mode.value))

    def speedup(self, workload: str, mode: PrefetchMode) -> Optional[float]:
        baseline = self.baselines.get(workload)
        result = self.result(workload, mode)
        if baseline is None or result is None:
            return None
        return result.speedup_over(baseline)

    def speedups_for_mode(self, mode: PrefetchMode) -> dict[str, float]:
        speedups: dict[str, float] = {}
        for workload in self.baselines:
            value = self.speedup(workload, mode)
            if value is not None:
                speedups[workload] = value
        return speedups

    def geomean_speedup(self, mode: PrefetchMode) -> float:
        return geometric_mean(list(self.speedups_for_mode(mode).values()))

    @property
    def workloads(self) -> list[str]:
        return list(self.baselines)


def run_comparison(
    workload_names: Optional[Iterable[str]] = None,
    modes: Optional[Iterable[PrefetchMode]] = None,
    *,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    workloads: Optional[dict[str, Workload]] = None,
) -> ComparisonResult:
    """Simulate every (workload, mode) pair plus the no-prefetching baseline.

    ``workloads`` can pass pre-built workload objects (so their traces are
    reused across calls); otherwise they are built from ``workload_names``.
    Unavailable modes (missing Figure 7 bars) are skipped silently.
    """

    names = list(workload_names) if workload_names is not None else list(WORKLOAD_ORDER)
    mode_list = list(modes) if modes is not None else list(FIGURE7_MODES)
    system_config = config if config is not None else SystemConfig.scaled()

    comparison = ComparisonResult()
    for name in names:
        workload = (workloads or {}).get(name) or build_workload(name, scale=scale, seed=seed)
        comparison.add(simulate(workload, PrefetchMode.NONE, system_config))
        for mode in mode_list:
            if mode == PrefetchMode.NONE or not mode_available(workload, mode):
                continue
            comparison.add(simulate(workload, mode, system_config))
    return comparison
