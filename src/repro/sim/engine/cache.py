"""Persistent, content-addressed simulation result cache.

One JSON file per request digest.  Files carry the full request description
alongside the result so the cache is self-describing and debuggable with any
text editor; loads ignore the description and reconstruct the
:class:`SimulationResult` from its recorded base fields, which round-trips
floats exactly (Python's JSON encoder emits ``repr``-faithful doubles), so a
warm cache reproduces bit-identical numbers.

Unavailable modes (a request whose workload cannot build the mode) are also
recorded, as tombstones, so warm runs skip the workload rebuild that
discovering the unavailability would cost.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ...atomicio import atomic_write_bytes, sweep_dead_writer_tmp_files
from ..results import SimulationResult
from .request import SimRequest


class _Unavailable:
    """Sentinel: the cached request's mode cannot be built (no result)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNAVAILABLE"


UNAVAILABLE = _Unavailable()

CachedValue = Union[SimulationResult, _Unavailable]


class ResultCache:
    """Digest-keyed JSON store of simulation results."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._swept_orphans = False

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> Optional[CachedValue]:
        """Return the cached value for ``digest``, or ``None`` on a miss.

        Corrupt or unreadable entries are treated as misses (and will be
        overwritten by the next store).
        """

        try:
            with open(self._path(digest), "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if data.get("unavailable"):
                return UNAVAILABLE
            return SimulationResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            # Schema drift (renamed fields, wrong value shapes, non-dict
            # payloads) must read as a miss, not escape to the engine.
            return None

    def put(self, request: SimRequest, result: SimulationResult) -> None:
        self._write(request, {"request": request.describe(), "result": result.as_dict()})

    def put_unavailable(self, request: SimRequest) -> None:
        self._write(request, {"request": request.describe(), "unavailable": True})

    def _write(self, request: SimRequest, payload: dict) -> None:
        # Atomic write-then-rename with per-write temp names: concurrent
        # readers never see a partial file, and concurrent writers of the
        # same digest — parallel runs sharing the directory, or the service
        # daemon's handlers within one process — never share a temp file
        # (see :mod:`repro.atomicio` for the race this closes).
        if not self._swept_orphans:
            self._swept_orphans = True
            sweep_dead_writer_tmp_files(self.directory)
        data = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self._path(request.digest), data)

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached entry; return how many were removed."""

        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
