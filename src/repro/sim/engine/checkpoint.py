"""Checkpointed, resumable plan execution: the run manifest.

A paper-scale sweep is hours of simulation; a ``kill -9`` (OOM reaper, lost
SSH session, preempted CI runner) used to restart it from zero.  The engine
now writes a **run manifest** as the plan executes: one JSON file per plan
(keyed by a fingerprint over the plan's request digests) in a checkpoint
directory, recording the outcome status of every resolved request.  The
manifest is rewritten atomically via :mod:`repro.atomicio` after each
completion batch, so a killed run always leaves a complete, parseable
manifest describing exactly what finished.

On ``--resume`` the engine replays the manifest **against the
:class:`~repro.sim.engine.cache.ResultCache`**: a digest the manifest marks
``ok`` is served from the cache (the cache entry, not the manifest, carries
the result — the manifest is an index, never a second copy of data);
``unavailable`` digests are skipped outright; ``failed`` digests are
retried (transient errors must not be sticky).  Everything else executes,
so an interrupted run re-invoked with ``--resume`` performs only the
missing simulations and produces bit-identical results to an uninterrupted
run.

Like the other on-disk tiers, manifests tolerate concurrency and crashes:
writes are write-then-rename with per-write-unique temp names, dead
writers' temp litter is swept on first write, and a corrupt or
foreign-fingerprint manifest reads as "no prior progress" rather than an
error.  ``tools/checkpoints.py`` provides ``ls``/``stat``/``prune``
maintenance over the directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ...atomicio import atomic_write_bytes, sweep_dead_writer_tmp_files

#: Environment variable naming the checkpoint directory used when a driver
#: asks for checkpointing without an explicit ``--checkpoint DIR``.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"

#: File-name suffix of every run manifest (the artifact family the
#: dead-writer sweep and the maintenance CLI recognise).
MANIFEST_SUFFIX = ".manifest.json"

#: On-disk format version; a bump makes old manifests read as "no progress".
MANIFEST_VERSION = 1

#: Outcome statuses a manifest entry may carry.
VALID_STATUSES = frozenset({"ok", "unavailable", "failed"})


def default_checkpoint_dir() -> Path:
    """The per-user manifest directory (``REPRO_CHECKPOINT_DIR`` wins)."""

    value = os.environ.get(CHECKPOINT_DIR_ENV)
    if value:
        return Path(value)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "checkpoints"


def plan_fingerprint(digests: Iterable[str]) -> str:
    """Stable fingerprint of a plan: SHA-256 over its sorted request digests.

    Order-independent on purpose — two drivers declaring the same point set
    in different orders are the same sweep, and a resume must find the
    manifest the killed run left behind.
    """

    hasher = hashlib.sha256()
    for digest in sorted(set(digests)):
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()


@dataclass
class ManifestEntry:
    """One resolved request: its status and (for failures) the label."""

    status: str
    failure: Optional[str] = None


class RunManifest:
    """Durable per-plan progress record, written incrementally and atomically.

    One instance covers one ``SimEngine.run`` of one plan.  ``record_batch``
    is called as results land (per request on the serial path, per chunk on
    the parallel one); each call rewrites the manifest file atomically, so
    the on-disk state is always a complete prefix of the run.  The file is
    created lazily on the first record — a fully-warm run that executes
    nothing writes nothing.
    """

    def __init__(
        self, directory: Union[str, Path], plan_digests: Sequence[str]
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.digests = list(dict.fromkeys(plan_digests))
        self.fingerprint = plan_fingerprint(self.digests)
        self.path = self.directory / f"{self.fingerprint}{MANIFEST_SUFFIX}"
        self.entries: dict[str, ManifestEntry] = {}
        self._created = time.time()
        self._swept = False

    # -------------------------------------------------------------- reading

    def load_prior(self) -> dict[str, ManifestEntry]:
        """Entries left by a previous (possibly killed) run of this plan.

        Anything unreadable — missing file, truncated JSON, a manifest of a
        different plan or format version, junk statuses — is "no prior
        progress": resume degrades to a fresh run, never to an error.
        """

        data = read_manifest(self.path)
        if data is None or data.get("plan") != self.fingerprint:
            return {}
        prior: dict[str, ManifestEntry] = {}
        for digest, entry in data.get("entries", {}).items():
            status = entry.get("status") if isinstance(entry, dict) else None
            if isinstance(digest, str) and status in VALID_STATUSES:
                failure = entry.get("failure")
                prior[digest] = ManifestEntry(
                    status, failure if isinstance(failure, str) else None
                )
        return prior

    # -------------------------------------------------------------- writing

    def record_batch(
        self, outcomes: Iterable[tuple[str, str, Optional[str]]]
    ) -> None:
        """Record ``(digest, status, failure)`` outcomes and flush once."""

        dirty = False
        for digest, status, failure in outcomes:
            if status not in VALID_STATUSES:
                raise ValueError(f"unknown manifest status {status!r}")
            self.entries[digest] = ManifestEntry(status, failure)
            dirty = True
        if dirty:
            self.flush()

    def flush(self) -> None:
        if not self._swept:
            self._swept = True
            sweep_dead_writer_tmp_files(self.directory)
        payload = {
            "version": MANIFEST_VERSION,
            "plan": self.fingerprint,
            "requests": len(self.digests),
            "created": self._created,
            "updated": time.time(),
            "entries": {
                digest: (
                    {"status": entry.status, "failure": entry.failure}
                    if entry.failure is not None
                    else {"status": entry.status}
                )
                for digest, entry in self.entries.items()
            },
        }
        data = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self.path, data)


# ------------------------------------------------------------- maintenance


def read_manifest(path: Union[str, Path]) -> Optional[dict]:
    """Parse one manifest file; ``None`` for anything unreadable or foreign."""

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
        return None
    if not isinstance(data.get("entries"), dict):
        return None
    return data


def manifest_paths(directory: Union[str, Path]) -> list[Path]:
    """Every manifest file in ``directory``, sorted by name."""

    return sorted(Path(directory).glob(f"*{MANIFEST_SUFFIX}"))
