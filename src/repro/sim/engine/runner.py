"""Plan executors: serial, and multiprocessing across cores.

Requests are grouped by :attr:`SimRequest.workload_key` so each group's
expensive inputs — workload data structures and dynamic traces — are
resolved exactly once.  Resolution goes through the **trace artifact tier**
(:mod:`repro.trace_store`): each group's trace artifacts are looked up front
in the digest-keyed on-disk store; warm artifacts replay directly (no
workload rebuild at all for the non-programmable modes, traces injected
instead of re-emitted for the programmable ones), and anything missing is
built once, emitted, and persisted so the next run — or the next worker —
starts warm.  The serial and parallel runners execute the same per-request
code path, so for a given request set they produce bit-identical results;
the parallel runner merely farms chunks of those groups out to worker
processes, shipping each chunk the compact encoded trace columns it found
warm instead of a rebuild recipe.

A request whose mode cannot be built for its workload (the missing Figure 7
bars, e.g. software prefetching on PageRank) executes to ``None`` with no
failure label, mirroring the drivers' historical "skip the bar" behaviour.
Any *other* :class:`~repro.errors.WorkloadError` also executes to ``None``
but carries a failure label, which the engine counts and surfaces — failed
requests are no longer silently indistinguishable from unavailable ones.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence, Union

try:  # POSIX shared memory; absent on some minimal platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    _shared_memory = None

from ...errors import WorkloadError
from ...trace_store import (
    GroupResolver,
    TraceStore,
    TraceStoreStats,
    default_trace_store,
    trace_digest,
    validate_artifact_bytes,
    variants_needed,
)
from ...workloads.base import Workload
from ..modes import mode_available
from ..results import SimulationResult
from ..system import simulate, try_simulate_batch_vector
from ..vector import vector_backend_enabled
from .request import SimRequest, resolve_policy

#: One executed request: ``(digest, result, failure)``.  ``result`` is
#: ``None`` both for unavailable modes (``failure is None``) and for genuine
#: failures (``failure`` holds the error text).
ExecutedRequest = tuple[str, Optional[SimulationResult], Optional[str]]

#: One encoded trace column set as shipped to a worker: either the raw
#: bytes pickled inline (``("bytes", data)``) or the name and size of a
#: shared-memory segment holding them (``("shm", name, size)``), which every
#: worker attaches zero-copy instead of receiving its own pickled copy.
EncodedRef = Union[tuple[str, bytes], tuple[str, str, int]]

#: Sentinel distinguishing "no store passed" (resolve from the environment)
#: from an explicit ``trace_store=None`` (tier disabled).
_DEFAULT_STORE = object()


def _resolve_store(trace_store) -> Optional[TraceStore]:
    return default_trace_store() if trace_store is _DEFAULT_STORE else trace_store


def group_requests(requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
    """Group requests by workload key, preserving first-seen order."""

    groups: dict[tuple[str, str, int], list[SimRequest]] = {}
    for request in requests:
        groups.setdefault(request.workload_key, []).append(request)
    return list(groups.values())


def execute_request(
    request: SimRequest, workload: Workload
) -> tuple[Optional[SimulationResult], Optional[str]]:
    """Run one request against a resolved workload.

    Returns ``(result, failure)``: a successful simulation carries no
    failure text; an unavailable mode returns ``(None, None)``; any other
    workload error returns ``(None, <message>)`` so the engine can count
    and label it instead of dropping it on the floor.
    """

    try:
        result = simulate(
            workload,
            request.prefetch_mode,
            request.config,
            policy=resolve_policy(request.policy),
            kernel_source=request.kernel_source,
        )
        return result, None
    except WorkloadError as error:
        try:
            if not mode_available(workload, request.prefetch_mode):
                return None, None
        except WorkloadError:
            pass  # availability itself failed: report the original error
        return None, f"{request.workload}/{request.mode}: {error}"


def _execute_vector_batches(
    requests: Sequence[SimRequest], resolver: GroupResolver
) -> dict[int, ExecutedRequest]:
    """Pre-execute the multi-configuration vector batches of one group.

    Requests of one workload group that differ only in system configuration
    (same mode, same policy, non-programmable) are exactly what
    :func:`~repro.sim.system.try_simulate_batch_vector` consumes: a Figure
    9-style geometry sweep submitted as N engine requests becomes one trace
    pass with N replay lanes.  Returns completed results keyed by position
    in ``requests``; anything not covered — single-request modes, batches
    the backend declined, resolution failures — falls through untouched to
    the per-request path, which also owns failure labelling.
    """

    prebatched: dict[int, ExecutedRequest] = {}
    if not vector_backend_enabled():
        return prebatched
    batches: dict[tuple[str, Optional[str]], list[int]] = {}
    for index, request in enumerate(requests):
        if not request.prefetch_mode.uses_programmable_prefetcher:
            batches.setdefault((request.mode, request.policy), []).append(index)
    for (_mode_value, policy_name), indices in batches.items():
        if len(indices) < 2:
            continue
        mode = requests[indices[0]].prefetch_mode
        try:
            workload = resolver.workload_for_mode(mode)
            results = try_simulate_batch_vector(
                workload,
                mode,
                [requests[index].config for index in indices],
                policy=resolve_policy(policy_name),
            )
        except WorkloadError:
            continue  # per-request execution reports the proper label
        if results is None:
            continue
        for index, result in zip(indices, results):
            prebatched[index] = (requests[index].digest, result, None)
    return prebatched


def execute_group(
    requests: Sequence[SimRequest],
    workloads: Optional[Mapping[str, Workload]] = None,
    *,
    store: Optional[TraceStore] = None,
    encoded: Optional[Mapping[str, bytes]] = None,
) -> tuple[list[ExecutedRequest], TraceStoreStats, int]:
    """Execute one workload group, resolving its trace artifacts up front.

    ``workloads`` may supply pre-built objects keyed by workload name; one
    is used only when its scale and seed match the request, otherwise the
    group resolves independently so results stay independent of what was
    passed in.  ``encoded`` carries store-encoded trace columns a parent
    process shipped (keyed by variant); ``store`` is consulted for anything
    else and receives freshly-emitted traces.

    Returns the executed requests in submission order, the trace-tier
    counters, and how many requests were satisfied by multi-configuration
    vector batches rather than individual simulations.
    """

    executed: list[ExecutedRequest] = []
    stats = TraceStoreStats()
    batched = 0
    for group in group_requests(requests):
        first = group[0]
        resolver = GroupResolver(
            first.workload,
            first.scale,
            first.seed,
            store=store,
            prebuilt=(workloads or {}).get(first.workload),
            encoded=encoded if first.workload_key == requests[0].workload_key else None,
        )
        prebatched = _execute_vector_batches(group, resolver)
        batched += len(prebatched)
        for index, request in enumerate(group):
            done = prebatched.get(index)
            if done is None:
                workload = resolver.workload_for_mode(request.prefetch_mode)
                done = (request.digest, *execute_request(request, workload))
            executed.append(done)
        resolver.persist(variants_needed([r.prefetch_mode for r in group]))
        stats.merge(resolver.stats)
    return executed, stats, batched


class Runner(ABC):
    """Executes the pending requests of a plan."""

    #: Human-readable label recorded in engine statistics.
    label: str = "runner"

    #: Trace-artifact resolution counters of the most recent :meth:`run`.
    trace_stats: TraceStoreStats

    #: Requests of the most recent :meth:`run` satisfied by multi-config
    #: vector batches (see :func:`execute_group`).
    batched: int

    def __init__(self) -> None:
        self.trace_stats = TraceStoreStats()
        self.batched = 0

    @abstractmethod
    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        ...


class SerialRunner(Runner):
    """Execute every request in-process, in submission order."""

    label = "serial"

    def __init__(
        self,
        workloads: Optional[Mapping[str, Workload]] = None,
        *,
        trace_store=_DEFAULT_STORE,
    ) -> None:
        super().__init__()
        self.workloads = workloads
        self.trace_store = _resolve_store(trace_store)

    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        self.trace_stats = TraceStoreStats()
        self.batched = 0
        executed: list[ExecutedRequest] = []
        for group in group_requests(requests):
            chunk, stats, batched = execute_group(
                group, self.workloads, store=self.trace_store
            )
            executed.extend(chunk)
            self.trace_stats.merge(stats)
            self.batched += batched
        return executed


def _share_artifacts(
    group_artifacts: Mapping[tuple[str, str, int], Mapping[str, bytes]]
) -> tuple[dict[tuple[str, str, int], dict[str, EncodedRef]], list]:
    """Stage warm artifact bytes for shipping to worker processes.

    Each artifact's bytes are copied once into a shared-memory segment and
    every chunk payload carries only its ``("shm", name, size)`` reference —
    a group split across K workers costs one resident copy, not K pickled
    ones.  When shared memory is unavailable (platform without it, creation
    failure) the bytes ship pickled inline as before.  Returns the
    per-group reference mappings and the created segments, which the caller
    must close and unlink once the pool has drained.
    """

    refs_by_key: dict[tuple[str, str, int], dict[str, EncodedRef]] = {}
    segments: list = []
    for key, encoded in group_artifacts.items():
        refs: dict[str, EncodedRef] = {}
        for variant, data in encoded.items():
            ref: EncodedRef = ("bytes", data)
            if _shared_memory is not None and data:
                try:
                    segment = _shared_memory.SharedMemory(create=True, size=len(data))
                except (OSError, ValueError):
                    pass  # no room / no support: pickle the bytes instead
                else:
                    segment.buf[: len(data)] = data
                    segments.append(segment)
                    ref = ("shm", segment.name, len(data))
            refs[variant] = ref
        refs_by_key[key] = refs
    return refs_by_key, segments


def _attach_encoded(
    refs: Mapping[str, EncodedRef]
) -> tuple[dict[str, object], list]:
    """Materialise shipped encoded-column references in a worker.

    ``("bytes", ...)`` entries pass through; ``("shm", name, size)`` entries
    attach the named shared-memory segment and expose it as a zero-copy
    ``memoryview`` (the buffer-friendly ``decode_artifact`` consumes it
    directly).  A segment that cannot be attached is simply dropped — the
    worker then resolves that variant through the store or a rebuild, the
    same degradation as a corrupt shipped blob.  Returns the encoded mapping
    plus the resources to release once the group has executed.
    """

    encoded: dict[str, object] = {}
    attached: list = []
    for variant, ref in refs.items():
        if ref[0] == "shm":
            try:
                segment = _shared_memory.SharedMemory(name=ref[1])
            except (OSError, ValueError):
                continue
            # NOTE: attaching re-registers the name with the resource
            # tracker, but pool workers share the parent's tracker process,
            # so the duplicate registration is a set no-op — the single
            # entry is retired by the parent's unlink.  Do NOT unregister
            # here: that would remove the parent's entry instead.
            view = memoryview(segment.buf)[: ref[2]]
            attached.append((view, segment))
            encoded[variant] = view
        else:
            encoded[variant] = ref[1]
    return encoded, attached


def _execute_group_task(
    payload: tuple[Sequence[SimRequest], Mapping[str, EncodedRef], Optional[str]]
) -> tuple[list[ExecutedRequest], TraceStoreStats, int]:
    """Top-level worker entry point (must be picklable by name)."""

    requests, refs, store_dir = payload
    store = TraceStore(store_dir) if store_dir else None
    encoded, attached = _attach_encoded(refs)
    try:
        return execute_group(requests, store=store, encoded=encoded)
    finally:
        encoded.clear()
        for view, segment in attached:
            try:
                view.release()
                segment.close()
            except BufferError:  # pragma: no cover - a dangling export
                pass  # the mapping is freed with the worker process instead


class MultiprocessRunner(Runner):
    """Farm independent request chunks across a process pool.

    Each chunk ships with the compact encoded trace columns the parent
    found warm in the store — workers decode a few flat arrays instead of
    regenerating graphs and re-running emission loops.  The bytes travel
    through ``multiprocessing.shared_memory`` when available: one resident
    copy per artifact, attached zero-copy by every worker, instead of one
    pickled copy per chunk (see :func:`_share_artifacts`).  On a store miss the
    *worker* builds the workload locally, emits, and persists the artifact
    (the store directory is shared on disk), so cold-store builds still
    happen in parallel and every later run is warm.  Only compact values
    cross the process boundary: requests, encoded columns, results.
    Workload groups that dominate the plan — a Figure 9(b) sweep is dozens
    of points on one workload — are split into several chunks in proportion
    to their share of the plan, trading a few redundant artifact decodes
    for keeping every core busy.  Falls back to serial execution when there
    is nothing to parallelise.
    """

    label = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        workloads: Optional[Mapping[str, Workload]] = None,
        trace_store=_DEFAULT_STORE,
    ) -> None:
        super().__init__()
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("MultiprocessRunner needs at least one worker")
        #: Pre-built workloads reused by the in-process (serial) fallback;
        #: worker processes resolve through the trace store instead.
        self.workloads = workloads
        self.trace_store = _resolve_store(trace_store)

    def _chunk(self, requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
        total = len(requests)
        chunks: list[list[SimRequest]] = []
        for group in group_requests(requests):
            parts = min(len(group), max(1, round(len(group) * self.workers / total)))
            size = math.ceil(len(group) / parts)
            chunks.extend(group[start : start + size] for start in range(0, len(group), size))
        return chunks

    def _group_artifacts(
        self, requests: Sequence[SimRequest]
    ) -> dict[tuple[str, str, int], dict[str, bytes]]:
        """Read each group's warm artifacts from the store exactly once.

        Every chunk of a split group shares the same bytes objects, and the
        parent counts one store hit per (group, variant) here — workers
        decoding their shipped copy do not count again, so engine stats
        report warm traces, not warm decodes.
        """

        by_key: dict[tuple[str, str, int], dict[str, bytes]] = {}
        if self.trace_store is None:
            return by_key
        for group in group_requests(requests):
            first = group[0]
            encoded: dict[str, bytes] = {}
            for variant in variants_needed([r.prefetch_mode for r in group]):
                data = self.trace_store.get_bytes(
                    trace_digest(first.workload, variant, first.scale, first.seed)
                )
                # A corrupt entry is a miss here too — shipping it would
                # count a warm trace that every worker then re-emits.
                if data is not None and validate_artifact_bytes(data):
                    encoded[variant] = data
                    self.trace_stats.hits += 1
            by_key[first.workload_key] = encoded
        return by_key

    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        if not requests:
            self.trace_stats = TraceStoreStats()
            return []
        chunks = self._chunk(requests)
        if self.workers == 1 or len(chunks) <= 1:
            # Nothing to parallelise: hand the whole request set to the
            # serial path, forwarding any pre-built workloads so the
            # fallback does not pay a redundant workload rebuild.
            fallback = SerialRunner(workloads=self.workloads, trace_store=self.trace_store)
            executed = fallback.run(requests)
            self.trace_stats = fallback.trace_stats
            self.batched = fallback.batched
            return executed
        self.trace_stats = TraceStoreStats()
        self.batched = 0
        # NOTE: ``is not None`` — TraceStore defines __len__, so an empty
        # (cold) store is falsy and a bare truthiness test would silently
        # disable worker-side persistence on exactly the runs that need it.
        store_dir = (
            str(self.trace_store.directory) if self.trace_store is not None else None
        )
        group_refs, segments = _share_artifacts(self._group_artifacts(requests))
        payloads = [
            (chunk, group_refs.get(chunk[0].workload_key, {}), store_dir)
            for chunk in chunks
        ]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        try:
            with context.Pool(processes=min(self.workers, len(chunks))) as pool:
                outcomes = pool.map(_execute_group_task, payloads)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()
        executed: list[ExecutedRequest] = []
        for chunk_executed, chunk_stats, chunk_batched in outcomes:
            executed.extend(chunk_executed)
            self.trace_stats.merge(chunk_stats)
            self.batched += chunk_batched
        return executed
