"""Plan executors: serial, and multiprocessing across cores.

Requests are grouped by :attr:`SimRequest.workload_key` so each group's
expensive inputs — workload data structures and dynamic traces — are
resolved exactly once.  Resolution goes through the **trace artifact tier**
(:mod:`repro.trace_store`): each group's trace artifacts are looked up front
in the digest-keyed on-disk store; warm artifacts replay directly (no
workload rebuild at all for the non-programmable modes, traces injected
instead of re-emitted for the programmable ones), and anything missing is
built once, emitted, and persisted so the next run — or the next worker —
starts warm.  The serial and parallel runners execute the same per-request
code path, so for a given request set they produce bit-identical results;
the parallel runner merely farms chunks of those groups out to worker
processes, shipping each chunk the compact encoded trace columns it found
warm instead of a rebuild recipe.

A request whose mode cannot be built for its workload (the missing Figure 7
bars, e.g. software prefetching on PageRank) executes to ``None`` with no
failure label, mirroring the drivers' historical "skip the bar" behaviour.
Any *other* :class:`~repro.errors.WorkloadError` also executes to ``None``
but carries a failure label, which the engine counts and surfaces — failed
requests are no longer silently indistinguishable from unavailable ones.

Both runners are resilience-aware (see ``docs/resilience.md``):

* ``run`` accepts an ``on_executed`` callback invoked with each batch of
  completed requests *as they finish*, which the engine uses to persist
  results and checkpoint-manifest entries incrementally — a killed run
  keeps everything completed so far.
* ``run`` accepts a :class:`~repro.resilience.Deadline`; once it expires,
  remaining requests complete as labelled failures (never cached, so a
  resumed run retries exactly the expired work).
* a :class:`~repro.resilience.RetryPolicy` retries individual failed
  requests in place, and :class:`MultiprocessRunner` runs a heartbeat
  watchdog over its workers: a worker that stops making progress for
  ``hang_timeout`` seconds is killed, its chunk is requeued with bounded
  attempts, and when the pool is exhausted the remaining chunks degrade to
  in-parent serial execution instead of hanging the plan forever.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as _mp_connection
from typing import Callable, Mapping, Optional, Sequence, Union

try:  # POSIX shared memory; absent on some minimal platforms.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    _shared_memory = None

from ...errors import WorkloadError
from ...resilience import Deadline, DeadlineLike, RetryPolicy
from ...trace_store import (
    GroupResolver,
    TraceStore,
    TraceStoreStats,
    default_trace_store,
    trace_digest,
    validate_artifact_bytes,
    variants_needed,
)
from ...workloads.base import Workload
from ..modes import mode_available
from ..results import SimulationResult
from ..system import simulate, try_simulate_batch_vector
from ..vector import vector_backend_enabled
from .request import SimRequest, resolve_policy

#: One executed request: ``(digest, result, failure)``.  ``result`` is
#: ``None`` both for unavailable modes (``failure is None``) and for genuine
#: failures (``failure`` holds the error text).
ExecutedRequest = tuple[str, Optional[SimulationResult], Optional[str]]

#: Callback receiving each batch of completed requests as it finishes.
ExecutedCallback = Callable[[Sequence[ExecutedRequest]], None]

#: One encoded trace column set as shipped to a worker: either the raw
#: bytes pickled inline (``("bytes", data)``) or the name and size of a
#: shared-memory segment holding them (``("shm", name, size)``), which every
#: worker attaches zero-copy instead of receiving its own pickled copy.
EncodedRef = Union[tuple[str, bytes], tuple[str, str, int]]

#: Sentinel distinguishing "no store passed" (resolve from the environment)
#: from an explicit ``trace_store=None`` (tier disabled).
_DEFAULT_STORE = object()

#: Marker text present in every deadline-expiry failure label; the engine
#: uses it to count expirations separately from ordinary failures.
DEADLINE_FAILURE_TEXT = "deadline exceeded"


def _resolve_store(trace_store) -> Optional[TraceStore]:
    return default_trace_store() if trace_store is _DEFAULT_STORE else trace_store


@dataclass
class ResilienceStats:
    """What a runner's resilience machinery did during one ``run``.

    Attributes:
        retried: Individual failed requests retried in place under a
            :class:`~repro.resilience.RetryPolicy` (one count per retry).
        expired: Requests completed as failures because a deadline expired
            before they ran.
        hung_killed: Workers killed by the heartbeat watchdog.
        requeues: Chunks requeued after their worker hung or crashed.
        respawns: Replacement workers spawned after a kill or crash.
        degraded_serial: Chunks executed in-parent after the worker pool
            was exhausted.
    """

    retried: int = 0
    expired: int = 0
    hung_killed: int = 0
    requeues: int = 0
    respawns: int = 0
    degraded_serial: int = 0

    def merge(self, other: "ResilienceStats") -> None:
        self.retried += other.retried
        self.expired += other.expired
        self.hung_killed += other.hung_killed
        self.requeues += other.requeues
        self.respawns += other.respawns
        self.degraded_serial += other.degraded_serial


def group_requests(requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
    """Group requests by workload key, preserving first-seen order."""

    groups: dict[tuple[str, str, int], list[SimRequest]] = {}
    for request in requests:
        groups.setdefault(request.workload_key, []).append(request)
    return list(groups.values())


def execute_request(
    request: SimRequest, workload: Workload
) -> tuple[Optional[SimulationResult], Optional[str]]:
    """Run one request against a resolved workload.

    Returns ``(result, failure)``: a successful simulation carries no
    failure text; an unavailable mode returns ``(None, None)``; any other
    workload error returns ``(None, <message>)`` so the engine can count
    and label it instead of dropping it on the floor.
    """

    try:
        result = simulate(
            workload,
            request.prefetch_mode,
            request.config,
            policy=resolve_policy(request.policy),
            kernel_source=request.kernel_source,
        )
        return result, None
    except WorkloadError as error:
        try:
            if not mode_available(workload, request.prefetch_mode):
                return None, None
        except WorkloadError:
            pass  # availability itself failed: report the original error
        return None, f"{request.workload}/{request.mode}: {error}"


def _deadline_failure(request: SimRequest, deadline: Deadline) -> ExecutedRequest:
    return (
        request.digest,
        None,
        f"{request.workload}/{request.mode}: {DEADLINE_FAILURE_TEXT} "
        f"({deadline.seconds:g}s budget)",
    )


def _execute_vector_batches(
    requests: Sequence[SimRequest], resolver: GroupResolver
) -> dict[int, ExecutedRequest]:
    """Pre-execute the multi-configuration vector batches of one group.

    Requests of one workload group that differ only in system configuration
    (same mode, same policy, non-programmable) are exactly what
    :func:`~repro.sim.system.try_simulate_batch_vector` consumes: a Figure
    9-style geometry sweep submitted as N engine requests becomes one trace
    pass with N replay lanes.  Returns completed results keyed by position
    in ``requests``; anything not covered — single-request modes, batches
    the backend declined, resolution failures — falls through untouched to
    the per-request path, which also owns failure labelling.
    """

    prebatched: dict[int, ExecutedRequest] = {}
    if not vector_backend_enabled():
        return prebatched
    batches: dict[tuple[str, Optional[str]], list[int]] = {}
    for index, request in enumerate(requests):
        if not request.prefetch_mode.uses_programmable_prefetcher:
            batches.setdefault((request.mode, request.policy), []).append(index)
    for (_mode_value, policy_name), indices in batches.items():
        if len(indices) < 2:
            continue
        mode = requests[indices[0]].prefetch_mode
        try:
            workload = resolver.workload_for_mode(mode)
            results = try_simulate_batch_vector(
                workload,
                mode,
                [requests[index].config for index in indices],
                policy=resolve_policy(policy_name),
            )
        except WorkloadError:
            continue  # per-request execution reports the proper label
        if results is None:
            continue
        for index, result in zip(indices, results):
            prebatched[index] = (requests[index].digest, result, None)
    return prebatched


def execute_group(
    requests: Sequence[SimRequest],
    workloads: Optional[Mapping[str, Workload]] = None,
    *,
    store: Optional[TraceStore] = None,
    encoded: Optional[Mapping[str, bytes]] = None,
    deadline: Optional[Deadline] = None,
    retry_policy: Optional[RetryPolicy] = None,
    heartbeat: Optional[Callable[[], None]] = None,
    on_executed: Optional[Callable[[ExecutedRequest], None]] = None,
    resilience: Optional[ResilienceStats] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[list[ExecutedRequest], TraceStoreStats, int]:
    """Execute one workload group, resolving its trace artifacts up front.

    ``workloads`` may supply pre-built objects keyed by workload name; one
    is used only when its scale and seed match the request, otherwise the
    group resolves independently so results stay independent of what was
    passed in.  ``encoded`` carries store-encoded trace columns a parent
    process shipped (keyed by variant); ``store`` is consulted for anything
    else and receives freshly-emitted traces.

    The resilience hooks are all optional: once ``deadline`` expires the
    remaining requests complete as labelled failures instead of running;
    ``retry_policy`` retries each *failed* request in place (unavailable
    modes are never retried — they are answers, not errors); ``heartbeat``
    is called after every completed request (the parallel runner's liveness
    signal); ``on_executed`` is called with each request as it completes;
    ``resilience`` accumulates retry/expiry counters for the caller.

    Returns the executed requests in submission order, the trace-tier
    counters, and how many requests were satisfied by multi-configuration
    vector batches rather than individual simulations.
    """

    executed: list[ExecutedRequest] = []
    stats = TraceStoreStats()
    batched = 0

    def finish(done: ExecutedRequest) -> None:
        executed.append(done)
        if heartbeat is not None:
            heartbeat()
        if on_executed is not None:
            on_executed(done)

    for group in group_requests(requests):
        first = group[0]
        if deadline is not None and deadline.expired:
            # Do not even build the resolver: fail the whole group fast so
            # an expired run returns promptly with retryable failures.
            for request in group:
                if resilience is not None:
                    resilience.expired += 1
                finish(_deadline_failure(request, deadline))
            continue
        resolver = GroupResolver(
            first.workload,
            first.scale,
            first.seed,
            store=store,
            prebuilt=(workloads or {}).get(first.workload),
            encoded=encoded if first.workload_key == requests[0].workload_key else None,
        )
        prebatched = _execute_vector_batches(group, resolver)
        batched += len(prebatched)
        for index, request in enumerate(group):
            done = prebatched.get(index)
            if done is None:
                if deadline is not None and deadline.expired:
                    if resilience is not None:
                        resilience.expired += 1
                    done = _deadline_failure(request, deadline)
                else:
                    workload = resolver.workload_for_mode(request.prefetch_mode)
                    result, failure = execute_request(request, workload)
                    if failure is not None and retry_policy is not None:
                        for attempt in range(retry_policy.retries):
                            if deadline is not None and deadline.expired:
                                break
                            sleep(retry_policy.delay(attempt))
                            if resilience is not None:
                                resilience.retried += 1
                            result, failure = execute_request(request, workload)
                            if failure is None:
                                break
                    done = (request.digest, result, failure)
            finish(done)
        resolver.persist(variants_needed([r.prefetch_mode for r in group]))
        stats.merge(resolver.stats)
    return executed, stats, batched


class Runner(ABC):
    """Executes the pending requests of a plan."""

    #: Human-readable label recorded in engine statistics.
    label: str = "runner"

    #: Trace-artifact resolution counters of the most recent :meth:`run`.
    trace_stats: TraceStoreStats

    #: Requests of the most recent :meth:`run` satisfied by multi-config
    #: vector batches (see :func:`execute_group`).
    batched: int

    #: Retry/watchdog/deadline counters of the most recent :meth:`run`.
    resilience: ResilienceStats

    def __init__(self) -> None:
        self.trace_stats = TraceStoreStats()
        self.batched = 0
        self.resilience = ResilienceStats()

    @abstractmethod
    def run(
        self,
        requests: Sequence[SimRequest],
        *,
        on_executed: Optional[ExecutedCallback] = None,
        deadline: DeadlineLike = None,
    ) -> list[ExecutedRequest]:
        ...


class SerialRunner(Runner):
    """Execute every request in-process, in submission order."""

    label = "serial"

    def __init__(
        self,
        workloads: Optional[Mapping[str, Workload]] = None,
        *,
        trace_store=_DEFAULT_STORE,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__()
        self.workloads = workloads
        self.trace_store = _resolve_store(trace_store)
        self.retry_policy = retry_policy

    def run(
        self,
        requests: Sequence[SimRequest],
        *,
        on_executed: Optional[ExecutedCallback] = None,
        deadline: DeadlineLike = None,
    ) -> list[ExecutedRequest]:
        self.trace_stats = TraceStoreStats()
        self.batched = 0
        self.resilience = ResilienceStats()
        budget = Deadline.after(deadline)
        per_request = None
        if on_executed is not None:
            per_request = lambda done: on_executed([done])  # noqa: E731
        executed: list[ExecutedRequest] = []
        for group in group_requests(requests):
            chunk, stats, batched = execute_group(
                group,
                self.workloads,
                store=self.trace_store,
                deadline=budget,
                retry_policy=self.retry_policy,
                on_executed=per_request,
                resilience=self.resilience,
            )
            executed.extend(chunk)
            self.trace_stats.merge(stats)
            self.batched += batched
        return executed


def _share_artifacts(
    group_artifacts: Mapping[tuple[str, str, int], Mapping[str, bytes]]
) -> tuple[dict[tuple[str, str, int], dict[str, EncodedRef]], list]:
    """Stage warm artifact bytes for shipping to worker processes.

    Each artifact's bytes are copied once into a shared-memory segment and
    every chunk payload carries only its ``("shm", name, size)`` reference —
    a group split across K workers costs one resident copy, not K pickled
    ones.  When shared memory is unavailable (platform without it, creation
    failure) the bytes ship pickled inline as before.  Returns the
    per-group reference mappings and the created segments, which the caller
    must close and unlink once the pool has drained.
    """

    refs_by_key: dict[tuple[str, str, int], dict[str, EncodedRef]] = {}
    segments: list = []
    for key, encoded in group_artifacts.items():
        refs: dict[str, EncodedRef] = {}
        for variant, data in encoded.items():
            ref: EncodedRef = ("bytes", data)
            if _shared_memory is not None and data:
                try:
                    segment = _shared_memory.SharedMemory(create=True, size=len(data))
                except (OSError, ValueError):
                    pass  # no room / no support: pickle the bytes instead
                else:
                    segment.buf[: len(data)] = data
                    segments.append(segment)
                    ref = ("shm", segment.name, len(data))
            refs[variant] = ref
        refs_by_key[key] = refs
    return refs_by_key, segments


def _attach_encoded(
    refs: Mapping[str, EncodedRef]
) -> tuple[dict[str, object], list]:
    """Materialise shipped encoded-column references in a worker.

    ``("bytes", ...)`` entries pass through; ``("shm", name, size)`` entries
    attach the named shared-memory segment and expose it as a zero-copy
    ``memoryview`` (the buffer-friendly ``decode_artifact`` consumes it
    directly).  A segment that cannot be attached is simply dropped — the
    worker then resolves that variant through the store or a rebuild, the
    same degradation as a corrupt shipped blob.  Returns the encoded mapping
    plus the resources to release once the group has executed.
    """

    encoded: dict[str, object] = {}
    attached: list = []
    for variant, ref in refs.items():
        if ref[0] == "shm":
            try:
                segment = _shared_memory.SharedMemory(name=ref[1])
            except (OSError, ValueError):
                continue
            # NOTE: attaching re-registers the name with the resource
            # tracker, but pool workers share the parent's tracker process,
            # so the duplicate registration is a set no-op — the single
            # entry is retired by the parent's unlink.  Do NOT unregister
            # here: that would remove the parent's entry instead.
            view = memoryview(segment.buf)[: ref[2]]
            attached.append((view, segment))
            encoded[variant] = view
        else:
            encoded[variant] = ref[1]
    return encoded, attached


def _execute_group_task(
    payload: tuple[Sequence[SimRequest], Mapping[str, EncodedRef], Optional[str]]
) -> tuple[list[ExecutedRequest], TraceStoreStats, int]:
    """Execute one shipped chunk (also the service pool's entry point)."""

    requests, refs, store_dir = payload
    store = TraceStore(store_dir) if store_dir else None
    encoded, attached = _attach_encoded(refs)
    try:
        return execute_group(requests, store=store, encoded=encoded)
    finally:
        encoded.clear()
        for view, segment in attached:
            try:
                view.release()
                segment.close()
            except BufferError:  # pragma: no cover - a dangling export
                pass  # the mapping is freed with the worker process instead


def _watchdog_worker(conn) -> None:
    """Worker-process loop of the watchdogged :class:`MultiprocessRunner`.

    Receives ``(index, requests, refs, store_dir, retry_policy)`` task
    tuples over its pipe and answers with ``("hb", index)`` after every
    completed request, then ``("done", index, outcome, resilience)`` —
    or ``("err", index, message)`` if the chunk raised something the
    per-request machinery does not absorb.  A ``None`` task means exit.
    """

    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            index, requests, refs, store_dir, retry_policy = task
            store = TraceStore(store_dir) if store_dir else None
            encoded, attached = _attach_encoded(refs)
            resilience = ResilienceStats()
            try:
                outcome = execute_group(
                    requests,
                    store=store,
                    encoded=encoded,
                    retry_policy=retry_policy,
                    heartbeat=lambda: conn.send(("hb", index)),
                    resilience=resilience,
                )
                conn.send(("done", index, outcome, resilience))
            except Exception as error:  # noqa: BLE001 - forwarded to parent
                conn.send(("err", index, f"{type(error).__name__}: {error}"))
            finally:
                encoded.clear()
                for view, segment in attached:
                    try:
                        view.release()
                        segment.close()
                    except BufferError:  # pragma: no cover
                        pass
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        return


class _WorkerSlot:
    """Parent-side handle on one watchdogged worker process."""

    __slots__ = ("process", "conn", "task", "last_beat")

    def __init__(self, process, conn, clock: Callable[[], float]) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[int] = None
        self.last_beat = clock()


class MultiprocessRunner(Runner):
    """Farm independent request chunks across watchdogged worker processes.

    Each chunk ships with the compact encoded trace columns the parent
    found warm in the store — workers decode a few flat arrays instead of
    regenerating graphs and re-running emission loops.  The bytes travel
    through ``multiprocessing.shared_memory`` when available: one resident
    copy per artifact, attached zero-copy by every worker, instead of one
    pickled copy per chunk (see :func:`_share_artifacts`).  On a store miss the
    *worker* builds the workload locally, emits, and persists the artifact
    (the store directory is shared on disk), so cold-store builds still
    happen in parallel and every later run is warm.  Only compact values
    cross the process boundary: requests, encoded columns, results.
    Workload groups that dominate the plan — a Figure 9(b) sweep is dozens
    of points on one workload — are split into several chunks in proportion
    to their share of the plan, trading a few redundant artifact decodes
    for keeping every core busy.  Falls back to serial execution when there
    is nothing to parallelise.

    The parent supervises its workers directly (pipes, not a ``Pool``):
    every completed request is a heartbeat, and a worker silent for
    ``hang_timeout`` seconds is killed, its chunk requeued (at most
    ``max_attempts`` assignments per chunk) and a replacement spawned from
    a bounded respawn budget.  A chunk that exhausts its attempts fails
    with a label instead of hanging the plan; when every worker is gone
    and the budget is spent, the remaining chunks run serially in-parent.
    ``hang_timeout`` must comfortably exceed the longest *single*
    simulation, since a worker only beats between requests.
    """

    label = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        workloads: Optional[Mapping[str, Workload]] = None,
        trace_store=_DEFAULT_STORE,
        hang_timeout: float = 300.0,
        max_attempts: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        respawn_limit: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__()
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("MultiprocessRunner needs at least one worker")
        if hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        #: Pre-built workloads reused by the in-process (serial) fallback;
        #: worker processes resolve through the trace store instead.
        self.workloads = workloads
        self.trace_store = _resolve_store(trace_store)
        self.hang_timeout = hang_timeout
        self.max_attempts = max_attempts
        self.retry_policy = retry_policy
        self.respawn_limit = respawn_limit
        self._clock = clock

    def _chunk(self, requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
        total = len(requests)
        chunks: list[list[SimRequest]] = []
        for group in group_requests(requests):
            parts = min(len(group), max(1, round(len(group) * self.workers / total)))
            size = math.ceil(len(group) / parts)
            chunks.extend(group[start : start + size] for start in range(0, len(group), size))
        return chunks

    def _group_artifacts(
        self, requests: Sequence[SimRequest]
    ) -> dict[tuple[str, str, int], dict[str, bytes]]:
        """Read each group's warm artifacts from the store exactly once.

        Every chunk of a split group shares the same bytes objects, and the
        parent counts one store hit per (group, variant) here — workers
        decoding their shipped copy do not count again, so engine stats
        report warm traces, not warm decodes.
        """

        by_key: dict[tuple[str, str, int], dict[str, bytes]] = {}
        if self.trace_store is None:
            return by_key
        for group in group_requests(requests):
            first = group[0]
            encoded: dict[str, bytes] = {}
            for variant in variants_needed([r.prefetch_mode for r in group]):
                data = self.trace_store.get_bytes(
                    trace_digest(first.workload, variant, first.scale, first.seed)
                )
                # A corrupt entry is a miss here too — shipping it would
                # count a warm trace that every worker then re-emits.
                if data is not None and validate_artifact_bytes(data):
                    encoded[variant] = data
                    self.trace_stats.hits += 1
            by_key[first.workload_key] = encoded
        return by_key

    def run(
        self,
        requests: Sequence[SimRequest],
        *,
        on_executed: Optional[ExecutedCallback] = None,
        deadline: DeadlineLike = None,
    ) -> list[ExecutedRequest]:
        if not requests:
            self.trace_stats = TraceStoreStats()
            self.resilience = ResilienceStats()
            return []
        chunks = self._chunk(requests)
        budget = Deadline.after(deadline, clock=self._clock)
        if self.workers == 1 or len(chunks) <= 1:
            # Nothing to parallelise: hand the whole request set to the
            # serial path, forwarding any pre-built workloads so the
            # fallback does not pay a redundant workload rebuild.
            fallback = SerialRunner(
                workloads=self.workloads,
                trace_store=self.trace_store,
                retry_policy=self.retry_policy,
            )
            executed = fallback.run(requests, on_executed=on_executed, deadline=budget)
            self.trace_stats = fallback.trace_stats
            self.batched = fallback.batched
            self.resilience = fallback.resilience
            return executed
        self.trace_stats = TraceStoreStats()
        self.batched = 0
        self.resilience = ResilienceStats()
        # NOTE: ``is not None`` — TraceStore defines __len__, so an empty
        # (cold) store is falsy and a bare truthiness test would silently
        # disable worker-side persistence on exactly the runs that need it.
        store_dir = (
            str(self.trace_store.directory) if self.trace_store is not None else None
        )
        group_refs, segments = _share_artifacts(self._group_artifacts(requests))
        try:
            outcomes = self._run_watchdogged(
                chunks, group_refs, store_dir, budget, on_executed
            )
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()
        executed: list[ExecutedRequest] = []
        for chunk_executed, chunk_stats, chunk_batched in outcomes:
            executed.extend(chunk_executed)
            if chunk_stats is not None:
                self.trace_stats.merge(chunk_stats)
            self.batched += chunk_batched
        return executed

    # ----------------------------------------------------------- watchdog

    def _run_watchdogged(
        self,
        chunks: list[list[SimRequest]],
        group_refs: Mapping[tuple[str, str, int], Mapping[str, EncodedRef]],
        store_dir: Optional[str],
        budget: Optional[Deadline],
        on_executed: Optional[ExecutedCallback],
    ) -> list[tuple[list[ExecutedRequest], Optional[TraceStoreStats], int]]:
        """Supervise the worker fleet until every chunk has an outcome."""

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        clock = self._clock
        total = len(chunks)
        pending: deque[int] = deque(range(total))
        attempts = [0] * total
        # Chunk outcome: (executed, trace_stats_or_None, batched).
        outcomes: dict[int, tuple[list[ExecutedRequest], Optional[TraceStoreStats], int]] = {}
        fleet_size = min(self.workers, total)
        respawns_left = (
            self.respawn_limit if self.respawn_limit is not None else 2 * fleet_size
        )

        def payload_for(index: int):
            chunk = chunks[index]
            refs = group_refs.get(chunk[0].workload_key, {})
            return (index, chunk, refs, store_dir, self.retry_policy)

        def spawn() -> Optional[_WorkerSlot]:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_watchdog_worker, args=(child_conn,), daemon=True
            )
            try:
                process.start()
            except OSError:  # out of processes: the serial tail handles it
                parent_conn.close()
                child_conn.close()
                return None
            child_conn.close()
            return _WorkerSlot(process, parent_conn, clock)

        def finish_chunk(
            index: int,
            outcome: tuple[list[ExecutedRequest], Optional[TraceStoreStats], int],
        ) -> None:
            outcomes[index] = outcome
            if on_executed is not None and outcome[0]:
                on_executed(outcome[0])

        def fail_chunk(index: int, reason: str) -> None:
            executed = [
                (
                    request.digest,
                    None,
                    f"{request.workload}/{request.mode}: {reason} "
                    f"(chunk gave up after {attempts[index]} attempts)",
                )
                for request in chunks[index]
            ]
            finish_chunk(index, (executed, None, 0))

        def requeue_or_fail(index: int, reason: str) -> None:
            if attempts[index] >= self.max_attempts:
                fail_chunk(index, reason)
            else:
                self.resilience.requeues += 1
                pending.append(index)

        fleet = [slot for slot in (spawn() for _ in range(fleet_size)) if slot]

        def retire(slot: _WorkerSlot, reason: str) -> None:
            """Remove a dead or hung worker, salvaging its chunk."""

            nonlocal respawns_left
            if slot.process.is_alive():
                slot.process.kill()
            slot.process.join()
            slot.conn.close()
            fleet.remove(slot)
            if slot.task is not None:
                requeue_or_fail(slot.task, reason)
                slot.task = None
            if pending and respawns_left > 0:
                replacement = spawn()
                if replacement is not None:
                    respawns_left -= 1
                    self.resilience.respawns += 1
                    fleet.append(replacement)

        def assign(slot: _WorkerSlot, index: int) -> bool:
            attempts[index] += 1
            slot.task = index
            slot.last_beat = clock()
            try:
                slot.conn.send(payload_for(index))
            except (OSError, ValueError):
                # The worker died between liveness check and send; the
                # retire path undoes the assignment bookkeeping via requeue.
                attempts[index] -= 1
                slot.task = None
                pending.appendleft(index)
                retire(slot, "worker crashed")
                return False
            return True

        try:
            while len(outcomes) < total:
                if budget is not None and budget.expired:
                    break
                for slot in list(fleet):
                    if slot.task is None and pending:
                        assign(slot, pending.popleft())
                busy = [slot for slot in fleet if slot.task is not None]
                if not busy:
                    if not fleet or not pending:
                        break  # pool exhausted or nothing left: serial tail
                    continue
                tick = max(0.005, min(self.hang_timeout / 4.0, 0.25))
                if budget is not None:
                    tick = min(tick, max(0.001, budget.remaining()))
                waitable = [slot.conn for slot in busy] + [
                    slot.process.sentinel for slot in busy
                ]
                _mp_connection.wait(waitable, timeout=tick)
                now = clock()
                for slot in list(busy):
                    crashed = False
                    while slot.task is not None:
                        try:
                            if not slot.conn.poll():
                                break
                            message = slot.conn.recv()
                        except (EOFError, OSError):
                            crashed = True
                            break
                        kind = message[0]
                        if kind == "hb":
                            slot.last_beat = now
                        elif kind == "done":
                            _kind, index, outcome, worker_res = message
                            executed, stats, batched = outcome
                            self.resilience.merge(worker_res)
                            finish_chunk(index, (executed, stats, batched))
                            slot.task = None
                        elif kind == "err":
                            _kind, index, text = message
                            requeue_or_fail(index, text)
                            slot.task = None
                    if crashed or (slot.task is not None and not slot.process.is_alive()):
                        retire(slot, "worker crashed")
                    elif (
                        slot.task is not None
                        and now - slot.last_beat > self.hang_timeout
                    ):
                        self.resilience.hung_killed += 1
                        retire(slot, "worker hung (no heartbeat)")
        finally:
            for slot in list(fleet):
                try:
                    slot.conn.send(None)
                except (OSError, ValueError):
                    pass
                slot.process.join(timeout=0.5)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join()
                slot.conn.close()

        # Anything the fleet never finished: expired under the deadline, or
        # left over after pool exhaustion (degrade to in-parent serial).
        for index in range(total):
            if index in outcomes:
                continue
            chunk = chunks[index]
            if budget is not None and budget.expired:
                self.resilience.expired += len(chunk)
                finish_chunk(
                    index,
                    ([_deadline_failure(r, budget) for r in chunk], None, 0),
                )
                continue
            if attempts[index] >= self.max_attempts:
                fail_chunk(index, "worker pool exhausted")
                continue
            self.resilience.degraded_serial += 1
            store = TraceStore(store_dir) if store_dir else None
            outcome = execute_group(
                chunk,
                self.workloads,
                store=store,
                deadline=budget,
                retry_policy=self.retry_policy,
                resilience=self.resilience,
            )
            finish_chunk(index, outcome)

        return [outcomes[index] for index in range(total)]
