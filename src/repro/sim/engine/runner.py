"""Plan executors: serial, and multiprocessing across cores.

Requests are grouped by :attr:`SimRequest.workload_key` so each group builds
its workload (graph generation, trace emission — the expensive part) exactly
once and reuses the traces for every mode simulated against it.  The serial
and parallel runners execute the same per-request code path, so for a given
request set they produce bit-identical results; the parallel runner merely
farms chunks of those groups out to worker processes.

A request whose mode cannot be built for its workload (the missing Figure 7
bars, e.g. software prefetching on PageRank) executes to ``None`` rather than
raising, mirroring the drivers' historical "skip the bar silently" behaviour.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence

from ...errors import WorkloadError
from ...workloads import build_workload
from ...workloads.base import Workload
from ..results import SimulationResult
from ..system import simulate
from .request import SimRequest, resolve_policy

#: One executed request: ``(digest, result)`` with ``None`` for unavailable modes.
ExecutedRequest = tuple[str, Optional[SimulationResult]]


def group_requests(requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
    """Group requests by workload key, preserving first-seen order."""

    groups: dict[tuple[str, str, int], list[SimRequest]] = {}
    for request in requests:
        groups.setdefault(request.workload_key, []).append(request)
    return list(groups.values())


def execute_request(request: SimRequest, workload: Workload) -> Optional[SimulationResult]:
    """Run one request against an already-built workload."""

    try:
        return simulate(
            workload,
            request.prefetch_mode,
            request.config,
            policy=resolve_policy(request.policy),
        )
    except WorkloadError:
        return None


def execute_group(
    requests: Sequence[SimRequest],
    workloads: Optional[Mapping[str, Workload]] = None,
) -> list[ExecutedRequest]:
    """Execute requests in order, building each distinct workload once.

    ``workloads`` may supply pre-built objects keyed by workload name; one is
    used only when its scale and seed match the request, otherwise the
    workload is rebuilt so results stay independent of what was passed in.
    """

    built: dict[tuple[str, str, int], Workload] = {}
    executed: list[ExecutedRequest] = []
    for request in requests:
        workload = built.get(request.workload_key)
        if workload is None:
            candidate = (workloads or {}).get(request.workload)
            if (
                candidate is not None
                and candidate.scale.name == request.scale
                and candidate.seed == request.seed
            ):
                workload = candidate
            else:
                workload = build_workload(request.workload, scale=request.scale, seed=request.seed)
            built[request.workload_key] = workload
        executed.append((request.digest, execute_request(request, workload)))
    return executed


class Runner(ABC):
    """Executes the pending requests of a plan."""

    #: Human-readable label recorded in engine statistics.
    label: str = "runner"

    @abstractmethod
    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        ...


class SerialRunner(Runner):
    """Execute every request in-process, in submission order."""

    label = "serial"

    def __init__(self, workloads: Optional[Mapping[str, Workload]] = None) -> None:
        self.workloads = workloads

    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        executed: list[ExecutedRequest] = []
        for group in group_requests(requests):
            executed.extend(execute_group(group, self.workloads))
        return executed


def _execute_group_task(requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
    """Top-level worker entry point (must be picklable by name)."""

    return execute_group(requests)


class MultiprocessRunner(Runner):
    """Farm independent request chunks across a process pool.

    Each worker builds its chunk's workload locally (traces never cross the
    process boundary); only the compact request and result values are
    pickled.  Workload groups that dominate the plan — a Figure 9(b) sweep
    is dozens of points on one workload — are split into several chunks in
    proportion to their share of the plan, trading a few redundant workload
    builds for keeping every core busy.  Falls back to serial execution when
    there is nothing to parallelise.
    """

    label = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        workloads: Optional[Mapping[str, Workload]] = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("MultiprocessRunner needs at least one worker")
        #: Pre-built workloads reused by the in-process (serial) fallback;
        #: worker processes always build their own (traces don't pickle).
        self.workloads = workloads

    def _chunk(self, requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
        total = len(requests)
        chunks: list[list[SimRequest]] = []
        for group in group_requests(requests):
            parts = min(len(group), max(1, round(len(group) * self.workers / total)))
            size = math.ceil(len(group) / parts)
            chunks.extend(group[start : start + size] for start in range(0, len(group), size))
        return chunks

    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        if not requests:
            return []
        chunks = self._chunk(requests)
        if self.workers == 1 or len(chunks) <= 1:
            # Nothing to parallelise: hand the whole request set to the
            # serial path, forwarding any pre-built workloads so the
            # fallback does not pay a redundant workload rebuild.
            return SerialRunner(workloads=self.workloads).run(requests)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        with context.Pool(processes=min(self.workers, len(chunks))) as pool:
            executed = pool.map(_execute_group_task, chunks)
        return [item for chunk in executed for item in chunk]
