"""Plan executors: serial, and multiprocessing across cores.

Requests are grouped by :attr:`SimRequest.workload_key` so each group's
expensive inputs — workload data structures and dynamic traces — are
resolved exactly once.  Resolution goes through the **trace artifact tier**
(:mod:`repro.trace_store`): each group's trace artifacts are looked up front
in the digest-keyed on-disk store; warm artifacts replay directly (no
workload rebuild at all for the non-programmable modes, traces injected
instead of re-emitted for the programmable ones), and anything missing is
built once, emitted, and persisted so the next run — or the next worker —
starts warm.  The serial and parallel runners execute the same per-request
code path, so for a given request set they produce bit-identical results;
the parallel runner merely farms chunks of those groups out to worker
processes, shipping each chunk the compact encoded trace columns it found
warm instead of a rebuild recipe.

A request whose mode cannot be built for its workload (the missing Figure 7
bars, e.g. software prefetching on PageRank) executes to ``None`` with no
failure label, mirroring the drivers' historical "skip the bar" behaviour.
Any *other* :class:`~repro.errors.WorkloadError` also executes to ``None``
but carries a failure label, which the engine counts and surfaces — failed
requests are no longer silently indistinguishable from unavailable ones.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Mapping, Optional, Sequence

from ...errors import WorkloadError
from ...trace_store import (
    GroupResolver,
    TraceStore,
    TraceStoreStats,
    default_trace_store,
    trace_digest,
    validate_artifact_bytes,
    variants_needed,
)
from ...workloads.base import Workload
from ..modes import mode_available
from ..results import SimulationResult
from ..system import simulate
from .request import SimRequest, resolve_policy

#: One executed request: ``(digest, result, failure)``.  ``result`` is
#: ``None`` both for unavailable modes (``failure is None``) and for genuine
#: failures (``failure`` holds the error text).
ExecutedRequest = tuple[str, Optional[SimulationResult], Optional[str]]

#: Sentinel distinguishing "no store passed" (resolve from the environment)
#: from an explicit ``trace_store=None`` (tier disabled).
_DEFAULT_STORE = object()


def _resolve_store(trace_store) -> Optional[TraceStore]:
    return default_trace_store() if trace_store is _DEFAULT_STORE else trace_store


def group_requests(requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
    """Group requests by workload key, preserving first-seen order."""

    groups: dict[tuple[str, str, int], list[SimRequest]] = {}
    for request in requests:
        groups.setdefault(request.workload_key, []).append(request)
    return list(groups.values())


def execute_request(
    request: SimRequest, workload: Workload
) -> tuple[Optional[SimulationResult], Optional[str]]:
    """Run one request against a resolved workload.

    Returns ``(result, failure)``: a successful simulation carries no
    failure text; an unavailable mode returns ``(None, None)``; any other
    workload error returns ``(None, <message>)`` so the engine can count
    and label it instead of dropping it on the floor.
    """

    try:
        result = simulate(
            workload,
            request.prefetch_mode,
            request.config,
            policy=resolve_policy(request.policy),
        )
        return result, None
    except WorkloadError as error:
        try:
            if not mode_available(workload, request.prefetch_mode):
                return None, None
        except WorkloadError:
            pass  # availability itself failed: report the original error
        return None, f"{request.workload}/{request.mode}: {error}"


def execute_group(
    requests: Sequence[SimRequest],
    workloads: Optional[Mapping[str, Workload]] = None,
    *,
    store: Optional[TraceStore] = None,
    encoded: Optional[Mapping[str, bytes]] = None,
) -> tuple[list[ExecutedRequest], TraceStoreStats]:
    """Execute one workload group, resolving its trace artifacts up front.

    ``workloads`` may supply pre-built objects keyed by workload name; one
    is used only when its scale and seed match the request, otherwise the
    group resolves independently so results stay independent of what was
    passed in.  ``encoded`` carries store-encoded trace columns a parent
    process shipped (keyed by variant); ``store`` is consulted for anything
    else and receives freshly-emitted traces.
    """

    executed: list[ExecutedRequest] = []
    stats = TraceStoreStats()
    for group in group_requests(requests):
        first = group[0]
        resolver = GroupResolver(
            first.workload,
            first.scale,
            first.seed,
            store=store,
            prebuilt=(workloads or {}).get(first.workload),
            encoded=encoded if first.workload_key == requests[0].workload_key else None,
        )
        for request in group:
            workload = resolver.workload_for_mode(request.prefetch_mode)
            result, failure = execute_request(request, workload)
            executed.append((request.digest, result, failure))
        resolver.persist(variants_needed([r.prefetch_mode for r in group]))
        stats.merge(resolver.stats)
    return executed, stats


class Runner(ABC):
    """Executes the pending requests of a plan."""

    #: Human-readable label recorded in engine statistics.
    label: str = "runner"

    #: Trace-artifact resolution counters of the most recent :meth:`run`.
    trace_stats: TraceStoreStats

    def __init__(self) -> None:
        self.trace_stats = TraceStoreStats()

    @abstractmethod
    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        ...


class SerialRunner(Runner):
    """Execute every request in-process, in submission order."""

    label = "serial"

    def __init__(
        self,
        workloads: Optional[Mapping[str, Workload]] = None,
        *,
        trace_store=_DEFAULT_STORE,
    ) -> None:
        super().__init__()
        self.workloads = workloads
        self.trace_store = _resolve_store(trace_store)

    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        self.trace_stats = TraceStoreStats()
        executed: list[ExecutedRequest] = []
        for group in group_requests(requests):
            chunk, stats = execute_group(group, self.workloads, store=self.trace_store)
            executed.extend(chunk)
            self.trace_stats.merge(stats)
        return executed


def _execute_group_task(
    payload: tuple[Sequence[SimRequest], dict[str, bytes], Optional[str]]
) -> tuple[list[ExecutedRequest], TraceStoreStats]:
    """Top-level worker entry point (must be picklable by name)."""

    requests, encoded, store_dir = payload
    store = TraceStore(store_dir) if store_dir else None
    return execute_group(requests, store=store, encoded=encoded)


class MultiprocessRunner(Runner):
    """Farm independent request chunks across a process pool.

    Each chunk ships with the compact encoded trace columns the parent
    found warm in the store — workers decode a few flat arrays instead of
    regenerating graphs and re-running emission loops.  On a store miss the
    *worker* builds the workload locally, emits, and persists the artifact
    (the store directory is shared on disk), so cold-store builds still
    happen in parallel and every later run is warm.  Only compact values
    cross the process boundary: requests, encoded columns, results.
    Workload groups that dominate the plan — a Figure 9(b) sweep is dozens
    of points on one workload — are split into several chunks in proportion
    to their share of the plan, trading a few redundant artifact decodes
    for keeping every core busy.  Falls back to serial execution when there
    is nothing to parallelise.
    """

    label = "multiprocess"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        workloads: Optional[Mapping[str, Workload]] = None,
        trace_store=_DEFAULT_STORE,
    ) -> None:
        super().__init__()
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("MultiprocessRunner needs at least one worker")
        #: Pre-built workloads reused by the in-process (serial) fallback;
        #: worker processes resolve through the trace store instead.
        self.workloads = workloads
        self.trace_store = _resolve_store(trace_store)

    def _chunk(self, requests: Sequence[SimRequest]) -> list[list[SimRequest]]:
        total = len(requests)
        chunks: list[list[SimRequest]] = []
        for group in group_requests(requests):
            parts = min(len(group), max(1, round(len(group) * self.workers / total)))
            size = math.ceil(len(group) / parts)
            chunks.extend(group[start : start + size] for start in range(0, len(group), size))
        return chunks

    def _group_artifacts(
        self, requests: Sequence[SimRequest]
    ) -> dict[tuple[str, str, int], dict[str, bytes]]:
        """Read each group's warm artifacts from the store exactly once.

        Every chunk of a split group shares the same bytes objects, and the
        parent counts one store hit per (group, variant) here — workers
        decoding their shipped copy do not count again, so engine stats
        report warm traces, not warm decodes.
        """

        by_key: dict[tuple[str, str, int], dict[str, bytes]] = {}
        if self.trace_store is None:
            return by_key
        for group in group_requests(requests):
            first = group[0]
            encoded: dict[str, bytes] = {}
            for variant in variants_needed([r.prefetch_mode for r in group]):
                data = self.trace_store.get_bytes(
                    trace_digest(first.workload, variant, first.scale, first.seed)
                )
                # A corrupt entry is a miss here too — shipping it would
                # count a warm trace that every worker then re-emits.
                if data is not None and validate_artifact_bytes(data):
                    encoded[variant] = data
                    self.trace_stats.hits += 1
            by_key[first.workload_key] = encoded
        return by_key

    def run(self, requests: Sequence[SimRequest]) -> list[ExecutedRequest]:
        if not requests:
            self.trace_stats = TraceStoreStats()
            return []
        chunks = self._chunk(requests)
        if self.workers == 1 or len(chunks) <= 1:
            # Nothing to parallelise: hand the whole request set to the
            # serial path, forwarding any pre-built workloads so the
            # fallback does not pay a redundant workload rebuild.
            fallback = SerialRunner(workloads=self.workloads, trace_store=self.trace_store)
            executed = fallback.run(requests)
            self.trace_stats = fallback.trace_stats
            return executed
        self.trace_stats = TraceStoreStats()
        # NOTE: ``is not None`` — TraceStore defines __len__, so an empty
        # (cold) store is falsy and a bare truthiness test would silently
        # disable worker-side persistence on exactly the runs that need it.
        store_dir = (
            str(self.trace_store.directory) if self.trace_store is not None else None
        )
        group_artifacts = self._group_artifacts(requests)
        payloads = [
            (chunk, group_artifacts.get(chunk[0].workload_key, {}), store_dir)
            for chunk in chunks
        ]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        with context.Pool(processes=min(self.workers, len(chunks))) as pool:
            outcomes = pool.map(_execute_group_task, payloads)
        executed: list[ExecutedRequest] = []
        for chunk_executed, chunk_stats in outcomes:
            executed.extend(chunk_executed)
            self.trace_stats.merge(chunk_stats)
        return executed
