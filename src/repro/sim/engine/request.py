"""Declarative simulation requests with stable content digests.

A :class:`SimRequest` names everything :func:`repro.sim.system.simulate`
needs — workload, scale, seed, prefetch mode, system configuration and
scheduling policy — as plain, hashable data.  Its :attr:`~SimRequest.digest`
is a SHA-256 over the canonical JSON encoding of those fields, which gives
the plan layer a deduplication key and the result cache a content address
that is stable across processes and sessions.

Scheduling policies are referred to by *name* (see :data:`POLICY_REGISTRY`)
rather than by object so that requests stay picklable for the
``multiprocessing`` runner and digestable for the cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from functools import cached_property, lru_cache
from pathlib import Path
from typing import Any, Optional

from ...config import SystemConfig
from ...errors import ConfigurationError
from ...programmable.scheduler import (
    LowestFreeIdPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from ..modes import PrefetchMode

#: Scheduling policies a request may name.  ``None`` (the default) lets the
#: prefetcher use its built-in lowest-free-ID policy.
POLICY_REGISTRY: dict[str, type[SchedulingPolicy]] = {
    "lowest-free-id": LowestFreeIdPolicy,
    "round-robin": RoundRobinPolicy,
}


def resolve_policy(name: Optional[str]) -> Optional[SchedulingPolicy]:
    """Instantiate the scheduling policy registered under ``name``."""

    if name is None:
        return None
    try:
        return POLICY_REGISTRY[name]()
    except KeyError as error:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; available: {sorted(POLICY_REGISTRY)}"
        ) from error


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources.

    Folded into every request digest so a persistent :class:`ResultCache`
    can never replay results produced by different simulator code: any
    source change (conservatively, even a comment) invalidates the cache.
    """

    package_root = Path(__file__).resolve().parents[2]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class SimRequest:
    """One declarative simulation point.

    Attributes:
        workload: Workload name as registered with
            :mod:`repro.workloads.registry` (runners rebuild the workload
            from the registry in whatever process executes the request).
        mode: Prefetch mode, stored as the :class:`PrefetchMode` *value*
            string so the request is trivially JSON-encodable; use
            :attr:`prefetch_mode` for the enum.
        scale: Workload scale name (``tiny`` .. ``large``).
        seed: Workload data-generation seed.
        config: Full system configuration for the run.
        policy: Scheduling-policy name from :data:`POLICY_REGISTRY`, or
            ``None`` for the prefetcher's built-in policy.
        kernel_source: Manual-kernel provenance (``"hand"``/``"compiled"``).
            Normalised at construction: non-manual modes store ``None``
            (kernel source cannot affect them), manual modes resolve
            ``None`` through ``REPRO_KERNEL_SOURCE`` and the workload
            spec's default so the *effective* source is always part of the
            digest — compiled and hand-written runs never alias in the
            result cache.
    """

    workload: str
    mode: str
    scale: str = "default"
    seed: int = 42
    config: SystemConfig = field(default_factory=SystemConfig.scaled)
    policy: Optional[str] = None
    kernel_source: Optional[str] = None

    def __post_init__(self) -> None:
        # Normalise enum inputs and fail fast on unknown modes/policies.
        if isinstance(self.mode, PrefetchMode):
            object.__setattr__(self, "mode", self.mode.value)
        PrefetchMode(self.mode)
        resolve_policy(self.policy)
        object.__setattr__(self, "kernel_source", self._normalised_kernel_source())

    def _normalised_kernel_source(self) -> Optional[str]:
        if self.prefetch_mode not in (PrefetchMode.MANUAL, PrefetchMode.MANUAL_BLOCKED):
            return None
        from ...workloads.registry import resolve_kernel_source

        return resolve_kernel_source(self.workload, self.kernel_source)

    @property
    def prefetch_mode(self) -> PrefetchMode:
        return PrefetchMode(self.mode)

    @property
    def workload_key(self) -> tuple[str, str, int]:
        """Requests sharing this key reuse one built workload (same traces)."""

        return (self.workload, self.scale, self.seed)

    def describe(self) -> dict[str, Any]:
        """Canonical JSON-encodable description (the digest pre-image)."""

        return {
            "workload": self.workload,
            "mode": self.mode,
            "scale": self.scale,
            "seed": self.seed,
            "policy": self.policy,
            "kernel_source": self.kernel_source,
            "config": asdict(self.config),
            "code": code_fingerprint(),
        }

    @cached_property
    def digest(self) -> str:
        """Stable SHA-256 content digest of the request."""

        payload = json.dumps(self.describe(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
