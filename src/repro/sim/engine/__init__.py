"""Batch simulation engine: plan → execute → cache.

Every figure, table and sweep in the evaluation reduces to a set of
independent ``(workload, mode, config)`` simulation points.  This package
turns those points into declarative :class:`SimRequest` values, collects them
into a deduplicating :class:`SimPlan`, executes the plan with a pluggable
:class:`Runner` (serial, or ``multiprocessing`` across cores), and memoises
results both in-process and in a persistent content-addressed
:class:`ResultCache`, so shared baselines are simulated exactly once and
repeated reproduction runs skip work entirely.

Quickstart::

    from repro.sim.engine import MultiprocessRunner, ResultCache, SimEngine
    from repro.sim.comparison import comparison_plan

    engine = SimEngine(runner=MultiprocessRunner(), cache=ResultCache(".sim-cache"))
    batch = engine.run(comparison_plan(["intsort", "randacc"]))
    print(batch.stats)
"""

from ...trace_store import TraceStore, TraceStoreStats, default_trace_store
from .cache import UNAVAILABLE, ResultCache
from .checkpoint import (
    CHECKPOINT_DIR_ENV,
    ManifestEntry,
    RunManifest,
    default_checkpoint_dir,
    plan_fingerprint,
)
from .core import BatchResult, EngineStats, SimEngine
from .plan import SimPlan
from .request import POLICY_REGISTRY, SimRequest, resolve_policy
from .runner import (
    DEADLINE_FAILURE_TEXT,
    ExecutedRequest,
    MultiprocessRunner,
    ResilienceStats,
    Runner,
    SerialRunner,
    execute_group,
    execute_request,
    group_requests,
)

__all__ = [
    "CHECKPOINT_DIR_ENV",
    "DEADLINE_FAILURE_TEXT",
    "ManifestEntry",
    "ResilienceStats",
    "RunManifest",
    "default_checkpoint_dir",
    "plan_fingerprint",
    "SimRequest",
    "SimPlan",
    "Runner",
    "SerialRunner",
    "MultiprocessRunner",
    "ExecutedRequest",
    "group_requests",
    "execute_group",
    "execute_request",
    "ResultCache",
    "UNAVAILABLE",
    "TraceStore",
    "TraceStoreStats",
    "default_trace_store",
    "SimEngine",
    "BatchResult",
    "EngineStats",
    "POLICY_REGISTRY",
    "resolve_policy",
]
