"""The engine facade: run a plan through memo → cache → runner.

:class:`SimEngine` owns three layers of reuse:

1. the plan itself deduplicates identical requests (shared baselines);
2. an in-process memo carries results across successive ``run`` calls, so
   several figures sharing one engine never re-simulate a point;
3. an optional persistent :class:`ResultCache` carries results across
   sessions.

Everything still pending after those layers goes to the :class:`Runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..results import SimulationResult
from .cache import UNAVAILABLE, CachedValue, ResultCache
from .plan import SimPlan
from .request import SimRequest
from .runner import Runner, SerialRunner


@dataclass
class EngineStats:
    """What one ``run`` (or an engine lifetime) did and avoided doing."""

    submitted: int = 0
    unique: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    unavailable: int = 0
    #: Requests that errored (a :class:`~repro.errors.WorkloadError` that was
    #: *not* mere mode unavailability).  Labelled in :attr:`failures`.
    failed: int = 0
    #: Failure label → occurrence count (``workload/mode: message``).
    failures: dict[str, int] = field(default_factory=dict)
    #: Trace-artifact tier counters: traces warmed from the store, traces
    #: that had to be emitted, and freshly-persisted artifacts.
    trace_hits: int = 0
    trace_built: int = 0
    trace_stored: int = 0
    #: Requests satisfied by multi-configuration vector batches — several
    #: cache geometries replayed over one pass of a shared trace — rather
    #: than by individual simulations.
    batched: int = 0
    runner: str = "serial"

    @property
    def avoided(self) -> int:
        """Simulations skipped through dedup, memoisation or the disk cache."""

        return self.deduplicated + self.memo_hits + self.cache_hits

    def merge(self, other: "EngineStats") -> None:
        self.submitted += other.submitted
        self.unique += other.unique
        self.deduplicated += other.deduplicated
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.unavailable += other.unavailable
        self.failed += other.failed
        for label, count in other.failures.items():
            self.failures[label] = self.failures.get(label, 0) + count
        self.trace_hits += other.trace_hits
        self.trace_built += other.trace_built
        self.trace_stored += other.trace_stored
        self.batched += other.batched
        self.runner = other.runner

    def summary(self) -> str:
        text = (
            f"{self.submitted} submitted → {self.unique} unique "
            f"({self.deduplicated} deduplicated), {self.memo_hits} memo hits, "
            f"{self.cache_hits} cache hits, {self.executed} simulated "
            f"({self.unavailable} unavailable, {self.failed} failed) [{self.runner}]"
        )
        if self.trace_hits or self.trace_built:
            text += f"; traces: {self.trace_hits} warm, {self.trace_built} emitted"
        if self.batched:
            text += f"; {self.batched} vector-batched"
        return text


@dataclass
class BatchResult:
    """Results of one executed plan, addressable by request or digest."""

    results: dict[str, SimulationResult] = field(default_factory=dict)
    skipped: set[str] = field(default_factory=set)
    #: Failure text per failed request digest (subset of ``skipped``).
    failures: dict[str, str] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)

    def get(self, request: Union[SimRequest, str]) -> Optional[SimulationResult]:
        digest = request.digest if isinstance(request, SimRequest) else request
        return self.results.get(digest)

    def __getitem__(self, request: Union[SimRequest, str]) -> SimulationResult:
        result = self.get(request)
        if result is None:
            digest = request.digest if isinstance(request, SimRequest) else request
            raise KeyError(f"no result for request {digest}")
        return result

    def __len__(self) -> int:
        return len(self.results)


class SimEngine:
    """Plan executor with in-process memoisation and optional disk cache."""

    def __init__(
        self,
        *,
        runner: Optional[Runner] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.runner = runner if runner is not None else SerialRunner()
        self.cache = cache
        #: Cumulative statistics across every ``run``/``simulate`` call.
        self.stats = EngineStats(runner=self.runner.label)
        self._memo: dict[str, CachedValue] = {}

    def run(self, plan: SimPlan) -> BatchResult:
        """Execute ``plan`` through memo → cache → runner.

        Args:
            plan: The deduplicated request set to execute.

        Returns:
            A :class:`BatchResult` mapping request digests to results, with
            unavailable points in ``skipped`` and an :class:`EngineStats`
            describing what this run executed and what it avoided.
        """

        run_stats = EngineStats(
            submitted=plan.submitted,
            unique=len(plan),
            deduplicated=plan.deduplicated,
            runner=self.runner.label,
        )
        batch = BatchResult(stats=run_stats)
        pending: list[SimRequest] = []

        for digest, request in plan.items():
            value = self._memo.get(digest)
            if value is not None:
                run_stats.memo_hits += 1
            elif self.cache is not None:
                value = self.cache.get(digest)
                if value is not None:
                    run_stats.cache_hits += 1
                    self._memo[digest] = value
            if value is None:
                pending.append(request)
            elif value is UNAVAILABLE:
                batch.skipped.add(digest)
            else:
                batch.results[digest] = value

        by_digest = {request.digest: request for request in pending}
        for digest, result, failure in self.runner.run(pending):
            run_stats.executed += 1
            request = by_digest[digest]
            if result is None:
                batch.skipped.add(digest)
                if failure is not None:
                    # A genuine failure: count and label it, but never
                    # tombstone it — a later run should retry, and a
                    # persistent cache must not remember transient errors.
                    run_stats.failed += 1
                    run_stats.failures[failure] = run_stats.failures.get(failure, 0) + 1
                    batch.failures[digest] = failure
                else:
                    run_stats.unavailable += 1
                    self._memo[digest] = UNAVAILABLE
                    if self.cache is not None:
                        self.cache.put_unavailable(request)
            else:
                batch.results[digest] = result
                self._memo[digest] = result
                if self.cache is not None:
                    self.cache.put(request, result)

        trace_stats = getattr(self.runner, "trace_stats", None)
        if trace_stats is not None:
            run_stats.trace_hits = trace_stats.hits
            run_stats.trace_built = trace_stats.built
            run_stats.trace_stored = trace_stats.stored
        run_stats.batched = getattr(self.runner, "batched", 0)
        self.stats.merge(run_stats)
        return batch

    def simulate(self, request: SimRequest) -> Optional[SimulationResult]:
        """Run a single request through the full memo/cache/runner path.

        Args:
            request: The simulation point to run.

        Returns:
            Its :class:`~repro.sim.results.SimulationResult`, or ``None``
            when the requested mode is unavailable for the workload.
        """

        return self.run(SimPlan([request])).get(request)
