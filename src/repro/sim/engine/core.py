"""The engine facade: run a plan through memo → cache → runner.

:class:`SimEngine` owns three layers of reuse:

1. the plan itself deduplicates identical requests (shared baselines);
2. an in-process memo carries results across successive ``run`` calls, so
   several figures sharing one engine never re-simulate a point;
3. an optional persistent :class:`ResultCache` carries results across
   sessions.

Everything still pending after those layers goes to the :class:`Runner` —
and, when a checkpoint directory is configured, is recorded in a durable
run manifest *as it completes* (see :mod:`repro.sim.engine.checkpoint`):
each finished request is pushed into the cache and the manifest before the
next one runs, so a killed sweep resumes from exactly where it died.  With
``resume=True`` the engine replays the prior manifest against the cache and
executes only the missing requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from ...resilience import Deadline, DeadlineLike
from ..results import SimulationResult
from .cache import UNAVAILABLE, CachedValue, ResultCache
from .checkpoint import ManifestEntry, RunManifest, default_checkpoint_dir
from .plan import SimPlan
from .request import SimRequest
from .runner import DEADLINE_FAILURE_TEXT, ExecutedRequest, Runner, SerialRunner


@dataclass
class EngineStats:
    """What one ``run`` (or an engine lifetime) did and avoided doing."""

    submitted: int = 0
    unique: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    unavailable: int = 0
    #: Requests that errored (a :class:`~repro.errors.WorkloadError` that was
    #: *not* mere mode unavailability).  Labelled in :attr:`failures`.
    failed: int = 0
    #: Failure label → occurrence count (``workload/mode: message``).
    failures: dict[str, int] = field(default_factory=dict)
    #: Trace-artifact tier counters: traces warmed from the store, traces
    #: that had to be emitted, and freshly-persisted artifacts.
    trace_hits: int = 0
    trace_built: int = 0
    trace_stored: int = 0
    #: Requests satisfied by multi-configuration vector batches — several
    #: cache geometries replayed over one pass of a shared trace — rather
    #: than by individual simulations.
    batched: int = 0
    #: Requests a ``resume`` run satisfied from a prior run's checkpoint
    #: manifest (via the cache, or the manifest's unavailable marker)
    #: instead of re-executing them.
    resumed: int = 0
    #: Individual failed requests retried in place under a retry policy.
    retried: int = 0
    #: Parallel chunks requeued after their worker hung or crashed.
    requeues: int = 0
    #: Workers killed by the hung-worker watchdog.
    hung_killed: int = 0
    #: Requests that completed as failures because a deadline expired
    #: (a subset of :attr:`failed`).
    expired: int = 0
    #: Service submissions rejected by admission control and retried after
    #: the server-advertised backoff (set by the service engine).
    rejected: int = 0
    #: Service endpoint attempts abandoned (connect failure, mid-plan
    #: disconnect, drain refusal) with the work handed to the next endpoint
    #: — or to local execution (set by the failover service engine).
    failed_over: int = 0
    #: Requests a daemon satisfied by pulling finished results from a peer
    #: daemon's memo/cache instead of executing them.
    peer_hits: int = 0
    #: Requests executed by the local fallback engine because every service
    #: endpoint was open-circuited or unreachable.
    degraded_local: int = 0
    runner: str = "serial"

    @property
    def avoided(self) -> int:
        """Simulations skipped through dedup, memoisation or the disk cache."""

        return self.deduplicated + self.memo_hits + self.cache_hits

    def merge(self, other: "EngineStats") -> None:
        self.submitted += other.submitted
        self.unique += other.unique
        self.deduplicated += other.deduplicated
        self.memo_hits += other.memo_hits
        self.cache_hits += other.cache_hits
        self.executed += other.executed
        self.unavailable += other.unavailable
        self.failed += other.failed
        for label, count in other.failures.items():
            self.failures[label] = self.failures.get(label, 0) + count
        self.trace_hits += other.trace_hits
        self.trace_built += other.trace_built
        self.trace_stored += other.trace_stored
        self.batched += other.batched
        self.resumed += other.resumed
        self.retried += other.retried
        self.requeues += other.requeues
        self.hung_killed += other.hung_killed
        self.expired += other.expired
        self.rejected += other.rejected
        self.failed_over += other.failed_over
        self.peer_hits += other.peer_hits
        self.degraded_local += other.degraded_local
        self.runner = other.runner

    def summary(self) -> str:
        text = (
            f"{self.submitted} submitted → {self.unique} unique "
            f"({self.deduplicated} deduplicated), {self.memo_hits} memo hits, "
            f"{self.cache_hits} cache hits, {self.executed} simulated "
            f"({self.unavailable} unavailable, {self.failed} failed) [{self.runner}]"
        )
        if self.trace_hits or self.trace_built:
            text += f"; traces: {self.trace_hits} warm, {self.trace_built} emitted"
        if self.batched:
            text += f"; {self.batched} vector-batched"
        resilience = []
        if self.resumed:
            resilience.append(f"{self.resumed} resumed")
        if self.retried:
            resilience.append(f"{self.retried} retried")
        if self.requeues:
            resilience.append(f"{self.requeues} requeued")
        if self.hung_killed:
            resilience.append(f"{self.hung_killed} hung workers killed")
        if self.expired:
            resilience.append(f"{self.expired} deadline-expired")
        if self.rejected:
            resilience.append(f"{self.rejected} rejected+retried")
        if self.failed_over:
            resilience.append(f"{self.failed_over} failed-over")
        if self.peer_hits:
            resilience.append(f"{self.peer_hits} peer hits")
        if self.degraded_local:
            resilience.append(f"{self.degraded_local} degraded-to-local")
        if resilience:
            text += "; resilience: " + ", ".join(resilience)
        return text


@dataclass
class BatchResult:
    """Results of one executed plan, addressable by request or digest."""

    results: dict[str, SimulationResult] = field(default_factory=dict)
    skipped: set[str] = field(default_factory=set)
    #: Failure text per failed request digest (subset of ``skipped``).
    failures: dict[str, str] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)

    def get(self, request: Union[SimRequest, str]) -> Optional[SimulationResult]:
        digest = request.digest if isinstance(request, SimRequest) else request
        return self.results.get(digest)

    def __getitem__(self, request: Union[SimRequest, str]) -> SimulationResult:
        result = self.get(request)
        if result is None:
            digest = request.digest if isinstance(request, SimRequest) else request
            raise KeyError(f"no result for request {digest}")
        return result

    def __len__(self) -> int:
        return len(self.results)


class SimEngine:
    """Plan executor with in-process memoisation and optional disk cache.

    Args:
        runner: Executes whatever the memo/cache layers cannot answer.
        cache: Optional persistent result cache shared across sessions.
        checkpoint_dir: When set, each run writes a durable manifest of
            completed requests there (incrementally, via atomic renames).
        resume: Replay the prior manifest before executing: requests it
            recorded as done are served from the cache (or skipped, for
            unavailable modes) instead of re-executing.  Implies
            checkpointing; without an explicit ``checkpoint_dir`` the
            default directory (``REPRO_CHECKPOINT_DIR`` or the user cache)
            is used.
        deadline: Per-``run`` execution budget in seconds (or a shared
            :class:`~repro.resilience.Deadline`).  Expired requests fail
            with a retryable label rather than blocking forever.
    """

    def __init__(
        self,
        *,
        runner: Optional[Runner] = None,
        cache: Optional[ResultCache] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        deadline: DeadlineLike = None,
    ) -> None:
        self.runner = runner if runner is not None else SerialRunner()
        self.cache = cache
        if resume and checkpoint_dir is None:
            checkpoint_dir = default_checkpoint_dir()
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.resume = resume
        self.deadline = deadline
        #: Cumulative statistics across every ``run``/``simulate`` call.
        self.stats = EngineStats(runner=self.runner.label)
        self._memo: dict[str, CachedValue] = {}

    def run(self, plan: SimPlan) -> BatchResult:
        """Execute ``plan`` through memo → cache → runner.

        Args:
            plan: The deduplicated request set to execute.

        Returns:
            A :class:`BatchResult` mapping request digests to results, with
            unavailable points in ``skipped`` and an :class:`EngineStats`
            describing what this run executed and what it avoided.
        """

        run_stats = EngineStats(
            submitted=plan.submitted,
            unique=len(plan),
            deduplicated=plan.deduplicated,
            runner=self.runner.label,
        )
        batch = BatchResult(stats=run_stats)
        pending: list[SimRequest] = []

        manifest: Optional[RunManifest] = None
        prior: dict[str, ManifestEntry] = {}
        if self.checkpoint_dir is not None:
            manifest = RunManifest(
                self.checkpoint_dir, [digest for digest, _ in plan.items()]
            )
            if self.resume:
                prior = manifest.load_prior()

        for digest, request in plan.items():
            value = self._memo.get(digest)
            if value is not None:
                run_stats.memo_hits += 1
            elif self.cache is not None:
                value = self.cache.get(digest)
                if value is not None:
                    run_stats.cache_hits += 1
                    self._memo[digest] = value
                    if digest in prior and prior[digest].status != "failed":
                        # The prior (killed) run completed this request and
                        # its cache write survived: resume skips it.
                        run_stats.resumed += 1
            if value is None and digest in prior and prior[digest].status == "unavailable":
                # An "unavailable" manifest marker is a complete answer by
                # itself, even without a cache.  An "ok" marker needs the
                # cache to hold the result bytes (it should — both were
                # written in the same completion step — but a pruned cache
                # degrades to re-execution, never to a wrong answer), and
                # "failed" entries always re-execute.
                value = UNAVAILABLE
                run_stats.resumed += 1
                self._memo[digest] = UNAVAILABLE
            if value is None:
                pending.append(request)
            elif value is UNAVAILABLE:
                batch.skipped.add(digest)
                if manifest is not None:
                    manifest.entries[digest] = ManifestEntry("unavailable")
            else:
                batch.results[digest] = value
                if manifest is not None:
                    manifest.entries[digest] = ManifestEntry("ok")

        by_digest = {request.digest: request for request in pending}

        def absorb(executed: Sequence[ExecutedRequest]) -> None:
            """Bank a batch of completed requests the moment it lands.

            Cache writes and the manifest flush happen here — between
            executed batches, not after the whole run — so a ``kill -9``
            at any point leaves every completed request durable.
            """

            records: list[tuple[str, str, Optional[str]]] = []
            for digest, result, failure in executed:
                run_stats.executed += 1
                request = by_digest[digest]
                if result is None:
                    batch.skipped.add(digest)
                    if failure is not None:
                        # A genuine failure: count and label it, but never
                        # tombstone it — a later run should retry, and a
                        # persistent cache must not remember transient errors.
                        run_stats.failed += 1
                        run_stats.failures[failure] = run_stats.failures.get(failure, 0) + 1
                        batch.failures[digest] = failure
                        if DEADLINE_FAILURE_TEXT in failure:
                            run_stats.expired += 1
                        records.append((digest, "failed", failure))
                    else:
                        run_stats.unavailable += 1
                        self._memo[digest] = UNAVAILABLE
                        if self.cache is not None:
                            self.cache.put_unavailable(request)
                        records.append((digest, "unavailable", None))
                else:
                    batch.results[digest] = result
                    self._memo[digest] = result
                    if self.cache is not None:
                        self.cache.put(request, result)
                    records.append((digest, "ok", None))
            if manifest is not None:
                manifest.record_batch(records)

        self.runner.run(
            pending,
            on_executed=absorb,
            deadline=Deadline.after(self.deadline),
        )

        trace_stats = getattr(self.runner, "trace_stats", None)
        if trace_stats is not None:
            run_stats.trace_hits = trace_stats.hits
            run_stats.trace_built = trace_stats.built
            run_stats.trace_stored = trace_stats.stored
        run_stats.batched = getattr(self.runner, "batched", 0)
        resilience = getattr(self.runner, "resilience", None)
        if resilience is not None:
            run_stats.retried = resilience.retried
            run_stats.requeues = resilience.requeues
            run_stats.hung_killed = resilience.hung_killed
        self.stats.merge(run_stats)
        return batch

    def simulate(self, request: SimRequest) -> Optional[SimulationResult]:
        """Run a single request through the full memo/cache/runner path.

        Args:
            request: The simulation point to run.

        Returns:
            Its :class:`~repro.sim.results.SimulationResult`, or ``None``
            when the requested mode is unavailable for the workload.
        """

        return self.run(SimPlan([request])).get(request)
