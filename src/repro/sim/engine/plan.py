"""Deduplicating simulation plans.

A :class:`SimPlan` is an insertion-ordered set of :class:`SimRequest`\\ s
keyed by content digest.  Adding the same point twice — the no-prefetch
baseline every figure needs, say — is free: the plan keeps one canonical
request and counts the duplicate, so the executor performs each unique
``(workload, mode, config)`` simulation exactly once.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .request import SimRequest


class SimPlan:
    """An ordered, digest-deduplicated collection of simulation requests."""

    def __init__(self, requests: Iterable[SimRequest] = ()) -> None:
        self._requests: dict[str, SimRequest] = {}
        self._submitted = 0
        self.add_all(requests)

    def add(self, request: SimRequest) -> SimRequest:
        """Add ``request``; return the canonical (first-added) equivalent."""

        self._submitted += 1
        return self._requests.setdefault(request.digest, request)

    def add_all(self, requests: Iterable[SimRequest]) -> list[SimRequest]:
        return [self.add(request) for request in requests]

    def merge(self, other: "SimPlan") -> "SimPlan":
        """Fold another plan's requests (and its submission count) into this one."""

        for request in other:
            self.add(request)
        # ``add`` counted each unique request once; account for the duplicates
        # the other plan had already absorbed.
        self._submitted += other.submitted - len(other)
        return self

    # ------------------------------------------------------------------ views

    @property
    def submitted(self) -> int:
        """Total requests submitted, including duplicates."""

        return self._submitted

    @property
    def deduplicated(self) -> int:
        """Submissions that were absorbed by an existing identical request."""

        return self._submitted - len(self._requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[SimRequest]:
        return iter(self._requests.values())

    def __contains__(self, request: SimRequest) -> bool:
        return request.digest in self._requests

    def items(self) -> Iterator[tuple[str, SimRequest]]:
        return iter(self._requests.items())

    def workload_groups(self) -> dict[tuple[str, str, int], list[SimRequest]]:
        """Unique requests grouped by :attr:`SimRequest.workload_key`.

        Groups preserve first-seen order.  This is the unit of trace-artifact
        resolution: every request in a group replays traces of the same
        ``(workload, scale, seed)``, so the runners resolve each group's
        artifacts — store lookup, build-and-persist on miss — exactly once.
        """

        groups: dict[tuple[str, str, int], list[SimRequest]] = {}
        for request in self._requests.values():
            groups.setdefault(request.workload_key, []).append(request)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimPlan({len(self)} unique / {self.submitted} submitted)"
