"""Assemble and run one simulation: workload × prefetch mode × system config."""

from __future__ import annotations

from typing import Optional

from ..config import GHBPrefetcherConfig, SystemConfig
from ..cpu.core import OutOfOrderCore
from ..errors import WorkloadError
from ..memory.hierarchy import MemoryHierarchy
from ..prefetch.ghb import GHBPrefetcher
from ..prefetch.stride import StridePrefetcher
from ..programmable.prefetcher import EventTriggeredPrefetcher
from ..programmable.scheduler import SchedulingPolicy
from ..workloads.base import Workload
from .modes import PrefetchMode, mode_available
from .results import SimulationResult


def _programmable_configuration(workload: Workload, mode: PrefetchMode):
    if mode in (PrefetchMode.MANUAL, PrefetchMode.MANUAL_BLOCKED):
        return workload.manual_configuration()
    if mode == PrefetchMode.CONVERTED:
        return workload.converted_configuration()
    if mode == PrefetchMode.PRAGMA:
        return workload.pragma_configuration()
    raise WorkloadError(f"mode {mode} does not use the programmable prefetcher")


def simulate(
    workload: Workload,
    mode: PrefetchMode,
    config: Optional[SystemConfig] = None,
    *,
    policy: Optional[SchedulingPolicy] = None,
) -> SimulationResult:
    """Run ``workload`` under ``mode`` and return the recorded result.

    This is the single-point primitive beneath the batch engine: it builds
    the workload (idempotent), assembles the memory hierarchy, attaches the
    prefetcher the mode calls for, replays the workload's dynamic trace
    through the out-of-order core model and collects every statistic.

    Args:
        workload: A built (or buildable) :class:`~repro.workloads.base.Workload`.
        mode: The prefetching scheme to simulate.
        config: System parameters; defaults to ``SystemConfig.scaled()``.
        policy: PPU scheduling policy override for programmable modes;
            ``None`` uses the prefetcher's built-in lowest-free-ID policy.

    Returns:
        A :class:`~repro.sim.results.SimulationResult` with cycles,
        instructions, per-level hierarchy statistics and (for programmable
        modes) the prefetcher engine statistics.

    Raises:
        repro.errors.WorkloadError: When the mode cannot be built for the
            workload (e.g. software prefetching for PageRank); callers that
            want the Figure 7 behaviour of simply omitting the bar should
            check :func:`~repro.sim.modes.mode_available` first.
    """

    system_config = config if config is not None else SystemConfig.scaled()
    if not mode_available(workload, mode):
        raise WorkloadError(f"{workload.name}: mode {mode.value!r} is not available")

    workload.build()
    hierarchy = MemoryHierarchy(system_config, workload.space)

    engine: Optional[EventTriggeredPrefetcher] = None

    if mode == PrefetchMode.STRIDE:
        StridePrefetcher(system_config.stride).attach(hierarchy)
    elif mode == PrefetchMode.GHB_REGULAR:
        GHBPrefetcher(GHBPrefetcherConfig.regular(), label="ghb-regular").attach(hierarchy)
    elif mode == PrefetchMode.GHB_LARGE:
        GHBPrefetcher(GHBPrefetcherConfig.large(), label="ghb-large").attach(hierarchy)
    elif mode == PrefetchMode.SOFTWARE:
        pass  # the prefetches live in the trace variant selected below
    elif mode.uses_programmable_prefetcher:
        if mode == PrefetchMode.MANUAL_BLOCKED:
            system_config = system_config.with_prefetcher(blocking_mode=True)
        configuration = _programmable_configuration(workload, mode)
        engine = EventTriggeredPrefetcher(system_config, configuration, policy=policy)
        engine.attach(hierarchy)

    trace = workload.trace(mode.trace_variant)
    core = OutOfOrderCore(system_config.core, hierarchy)
    core_stats = core.run(trace)

    if engine is not None:
        engine.finalize(core_stats.cycles)
    hierarchy.finalize()

    return SimulationResult(
        workload=workload.name,
        mode=mode.value,
        cycles=core_stats.cycles,
        instructions=core_stats.instructions,
        core=core_stats.as_dict(),
        hierarchy=hierarchy.collect_stats(),
        prefetcher=engine.collect_stats() if engine is not None else None,
    )
