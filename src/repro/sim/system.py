"""Assemble and run one simulation: workload × prefetch mode × system config."""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import GHBPrefetcherConfig, SystemConfig
from ..cpu.core import OutOfOrderCore
from ..errors import VectorBackendUnsupported, WorkloadError
from ..memory.hierarchy import MemoryHierarchy
from ..prefetch.ghb import GHBPrefetcher
from ..prefetch.stride import StridePrefetcher
from ..programmable.prefetcher import EventTriggeredPrefetcher
from ..programmable.scheduler import SchedulingPolicy
from ..workloads.base import Workload
from .modes import PrefetchMode, mode_available
from .results import SimulationResult
from .vector import replay_trace, replay_trace_batch, vector_backend_enabled


def _programmable_configuration(
    workload: Workload, mode: PrefetchMode, kernel_source: Optional[str] = None
):
    if mode in (PrefetchMode.MANUAL, PrefetchMode.MANUAL_BLOCKED):
        resolved = workload.resolve_kernel_source(kernel_source)
        return workload.manual_configuration_for(resolved)
    if mode == PrefetchMode.CONVERTED:
        return workload.converted_configuration()
    if mode == PrefetchMode.PRAGMA:
        return workload.pragma_configuration()
    raise WorkloadError(f"mode {mode} does not use the programmable prefetcher")


def simulate(
    workload: Workload,
    mode: PrefetchMode,
    config: Optional[SystemConfig] = None,
    *,
    policy: Optional[SchedulingPolicy] = None,
    kernel_source: Optional[str] = None,
) -> SimulationResult:
    """Run ``workload`` under ``mode`` and return the recorded result.

    This is the single-point primitive beneath the batch engine: it builds
    the workload (idempotent), assembles the memory hierarchy, attaches the
    prefetcher the mode calls for, replays the workload's dynamic trace
    through the out-of-order core model and collects every statistic.

    Args:
        workload: A built (or buildable) :class:`~repro.workloads.base.Workload`.
        mode: The prefetching scheme to simulate.
        config: System parameters; defaults to ``SystemConfig.scaled()``.
        policy: PPU scheduling policy override for programmable modes;
            ``None`` uses the prefetcher's built-in lowest-free-ID policy.
        kernel_source: Where the manual-mode kernels come from: ``"hand"``
            (hand-written) or ``"compiled"`` (derived from the loop IR by
            the compiler pipeline).  ``None`` resolves through
            ``REPRO_KERNEL_SOURCE`` and the workload's default.  Only
            meaningful for the ``manual``/``manual-blocked`` modes.

    Returns:
        A :class:`~repro.sim.results.SimulationResult` with cycles,
        instructions, per-level hierarchy statistics and (for programmable
        modes) the prefetcher engine statistics.

    Raises:
        repro.errors.WorkloadError: When the mode cannot be built for the
            workload (e.g. software prefetching for PageRank), or when an
            explicit ``kernel_source="compiled"`` is requested for a
            workload whose kernels cannot be derived; callers that want the
            Figure 7 behaviour of simply omitting the bar should check
            :func:`~repro.sim.modes.mode_available` first.
    """

    system_config = config if config is not None else SystemConfig.scaled()
    if not mode_available(workload, mode):
        raise WorkloadError(f"{workload.name}: mode {mode.value!r} is not available")

    workload.build()
    hierarchy, engine, system_config = _assemble_hierarchy(
        workload, mode, system_config, policy, kernel_source=kernel_source
    )

    trace = workload.trace(mode.trace_variant)
    core_stats = None
    if engine is None and vector_backend_enabled():
        # Non-programmable modes replay through the vectorized backend when
        # it supports the configuration; results are bit-identical either
        # way (the golden suite pins this), only wall-clock time differs.
        try:
            core_stats = replay_trace(trace, hierarchy, system_config.core)
        except VectorBackendUnsupported:
            core_stats = None
    if core_stats is None:
        core_stats = OutOfOrderCore(system_config.core, hierarchy).run(trace)

    if engine is not None:
        engine.finalize(core_stats.cycles)
    hierarchy.finalize()

    return SimulationResult(
        workload=workload.name,
        mode=mode.value,
        cycles=core_stats.cycles,
        instructions=core_stats.instructions,
        core=core_stats.as_dict(),
        hierarchy=hierarchy.collect_stats(),
        prefetcher=engine.collect_stats() if engine is not None else None,
    )


def _assemble_hierarchy(
    workload: Workload,
    mode: PrefetchMode,
    system_config: SystemConfig,
    policy: Optional[SchedulingPolicy],
    kernel_source: Optional[str] = None,
) -> tuple[MemoryHierarchy, Optional[EventTriggeredPrefetcher], SystemConfig]:
    """Build a hierarchy with the prefetcher ``mode`` calls for attached.

    Returns the (possibly adjusted, for the blocking ablation) system config
    alongside, since the programmable engine reads it.
    """

    hierarchy = MemoryHierarchy(system_config, workload.space)
    engine: Optional[EventTriggeredPrefetcher] = None

    if mode == PrefetchMode.STRIDE:
        StridePrefetcher(system_config.stride).attach(hierarchy)
    elif mode == PrefetchMode.GHB_REGULAR:
        GHBPrefetcher(GHBPrefetcherConfig.regular(), label="ghb-regular").attach(hierarchy)
    elif mode == PrefetchMode.GHB_LARGE:
        GHBPrefetcher(GHBPrefetcherConfig.large(), label="ghb-large").attach(hierarchy)
    elif mode == PrefetchMode.SOFTWARE:
        pass  # the prefetches live in the trace variant selected by the caller
    elif mode.uses_programmable_prefetcher:
        if mode == PrefetchMode.MANUAL_BLOCKED:
            system_config = system_config.with_prefetcher(blocking_mode=True)
        configuration = _programmable_configuration(workload, mode, kernel_source)
        engine = EventTriggeredPrefetcher(system_config, configuration, policy=policy)
        engine.attach(hierarchy)
    return hierarchy, engine, system_config


def simulate_batch(
    workload: Workload,
    mode: PrefetchMode,
    configs: Sequence[SystemConfig],
    *,
    policy: Optional[SchedulingPolicy] = None,
) -> list[SimulationResult]:
    """Simulate N system configurations over one pass of the same trace.

    The multi-config analogue of :func:`simulate`, built for geometry sweeps:
    when the vector backend can drive the request, every configuration
    becomes one replay lane and the trace columns are decoded and chunked
    exactly once (see :func:`repro.sim.vector.replay_trace_batch`), so a
    Figure 9-style cache sweep costs one column pass instead of N replays.
    Each lane gets its own hierarchy and its own hardware-prefetcher
    instance, so results are identical to N independent :func:`simulate`
    calls — which is also the automatic fallback whenever batching is not
    applicable (programmable modes, interpreter backend, differing core
    configurations, unsupported geometry).
    """

    configs = list(configs)
    if not configs:
        return []
    if not mode_available(workload, mode):
        raise WorkloadError(f"{workload.name}: mode {mode.value!r} is not available")

    results = try_simulate_batch_vector(workload, mode, configs, policy=policy)
    if results is not None:
        return results
    return [simulate(workload, mode, cfg, policy=policy) for cfg in configs]


def try_simulate_batch_vector(
    workload: Workload,
    mode: PrefetchMode,
    configs: Sequence[SystemConfig],
    *,
    policy: Optional[SchedulingPolicy] = None,
) -> Optional[list[SimulationResult]]:
    """The vector-batched path of :func:`simulate_batch`, or ``None``.

    Returns ``None`` whenever batching does not apply — fewer than two
    configurations, a programmable mode, the interpreter backend selected,
    differing core configurations, an unavailable mode, or a trace/geometry
    the replay backend rejects — so callers (``simulate_batch``, the engine
    runners) can fall back to per-configuration simulation and, unlike with
    an internal fallback, *know* whether the batch happened.
    """

    configs = list(configs)
    if (
        len(configs) < 2
        or mode.uses_programmable_prefetcher
        or not vector_backend_enabled()
        or not all(cfg.core == configs[0].core for cfg in configs)
        or not mode_available(workload, mode)
    ):
        return None
    workload.build()
    assembled = [_assemble_hierarchy(workload, mode, cfg, policy) for cfg in configs]
    hierarchies = [hierarchy for hierarchy, _engine, _cfg in assembled]
    trace = workload.trace(mode.trace_variant)
    try:
        stats_list = replay_trace_batch(trace, hierarchies, configs[0].core)
    except VectorBackendUnsupported:
        return None  # pre-state-mutation check failed; caller runs serially
    results = []
    for cfg, hierarchy, core_stats in zip(configs, hierarchies, stats_list):
        hierarchy.finalize()
        results.append(
            SimulationResult(
                workload=workload.name,
                mode=mode.value,
                cycles=core_stats.cycles,
                instructions=core_stats.instructions,
                core=core_stats.as_dict(),
                hierarchy=hierarchy.collect_stats(),
                prefetcher=None,
            )
        )
    return results
