"""Parameter sweeps over the programmable prefetcher (Figure 9)."""

from __future__ import annotations

from typing import Iterable, Optional

from ..config import SystemConfig
from ..workloads.base import Workload
from .modes import PrefetchMode
from .results import SimulationResult
from .system import simulate

#: PPU clock frequencies (GHz) swept in Figure 9(a).
FIGURE9A_FREQUENCIES = [0.25, 0.5, 1.0, 2.0]

#: PPU counts and frequencies swept in Figure 9(b).
FIGURE9B_COUNTS = [3, 6, 12]
FIGURE9B_FREQUENCIES = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0]


def ppu_frequency_sweep(
    workload: Workload,
    *,
    frequencies: Optional[Iterable[float]] = None,
    config: Optional[SystemConfig] = None,
    baseline: Optional[SimulationResult] = None,
) -> dict[float, float]:
    """Speedup of manual programmable prefetching at each PPU clock."""

    system_config = config if config is not None else SystemConfig.scaled()
    reference = baseline if baseline is not None else simulate(
        workload, PrefetchMode.NONE, system_config
    )
    sweep: dict[float, float] = {}
    for frequency in frequencies if frequencies is not None else FIGURE9A_FREQUENCIES:
        tuned = system_config.with_prefetcher(ppu_frequency_ghz=frequency)
        result = simulate(workload, PrefetchMode.MANUAL, tuned)
        sweep[frequency] = result.speedup_over(reference)
    return sweep


def ppu_count_frequency_sweep(
    workload: Workload,
    *,
    counts: Optional[Iterable[int]] = None,
    frequencies: Optional[Iterable[float]] = None,
    config: Optional[SystemConfig] = None,
) -> dict[tuple[int, float], float]:
    """Speedup for every (PPU count, PPU clock) pair — Figure 9(b)."""

    system_config = config if config is not None else SystemConfig.scaled()
    reference = simulate(workload, PrefetchMode.NONE, system_config)
    sweep: dict[tuple[int, float], float] = {}
    for count in counts if counts is not None else FIGURE9B_COUNTS:
        for frequency in frequencies if frequencies is not None else FIGURE9B_FREQUENCIES:
            tuned = system_config.with_prefetcher(
                num_ppus=count, ppu_frequency_ghz=frequency
            )
            result = simulate(workload, PrefetchMode.MANUAL, tuned)
            sweep[(count, frequency)] = result.speedup_over(reference)
    return sweep
