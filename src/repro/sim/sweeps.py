"""Parameter sweeps over the programmable prefetcher (Figure 9).

Both sweeps are plan-builders over the batch engine: every swept point and
the shared no-prefetch reference become declarative requests, so an engine
shared across calls (or across figures) deduplicates the baseline instead of
re-simulating it, and a parallel runner spreads the points across cores.
Either a workload *name* or a pre-built :class:`Workload` object may be
passed; a pre-built object's traces are reused by the serial executor.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..config import SystemConfig
from ..workloads.base import Workload
from .engine import SimEngine, SimPlan, SimRequest, SerialRunner
from .modes import PrefetchMode
from .results import SimulationResult

#: PPU clock frequencies (GHz) swept in Figure 9(a).
FIGURE9A_FREQUENCIES = [0.25, 0.5, 1.0, 2.0]

#: PPU counts and frequencies swept in Figure 9(b).
FIGURE9B_COUNTS = [3, 6, 12]
FIGURE9B_FREQUENCIES = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0]


def _workload_spec(
    workload: Union[Workload, str], scale: str, seed: int
) -> tuple[str, str, int, Optional[dict[str, Workload]]]:
    """Resolve a name-or-object workload argument to (name, scale, seed, prebuilt)."""

    if isinstance(workload, Workload):
        return workload.name, workload.scale.name, workload.seed, {workload.name: workload}
    return workload, scale, seed, None


def baseline_request(
    name: str, config: SystemConfig, *, scale: str = "default", seed: int = 42
) -> SimRequest:
    """The shared no-prefetching reference point for a sweep."""

    return SimRequest(
        workload=name, mode=PrefetchMode.NONE.value, scale=scale, seed=seed, config=config
    )


def frequency_sweep_requests(
    name: str,
    frequencies: Iterable[float],
    config: SystemConfig,
    *,
    scale: str = "default",
    seed: int = 42,
) -> dict[float, SimRequest]:
    """One manual-mode request per swept PPU clock frequency."""

    return {
        frequency: SimRequest(
            workload=name,
            mode=PrefetchMode.MANUAL.value,
            scale=scale,
            seed=seed,
            config=config.with_prefetcher(ppu_frequency_ghz=frequency),
        )
        for frequency in frequencies
    }


def count_frequency_sweep_requests(
    name: str,
    counts: Iterable[int],
    frequencies: Iterable[float],
    config: SystemConfig,
    *,
    scale: str = "default",
    seed: int = 42,
) -> dict[tuple[int, float], SimRequest]:
    """One manual-mode request per (PPU count, PPU clock) pair."""

    return {
        (count, frequency): SimRequest(
            workload=name,
            mode=PrefetchMode.MANUAL.value,
            scale=scale,
            seed=seed,
            config=config.with_prefetcher(num_ppus=count, ppu_frequency_ghz=frequency),
        )
        for count in counts
        for frequency in frequencies
    }


def _run_sweep(
    requests: dict,
    reference: Optional[SimulationResult],
    baseline_req: SimRequest,
    engine: Optional[SimEngine],
    prebuilt: Optional[dict[str, Workload]],
) -> dict:
    """Execute a sweep plan and convert results into speedups over baseline."""

    if engine is None:
        engine = SimEngine(runner=SerialRunner(workloads=prebuilt))
    plan = SimPlan()
    if reference is None:
        plan.add(baseline_req)
    plan.add_all(requests.values())
    batch = engine.run(plan)

    if reference is None:
        reference = batch[baseline_req]
    sweep = {}
    for key, request in requests.items():
        result = batch.get(request)
        if result is not None:
            sweep[key] = result.speedup_over(reference)
    return sweep


def ppu_frequency_sweep(
    workload: Union[Workload, str],
    *,
    frequencies: Optional[Iterable[float]] = None,
    config: Optional[SystemConfig] = None,
    baseline: Optional[SimulationResult] = None,
    engine: Optional[SimEngine] = None,
    scale: str = "default",
    seed: int = 42,
) -> dict[float, float]:
    """Speedup of manual programmable prefetching at each PPU clock."""

    name, scale, seed, prebuilt = _workload_spec(workload, scale, seed)
    system_config = config if config is not None else SystemConfig.scaled()
    frequency_list = list(frequencies) if frequencies is not None else list(FIGURE9A_FREQUENCIES)
    requests = frequency_sweep_requests(
        name, frequency_list, system_config, scale=scale, seed=seed
    )
    reference_req = baseline_request(name, system_config, scale=scale, seed=seed)
    return _run_sweep(requests, baseline, reference_req, engine, prebuilt)


#: L1 sizes (bytes) swept by the default cache-geometry sweep: the scaled
#: preset's 16 KB plus one step down and one step up, the Figure 9-style
#: "how much hardware does the result need" axis applied to the cache.
GEOMETRY_SWEEP_L1_SIZES = [8 * 1024, 16 * 1024, 32 * 1024]


def cache_geometry_sweep(
    workload: Union[Workload, str],
    *,
    l1_sizes: Optional[Iterable[int]] = None,
    mode: PrefetchMode = PrefetchMode.NONE,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
) -> dict[int, SimulationResult]:
    """Simulate one workload across N L1 capacities in a single trace pass.

    Unlike the PPU sweeps above — programmable-mode plans that go through
    the batch engine — this sweep varies only cache geometry under a
    non-programmable mode, which is exactly the shape the vector backend's
    multi-config batching consumes: all N configurations are built with
    :meth:`~repro.config.SystemConfig.with_caches` and handed to
    :func:`~repro.sim.system.simulate_batch`, so the trace columns are
    decoded once and every geometry becomes a replay lane.  With the
    interpreter backend the call transparently degrades to N serial runs
    with identical results.
    """

    from .system import simulate_batch  # local: system imports modes/results too

    if isinstance(workload, Workload):
        built = workload
    else:
        from ..workloads import registry

        built = registry.build(workload, scale=scale, seed=seed)
    system_config = config if config is not None else SystemConfig.scaled()
    sizes = list(l1_sizes) if l1_sizes is not None else list(GEOMETRY_SWEEP_L1_SIZES)
    configs = [system_config.with_caches(l1={"size_bytes": size}) for size in sizes]
    results = simulate_batch(built, mode, configs)
    return dict(zip(sizes, results))


def ppu_count_frequency_sweep(
    workload: Union[Workload, str],
    *,
    counts: Optional[Iterable[int]] = None,
    frequencies: Optional[Iterable[float]] = None,
    config: Optional[SystemConfig] = None,
    baseline: Optional[SimulationResult] = None,
    engine: Optional[SimEngine] = None,
    scale: str = "default",
    seed: int = 42,
) -> dict[tuple[int, float], float]:
    """Speedup for every (PPU count, PPU clock) pair — Figure 9(b).

    Accepts the same ``baseline`` short-circuit as :func:`ppu_frequency_sweep`
    (the historical API asymmetry is gone); without one, the reference is a
    deduplicated engine request, simulated at most once per engine.
    """

    name, scale, seed, prebuilt = _workload_spec(workload, scale, seed)
    system_config = config if config is not None else SystemConfig.scaled()
    count_list = list(counts) if counts is not None else list(FIGURE9B_COUNTS)
    frequency_list = list(frequencies) if frequencies is not None else list(FIGURE9B_FREQUENCIES)
    requests = count_frequency_sweep_requests(
        name, count_list, frequency_list, system_config, scale=scale, seed=seed
    )
    reference_req = baseline_request(name, system_config, scale=scale, seed=seed)
    return _run_sweep(requests, baseline, reference_req, engine, prebuilt)
