"""SpMV — CSR sparse matrix–vector multiply (off-paper).

``y[r] = Σ_j val[j] * x[col[j]]`` over a CSR matrix whose sparsity pattern
comes from the R-MAT generator: the row-offset, column-index and value
arrays stream sequentially while the source vector ``x`` is gathered through
the column indices — the classic *stride-indirect* pattern of NAS CG
(Table 2) applied to a power-law matrix, so the gathers are cache-hostile.

Software prefetching works (the column index is a plain array read), and
the manual PPU programming is a single stride-indirect event chain
``col_idx → x``, which makes this the smallest possible worked example of
adding a workload through the registry (docs/workloads.md walks through it).

This workload is not part of the paper's Table 2.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..compiler.frontend import compute, parse_loop, prefetch
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from .base import Workload
from .data.rmat import generate_rmat_csr
from .kernels import add_stride_indirect_chain, identity_transform
from .registry import register_workload

SOFTWARE_PREFETCH_DISTANCE = 16


@register_workload()
class SpMVWorkload(Workload):
    """One CSR sparse matrix–vector product over an R-MAT sparsity pattern."""

    name = "spmv"
    pattern = "Stride-indirect gather"
    paper_input = "— (off-paper workload)"
    repro_input = "R-MAT scale 13, edge factor 4, ~20k-nonzero sweep (scaled)"
    derives_manual = True

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        self.matrix_scale = 13 if self.scale.factor >= 1.0 else (11 if self.scale.factor >= 0.3 else 9)
        self.edge_factor = 4
        self.nnz_budget = self.scale.scaled(20000, minimum=512)

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        matrix = generate_rmat_csr(
            self.matrix_scale, self.edge_factor, seed=self.seed, undirected=False
        )
        rows = matrix.num_vertices
        rng = np.random.default_rng(self.seed)

        self.row_offsets = self.space.allocate_array(
            "spmv_row_offsets", rows + 1, values=matrix.row_offsets
        )
        self.col_idx = self.space.allocate_array(
            "spmv_col_idx", max(1, matrix.num_edges), values=matrix.columns
        )
        self.vals = self.space.allocate_array(
            "spmv_vals",
            max(1, matrix.num_edges),
            values=rng.integers(1, 1 << 20, size=max(1, matrix.num_edges), dtype=np.int64),
        )
        self.x = self.space.allocate_array(
            "spmv_x", rows, values=rng.integers(1, 1 << 20, size=rows, dtype=np.int64)
        )
        self.y = self.space.allocate_array(
            "spmv_y", rows, values=np.zeros(rows, dtype=np.int64)
        )
        self._matrix = matrix

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        matrix = self._matrix
        dist = SOFTWARE_PREFETCH_DISTANCE
        nnz_done = 0
        for row in range(matrix.num_vertices):
            if nnz_done >= self.nnz_budget:
                break
            start = int(matrix.row_offsets[row])
            end = int(matrix.row_offsets[row + 1])
            if start == end:
                continue
            row_load = tb.load(self.row_offsets.addr_of(row))
            tb.load(self.row_offsets.addr_of(row + 1))
            accumulate = row_load
            for j in range(start, end):
                col = int(matrix.columns[j])
                if software_prefetch and j + dist < len(self.col_idx):
                    future_col = tb.load(self.col_idx.addr_of(j + dist))
                    tb.software_prefetch(
                        self.x.addr_of(int(matrix.columns[j + dist])),
                        deps=[future_col],
                    )
                col_load = tb.load(self.col_idx.addr_of(j), deps=[row_load])
                val_load = tb.load(self.vals.addr_of(j), deps=[row_load])
                x_load = tb.load(self.x.addr_of(col), deps=[col_load])
                accumulate = tb.compute(2, deps=[val_load, x_load, accumulate])
                nnz_done += 1
            tb.store(self.y.addr_of(row), deps=[accumulate])
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        add_stride_indirect_chain(
            config,
            prefix="spmv",
            root_name="col_idx",
            root_base=self.col_idx.base_addr,
            root_end=self.col_idx.end_addr,
            target_name="x",
            target_base=self.x.base_addr,
            target_end=self.x.end_addr,
            transform=identity_transform,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        # Written as a plain traversal function and parsed into the loop IR
        # (docs/workloads.md walks through exactly this code); the stream and
        # distance hints make the derived kernels match the hand-written
        # configuration.
        def traversal(j, col_idx, vals, x):
            prefetch(
                x[col_idx[j + SOFTWARE_PREFETCH_DISTANCE]],
                stream="spmv_col_idx",
                distance=8,
                name="swpf_x",
            )
            gather = x[col_idx[j]]
            value = vals[j]
            compute(2, gather, value)

        loop = parse_loop(
            traversal,
            name="spmv",
            arrays=[
                ir.ArrayDecl("col_idx", "col_base", length_param="num_nonzeros"),
                ir.ArrayDecl("vals", "vals_base", length_param="num_nonzeros"),
                ir.ArrayDecl("x", "x_base", length_param="num_rows"),
            ],
            trip_count_param="num_nonzeros",
            pragma_prefetch=True,
            constants={"SOFTWARE_PREFETCH_DISTANCE": SOFTWARE_PREFETCH_DISTANCE},
        )
        bindings = {
            "col_base": self.col_idx.base_addr,
            "vals_base": self.vals.base_addr,
            "x_base": self.x.base_addr,
            "num_nonzeros": len(self.col_idx),
            "num_rows": self._matrix.num_vertices,
        }
        return loop, bindings
