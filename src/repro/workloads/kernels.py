"""Shared helpers for building manual PPU kernel configurations.

Most of the non-graph benchmarks follow the same two-event shape the paper's
Figure 4 illustrates: a strided *root* array whose demand loads trigger a
look-ahead prefetch of the root itself, and an *indirect target* array whose
element index is computed from the root value (possibly hashed or masked).
:func:`add_stride_indirect_chain` builds that pair of kernels, the tags, the
EWMA stream and the filter-table entries; workloads with extra levels (hash
joins with list walks, BFS) write their kernels by hand on top.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder, Reg

#: A transform takes the kernel builder, the register holding the root value
#: and the configuration, and returns the register (or immediate) holding the
#: target element index.
IndexTransform = Callable[[KernelBuilder, Reg, PrefetcherConfiguration], Union[Reg, int]]


def identity_transform(builder: KernelBuilder, data: Reg, config: PrefetcherConfiguration) -> Reg:
    """Target index is the root value itself (``count[key[i]]`` style)."""

    del config
    return data


def masked_transform(mask_global: str) -> IndexTransform:
    """Target index is ``root_value & mask`` (RandomAccess style)."""

    def transform(builder: KernelBuilder, data: Reg, config: PrefetcherConfiguration) -> Reg:
        return builder.and_(data, builder.get_global(config.global_index(mask_global)))

    return transform


def hash_transform(multiplier_global: str, mask_global: str) -> IndexTransform:
    """Target index is ``(root_value * multiplier) & mask`` (hash-join style)."""

    def transform(builder: KernelBuilder, data: Reg, config: PrefetcherConfiguration) -> Reg:
        product = builder.mul(
            data, builder.get_global(config.global_index(multiplier_global))
        )
        return builder.and_(product, builder.get_global(config.global_index(mask_global)))

    return transform


def add_stride_indirect_chain(
    config: PrefetcherConfiguration,
    *,
    prefix: str,
    root_name: str,
    root_base: int,
    root_end: int,
    target_name: str,
    target_base: int,
    target_end: Optional[int] = None,
    root_element_shift: int = 3,
    target_element_shift: int = 3,
    transform: IndexTransform = identity_transform,
    extra_targets: Optional[list[tuple[str, int, int, IndexTransform]]] = None,
    default_distance: int = 8,
    follow_on_tag: Optional[int] = None,
) -> str:
    """Register a two-event stride-indirect prefetch chain; returns the stream name.

    ``extra_targets`` lets one root fill fan out to several indirect arrays
    (PageRank prefetches both ``rank[src]`` and ``outdeg[src]`` from the same
    observation).  Each entry is ``(name, base, element_shift, transform)``.
    ``follow_on_tag`` tags the *target* prefetch so a further, workload-specific
    kernel runs when it returns (used by the hash-join list walks).
    """

    stream = f"{prefix}_{root_name}"
    config.add_stream(stream, default_distance=default_distance)
    root_base_global = config.set_global(f"{prefix}_{root_name}_base", root_base)
    target_base_global = config.set_global(f"{prefix}_{target_name}_base", target_base)
    extra_globals: list[tuple[int, int, IndexTransform]] = []
    for name, base, shift, extra_transform in extra_targets or []:
        extra_globals.append(
            (config.set_global(f"{prefix}_{name}_base", base), shift, extra_transform)
        )

    fill_kernel = f"{prefix}_on_{root_name}_fill"
    load_kernel = f"{prefix}_on_{root_name}_load"

    # Kernel run when the look-ahead prefetch of the root array returns: use
    # the fetched value to prefetch the indirect target(s).
    builder = KernelBuilder(fill_kernel)
    data = builder.get_data()
    index = transform(builder, data, config)
    address = builder.add(
        builder.get_global(target_base_global), builder.shl(index, target_element_shift)
    )
    builder.prefetch(address, tag=-1 if follow_on_tag is None else follow_on_tag)
    for base_global, shift, extra_transform in extra_globals:
        extra_index = extra_transform(builder, data, config)
        extra_address = builder.add(
            builder.get_global(base_global), builder.shl(extra_index, shift)
        )
        builder.prefetch(extra_address, tag=-1)
    config.add_kernel(builder.build())

    root_tag = config.add_tag(f"{prefix}_{root_name}_fill", fill_kernel, stream=stream)

    # Kernel run on every demand load of the root array: recover the index
    # from the address and prefetch the element ``lookahead`` ahead.
    builder = KernelBuilder(load_kernel)
    base = builder.get_global(root_base_global)
    vaddr = builder.get_vaddr()
    element = builder.shr(builder.sub(vaddr, base), root_element_shift)
    lookahead = builder.get_lookahead(config.stream_index(stream))
    target = builder.add(
        base, builder.shl(builder.add(element, lookahead), root_element_shift)
    )
    builder.prefetch(target, tag=root_tag)
    config.add_kernel(builder.build())

    config.add_range(
        f"{prefix}_{root_name}",
        root_base,
        root_end,
        load_kernel=load_kernel,
        stream=stream,
        time_iterations=True,
        chain_start=True,
    )
    if target_end is not None:
        config.add_range(
            f"{prefix}_{target_name}_end",
            target_base,
            target_end,
            stream=stream,
            chain_end=True,
        )
    return stream
