"""IntSort — the NAS IS integer (counting) sort kernel.

The memory-bound phase of NAS IS histograms a large array of random keys:
``count[key[i]] += 1``.  The key array is read with a perfect stride; the
histogram is indexed by the key value, giving the classic *stride-indirect*
pattern of Table 2.  The paper runs class B (2^25 keys); this reproduction
scales the key count and key space down so that the histogram still dwarfs
the scaled L2 cache.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from .base import Workload
from .registry import register_workload
from .data.distributions import random_keys
from .kernels import add_stride_indirect_chain, identity_transform

#: Software prefetch look-ahead distance (loop iterations), as a programmer
#: would choose for this kernel.
SOFTWARE_PREFETCH_DISTANCE = 32


@register_workload(paper_reference=True)
class IntSortWorkload(Workload):
    """NAS IS counting-sort histogram phase."""

    name = "intsort"
    pattern = "Stride-indirect"
    paper_input = "NAS class B"
    repro_input = "24,576 keys over a 32,768-bucket histogram (scaled)"
    derive_note = (
        "The legacy loop IR carries no stream/distance hints, so the derived "
        "chain uses the raw software-prefetch distance (32) instead of the "
        "tuned look-ahead of 8; pending a frontend migration the hand "
        "configuration stays authoritative."
    )

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        self.num_keys = self.scale.scaled(24576, minimum=512)
        self.key_space = self.scale.scaled(32768, minimum=1024)

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        keys = random_keys(self.num_keys, self.key_space, seed=self.seed)
        self.keys = self.space.allocate_array("keys", self.num_keys, values=keys)
        self.counts = self.space.allocate_array(
            "counts", self.key_space, values=np.zeros(self.key_space, dtype=np.int64)
        )
        self._key_values = keys

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        keys = self._key_values
        dist = SOFTWARE_PREFETCH_DISTANCE
        for i in range(self.num_keys):
            if software_prefetch and i + dist < self.num_keys:
                future_key = tb.load(self.keys.addr_of(i + dist))
                tb.software_prefetch(
                    self.counts.addr_of(int(keys[i + dist])), deps=[future_key]
                )
            key_load = tb.load(self.keys.addr_of(i))
            index_compute = tb.compute(3, deps=[key_load])
            count_load = tb.load(self.counts.addr_of(int(keys[i])), deps=[index_compute])
            increment = tb.compute(3, deps=[count_load])
            tb.store(self.counts.addr_of(int(keys[i])), deps=[increment])
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        add_stride_indirect_chain(
            config,
            prefix="is",
            root_name="keys",
            root_base=self.keys.base_addr,
            root_end=self.keys.end_addr,
            target_name="counts",
            target_base=self.counts.base_addr,
            target_end=self.counts.end_addr,
            transform=identity_transform,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        keys_decl = ir.ArrayDecl("keys", "keys_base", length_param="num_keys")
        counts_decl = ir.ArrayDecl("counts", "counts_base", length_param="key_space")
        loop = ir.Loop(
            "intsort",
            ir.IndexVar("i"),
            trip_count_param="num_keys",
            arrays=[keys_decl, counts_decl],
            pragma_prefetch=True,
        )
        i = loop.indvar
        loop.add(
            ir.SoftwarePrefetchStmt(
                counts_decl,
                ir.Load(keys_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE)),
                name="swpf_counts",
            )
        )
        current_key = ir.Load(keys_decl, i)
        count_value = ir.Load(counts_decl, current_key)
        loop.add(ir.LoadStmt(count_value))
        loop.add(ir.StoreStmt(counts_decl, current_key, ir.add(count_value, 1)))
        bindings = {
            "keys_base": self.keys.base_addr,
            "counts_base": self.counts.base_addr,
            "num_keys": self.num_keys,
            "key_space": self.key_space,
        }
        return loop, bindings
