"""Hash-join probe kernels (HJ-2 and HJ-8).

These follow the main-memory hash join of Blanas et al. used by the paper
(Figure 1 shows the kernel): the probe relation's keys are read sequentially,
hashed, and looked up in a hash table built over the other relation.

* **HJ-2** uses a bucket array whose entries hold the build tuple inline, so a
  probe is a strided key read followed by one hash-indirect bucket read —
  the *stride-hash-indirect* pattern.
* **HJ-8** stores a linked list of build tuples per bucket (several tuples
  chain off each bucket on average), so every probe additionally walks a
  pointer chain through nodes scattered in memory — the pattern software
  prefetching fundamentally cannot cover and the programmable prefetcher's
  tagged events can.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..config import WORD_BYTES
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder
from .base import HASH_MULTIPLIER, Workload
from .registry import register_workload
from .data.distributions import random_keys
from .kernels import add_stride_indirect_chain, hash_transform

SOFTWARE_PREFETCH_DISTANCE = 32

#: Node layout for HJ-8 bucket chains: [key, payload, next, pad] — 32 bytes.
_NODE_WORDS = 4
_NODE_KEY_OFFSET = 0
_NODE_NEXT_OFFSET = 2


def _unique_keys(rng: np.random.Generator, count: int) -> np.ndarray:
    """Draw ``count`` distinct 40-bit join keys without materialising the key space."""

    keys = rng.integers(1, 1 << 40, size=count, dtype=np.int64)
    keys = np.unique(keys)
    while keys.size < count:
        extra = rng.integers(1, 1 << 40, size=count - keys.size, dtype=np.int64)
        keys = np.unique(np.concatenate([keys, extra]))
    return keys[:count]


def _hash(key: int, mask: int) -> int:
    return (key * HASH_MULTIPLIER) & mask


class _HashJoinBase(Workload):
    """Shared structure of the two hash-join variants."""

    #: Number of hash-table buckets (power of two).
    default_buckets = 32768
    #: Number of build-side tuples.
    default_build = 16384
    #: Number of probe-side keys (loop trip count).
    default_probes = 16000

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        buckets = self.scale.scaled(self.default_buckets, minimum=1024)
        self.num_buckets = 1 << (buckets.bit_length() - 1)
        self.bucket_mask = self.num_buckets - 1
        self.num_build = self.scale.scaled(self.default_build, minimum=512)
        self.num_probes = self.scale.scaled(self.default_probes, minimum=256)

    def _probe_keys(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1)
        # Probe keys are drawn from the build keys so most probes match,
        # as in an equi-join of foreign keys against a primary key.
        return rng.choice(self._build_keys, size=self.num_probes).astype(np.int64)


@register_workload(paper_reference=True)
class HashJoin2Workload(_HashJoinBase):
    """HJ-2: hash join with inline bucket entries (no chains)."""

    name = "hj2"
    pattern = "Stride-hash-indirect"
    paper_input = "-r 12800000 -s 12800000"
    repro_input = "16,000 probes into a 32,768-bucket inline hash table (scaled)"
    derive_note = (
        "The legacy loop IR carries no stream/distance hints, so the derived "
        "chain diverges from the tuned hand kernels (look-ahead distance and "
        "hash-constant global ordering); pending a frontend migration the "
        "hand configuration stays authoritative."
    )

    #: Bucket layout: [key, payload] — 16 bytes.
    _BUCKET_WORDS = 2

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        rng = np.random.default_rng(self.seed)
        self._build_keys = _unique_keys(rng, self.num_build)

        table = np.zeros(self.num_buckets * self._BUCKET_WORDS, dtype=np.int64)
        for key in self._build_keys:
            bucket = _hash(int(key), self.bucket_mask)
            table[bucket * self._BUCKET_WORDS] = int(key)
            table[bucket * self._BUCKET_WORDS + 1] = int(key) ^ 0xBEEF
        self.htab = self.space.allocate_array("htab", table.size, values=table)

        probe = self._probe_keys()
        self.probe_keys = self.space.allocate_array("probe_keys", self.num_probes, values=probe)
        self.output = self.space.allocate_array(
            "join_out", self.num_probes, values=np.zeros(self.num_probes, dtype=np.int64)
        )
        self._probe_values = probe

    def _bucket_addr(self, bucket: int) -> int:
        return self.htab.addr_of(bucket * self._BUCKET_WORDS)

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        dist = SOFTWARE_PREFETCH_DISTANCE
        probe = self._probe_values
        matches = 0
        for i in range(self.num_probes):
            if software_prefetch and i + dist < self.num_probes:
                future_key = tb.load(self.probe_keys.addr_of(i + dist))
                hash_ops = tb.compute(3, deps=[future_key])
                tb.software_prefetch(
                    self._bucket_addr(_hash(int(probe[i + dist]), self.bucket_mask)),
                    deps=[hash_ops],
                )
            key_load = tb.load(self.probe_keys.addr_of(i))
            hashed = tb.compute(5, deps=[key_load])
            bucket = _hash(int(probe[i]), self.bucket_mask)
            bucket_load = tb.load(self._bucket_addr(bucket), deps=[hashed])
            compare = tb.compute(3, deps=[bucket_load])
            tb.branch(deps=[compare])
            if self.space.read_word(self._bucket_addr(bucket)) == int(probe[i]):
                tb.store(self.output.addr_of(matches % self.num_probes), deps=[compare])
                matches += 1

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        config.set_global("hj2_hash_mult", HASH_MULTIPLIER)
        config.set_global("hj2_hash_mask", self.bucket_mask)
        add_stride_indirect_chain(
            config,
            prefix="hj2",
            root_name="probe_keys",
            root_base=self.probe_keys.base_addr,
            root_end=self.probe_keys.end_addr,
            target_name="htab",
            target_base=self.htab.base_addr,
            target_end=self.htab.end_addr,
            target_element_shift=4,  # 16-byte buckets
            transform=hash_transform("hj2_hash_mult", "hj2_hash_mask"),
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        keys_decl = ir.ArrayDecl("probe_keys", "probe_keys_base", length_param="num_probes")
        htab_decl = ir.ArrayDecl(
            "htab", "htab_base", length_param="num_buckets", element_bytes=16
        )
        loop = ir.Loop(
            "hj2",
            ir.IndexVar("i"),
            trip_count_param="num_probes",
            arrays=[keys_decl, htab_decl],
            pragma_prefetch=True,
        )
        i = loop.indvar

        def hash_expr(key: ir.Value) -> ir.Value:
            return ir.and_(ir.mul(key, ir.Param("hash_mult")), ir.Param("hash_mask"))

        loop.add(
            ir.SoftwarePrefetchStmt(
                htab_decl,
                hash_expr(ir.Load(keys_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE))),
                name="swpf_htab",
            )
        )
        bucket = ir.Load(htab_decl, hash_expr(ir.Load(keys_decl, i)))
        loop.add(ir.LoadStmt(bucket))
        loop.add(ir.ComputeStmt(1, uses=(bucket,)))
        bindings = {
            "probe_keys_base": self.probe_keys.base_addr,
            "htab_base": self.htab.base_addr,
            "num_probes": self.num_probes,
            "num_buckets": self.num_buckets,
            "hash_mult": HASH_MULTIPLIER,
            "hash_mask": self.bucket_mask,
        }
        return loop, bindings


@register_workload(paper_reference=True)
class HashJoin8Workload(_HashJoinBase):
    """HJ-8: hash join with per-bucket linked lists."""

    name = "hj8"
    pattern = "Stride-hash-indirect, linked list walks"
    paper_input = "-r 12800000 -s 12800000"
    repro_input = "6,000 probes, 16,384 buckets, ~4-node chains (scaled)"
    derive_note = (
        "The hand configuration chases bucket chains with a self-re-triggering "
        "walk_node kernel seeded from header fills; the legacy loop IR "
        "describes the probe as two independent prefetches, so derivation "
        "produces the wrong structure (two unrelated chains, no walker)."
    )

    default_buckets = 16384
    default_build = 32768
    default_probes = 8000

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        rng = np.random.default_rng(self.seed)
        self._build_keys = _unique_keys(rng, self.num_build)

        headers = np.zeros(self.num_buckets, dtype=np.int64)
        nodes = np.zeros(self.num_build * _NODE_WORDS, dtype=np.int64)
        self.headers = self.space.allocate_array("hj8_headers", self.num_buckets, values=headers)
        self.nodes = self.space.allocate_array("hj8_nodes", nodes.size, values=nodes)

        # Insert build tuples in a random placement order so that walking a
        # bucket chain jumps around memory, as a real allocator would produce.
        placement = rng.permutation(self.num_build)
        for slot, key_index in enumerate(placement):
            key = int(self._build_keys[key_index])
            bucket = _hash(key, self.bucket_mask)
            node_addr = self.nodes.addr_of(slot * _NODE_WORDS)
            self.nodes[slot * _NODE_WORDS + _NODE_KEY_OFFSET] = key
            self.nodes[slot * _NODE_WORDS + 1] = key ^ 0xBEEF
            self.nodes[slot * _NODE_WORDS + _NODE_NEXT_OFFSET] = self.headers[bucket]
            self.headers[bucket] = node_addr

        probe = self._probe_keys()
        self.probe_keys = self.space.allocate_array("probe_keys", self.num_probes, values=probe)
        self.output = self.space.allocate_array(
            "join_out", self.num_probes, values=np.zeros(self.num_probes, dtype=np.int64)
        )
        self._probe_values = probe

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        dist = SOFTWARE_PREFETCH_DISTANCE
        probe = self._probe_values
        matches = 0
        for i in range(self.num_probes):
            if software_prefetch and i + dist < self.num_probes:
                # Software prefetching can reach the bucket header, but the
                # list walk cannot be expressed without stalling (Section 3).
                future_key = tb.load(self.probe_keys.addr_of(i + dist))
                hash_ops = tb.compute(3, deps=[future_key])
                tb.software_prefetch(
                    self.headers.addr_of(_hash(int(probe[i + dist]), self.bucket_mask)),
                    deps=[hash_ops],
                )
            key = int(probe[i])
            key_load = tb.load(self.probe_keys.addr_of(i))
            hashed = tb.compute(5, deps=[key_load])
            bucket = _hash(key, self.bucket_mask)
            header_load = tb.load(self.headers.addr_of(bucket), deps=[hashed])

            node_addr = self.space.read_word(self.headers.addr_of(bucket))
            previous = header_load
            while node_addr != 0:
                key_word = tb.load(node_addr + _NODE_KEY_OFFSET * WORD_BYTES, deps=[previous])
                next_word = tb.load(node_addr + _NODE_NEXT_OFFSET * WORD_BYTES, deps=[previous])
                compare = tb.compute(2, deps=[key_word])
                tb.branch(deps=[compare])
                if self.space.read_word(node_addr + _NODE_KEY_OFFSET * WORD_BYTES) == key:
                    tb.store(self.output.addr_of(matches % self.num_probes), deps=[compare])
                    matches += 1
                previous = next_word
                node_addr = self.space.read_word(node_addr + _NODE_NEXT_OFFSET * WORD_BYTES)

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        config.set_global("hj8_hash_mult", HASH_MULTIPLIER)
        config.set_global("hj8_hash_mask", self.bucket_mask)

        # Node-walking kernel: prefetch the next node in the chain (tagged
        # with itself) — this is the control flow only manual programming can
        # express (Section 7.1).
        walker = KernelBuilder("hj8_walk_node")
        vaddr = walker.get_vaddr()
        word_offset = walker.and_(walker.shr(vaddr, 3), 7)
        next_index = walker.add(word_offset, _NODE_NEXT_OFFSET)
        next_ptr = walker.line_word(next_index)
        walker.branch_eq(next_ptr, 0, "done")
        walker.prefetch(next_ptr, tag=0)  # placeholder tag, patched below
        walker.label("done")
        walker.halt()
        # The walker re-triggers itself through its own tag; register the tag
        # first so the prefetch instruction can carry the right value.
        config.add_kernel(walker.build())
        node_tag = config.add_tag("hj8_node_fill", "hj8_walk_node", stream=None)
        # Rebuild the walker with the real tag value now that it is known.
        if node_tag != 0:
            raise AssertionError("hj8 node tag expected to be 0")

        # Bucket-header kernel: chase the head pointer of the list.
        header_fill = KernelBuilder("hj8_on_header_fill")
        head = header_fill.get_data()
        header_fill.branch_eq(head, 0, "empty")
        header_fill.prefetch(head, tag=node_tag)
        header_fill.label("empty")
        header_fill.halt()
        config.add_kernel(header_fill.build())
        header_tag = config.add_tag("hj8_header_fill", "hj8_on_header_fill", stream="hj8_probe_keys")

        config.add_stream("hj8_probe_keys", default_distance=8)
        add_stride_indirect_chain(
            config,
            prefix="hj8",
            root_name="probe_keys",
            root_base=self.probe_keys.base_addr,
            root_end=self.probe_keys.end_addr,
            target_name="headers",
            target_base=self.headers.base_addr,
            target_end=self.headers.end_addr,
            transform=hash_transform("hj8_hash_mult", "hj8_hash_mask"),
            follow_on_tag=header_tag,
        )
        # End the timed chain when node prefetches land, so the look-ahead
        # reflects the full probe chain latency.
        config.add_range(
            "hj8_nodes_end",
            self.nodes.base_addr,
            self.nodes.end_addr,
            stream="hj8_probe_keys",
            chain_end=True,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        keys_decl = ir.ArrayDecl("probe_keys", "probe_keys_base", length_param="num_probes")
        headers_decl = ir.ArrayDecl("headers", "headers_base", length_param="num_buckets")
        # The node heap is addressed through raw pointers; byte-granular
        # "array" based at zero so that address == index.
        heap_decl = ir.ArrayDecl("heap", "zero_base", element_bytes=1)
        loop = ir.Loop(
            "hj8",
            ir.IndexVar("i"),
            trip_count_param="num_probes",
            arrays=[keys_decl, headers_decl, heap_decl],
            pragma_prefetch=True,
            has_irregular_control_flow=True,
        )
        i = loop.indvar

        def hash_expr(key: ir.Value) -> ir.Value:
            return ir.and_(ir.mul(key, ir.Param("hash_mult")), ir.Param("hash_mask"))

        # Software prefetches: the bucket header for a future probe, and the
        # first node of its chain (reads of prefetched data are exactly what
        # conversion can exploit and raw software prefetching cannot).
        future_header = ir.Load(
            headers_decl, hash_expr(ir.Load(keys_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE)))
        )
        loop.add(
            ir.SoftwarePrefetchStmt(
                headers_decl,
                hash_expr(ir.Load(keys_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE))),
                name="swpf_header",
            )
        )
        loop.add(ir.SoftwarePrefetchStmt(heap_decl, future_header, name="swpf_first_node"))

        # The demand-side walk: the first node is loaded through the header,
        # and deeper nodes are control dependent (the while loop).
        header = ir.Load(headers_decl, hash_expr(ir.Load(keys_decl, i)))
        first_node_key = ir.Load(heap_decl, header)
        deeper = ir.Load(heap_decl, ir.add(first_node_key, 16), control_dependent=True)
        loop.add(ir.LoadStmt(first_node_key))
        loop.add(ir.LoadStmt(deeper))
        bindings = {
            "probe_keys_base": self.probe_keys.base_addr,
            "headers_base": self.headers.base_addr,
            "zero_base": 0,
            "num_probes": self.num_probes,
            "num_buckets": self.num_buckets,
            "hash_mult": HASH_MULTIPLIER,
            "hash_mask": self.bucket_mask,
        }
        return loop, bindings
