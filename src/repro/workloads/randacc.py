"""RandAcc — the HPCC RandomAccess (GUPS) kernel.

RandomAccess applies read-modify-write updates ``Table[v & mask] ^= v`` for a
stream of pseudo-random values.  The look-ahead formulation of the benchmark
materialises the upcoming random values into a small buffer, which is what
gives the *stride-hash-indirect* pattern of Table 2: a sequential walk of the
value buffer followed by a masked indirect access into a table far larger than
any cache.

The paper's input performs 10^8 updates over a multi-GiB table; this
reproduction scales both down while keeping the table much larger than the
scaled L2.  The value buffer is stored at full length rather than as the
128-entry circular window the reference code uses (the window's wrap-around
only changes which few elements the compiler-generated prefetches miss; the
substitution is recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from .base import Workload
from .registry import register_workload
from .kernels import add_stride_indirect_chain, masked_transform

SOFTWARE_PREFETCH_DISTANCE = 32


@register_workload(paper_reference=True)
class RandomAccessWorkload(Workload):
    """HPCC RandomAccess table-update kernel."""

    name = "randacc"
    pattern = "Stride-hash-indirect"
    paper_input = "100,000,000 updates"
    repro_input = "20,480 updates over a 65,536-entry table (scaled)"
    derive_note = (
        "The legacy loop IR carries no stream/distance hints, so the derived "
        "chain diverges from the tuned hand kernels (look-ahead distance and "
        "the pre-registered mask global's slot); pending a frontend migration "
        "the hand configuration stays authoritative."
    )

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        self.num_updates = self.scale.scaled(20480, minimum=512)
        self.table_entries = self.scale.scaled(65536, minimum=2048)
        # The table mask requires a power-of-two table.
        self.table_entries = 1 << (self.table_entries.bit_length() - 1)
        self.table_mask = self.table_entries - 1

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        rng = np.random.default_rng(self.seed)
        values = rng.integers(0, 1 << 62, size=self.num_updates, dtype=np.int64)
        self.ran = self.space.allocate_array("ran", self.num_updates, values=values)
        self.table = self.space.allocate_array(
            "table", self.table_entries, values=np.zeros(self.table_entries, dtype=np.int64)
        )
        self._values = values

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        dist = SOFTWARE_PREFETCH_DISTANCE
        mask = self.table_mask
        for i in range(self.num_updates):
            if software_prefetch and i + dist < self.num_updates:
                future = tb.load(self.ran.addr_of(i + dist))
                index_compute = tb.compute(1, deps=[future])
                tb.software_prefetch(
                    self.table.addr_of(int(self._values[i + dist]) & mask),
                    deps=[index_compute],
                )
            ran_load = tb.load(self.ran.addr_of(i))
            mask_compute = tb.compute(4, deps=[ran_load])
            entry = int(self._values[i]) & mask
            table_load = tb.load(self.table.addr_of(entry), deps=[mask_compute])
            update = tb.compute(3, deps=[table_load])
            tb.store(self.table.addr_of(entry), deps=[update])
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        config.set_global("ra_mask", self.table_mask)
        add_stride_indirect_chain(
            config,
            prefix="ra",
            root_name="ran",
            root_base=self.ran.base_addr,
            root_end=self.ran.end_addr,
            target_name="table",
            target_base=self.table.base_addr,
            target_end=self.table.end_addr,
            transform=masked_transform("ra_mask"),
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        ran_decl = ir.ArrayDecl("ran", "ran_base", length_param="num_updates")
        table_decl = ir.ArrayDecl("table", "table_base", length_param="table_entries")
        loop = ir.Loop(
            "randacc",
            ir.IndexVar("i"),
            trip_count_param="num_updates",
            arrays=[ran_decl, table_decl],
            pragma_prefetch=True,
        )
        i = loop.indvar
        loop.add(
            ir.SoftwarePrefetchStmt(
                table_decl,
                ir.and_(
                    ir.Load(ran_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE)),
                    ir.Param("table_mask"),
                ),
                name="swpf_table",
            )
        )
        entry = ir.Load(table_decl, ir.and_(ir.Load(ran_decl, i), ir.Param("table_mask")))
        loop.add(ir.LoadStmt(entry))
        loop.add(ir.StoreStmt(table_decl, ir.and_(ir.Load(ran_decl, i), ir.Param("table_mask"))))
        bindings = {
            "ran_base": self.ran.base_addr,
            "table_base": self.table.base_addr,
            "num_updates": self.num_updates,
            "table_entries": self.table_entries,
            "table_mask": self.table_mask,
        }
        return loop, bindings
