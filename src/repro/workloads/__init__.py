"""The eight evaluation workloads (Table 2 of the paper).

Each workload re-implements the memory behaviour of its benchmark over the
simulated address space: it builds the data structures, emits the dynamic
trace the main core executes (with data dependences), and provides the
prefetcher programming for every mode the paper evaluates — hand-written PPU
kernels (*manual*), the loop IR plus software prefetches that the conversion
pass consumes (*converted*), the pragma-annotated loop (*pragma generated*)
and the software-prefetch trace variant (*software*).

| Name       | Source benchmark        | Pattern (Table 2)                      |
|------------|-------------------------|----------------------------------------|
| g500-csr   | Graph500 BFS            | BFS over CSR arrays                    |
| g500-list  | Graph500 BFS            | BFS over linked edge lists             |
| pagerank   | Boost Graph Library     | stride-indirect                        |
| hj2        | Hash join (Blanas)      | stride-hash-indirect                   |
| hj8        | Hash join (Blanas)      | stride-hash-indirect + list walks      |
| randacc    | HPCC RandomAccess       | stride-hash-indirect                   |
| intsort    | NAS IS                  | stride-indirect                        |
| conjgrad   | NAS CG                  | stride-indirect                        |
"""

from .base import Workload, WorkloadScale
from .conjgrad import ConjGradWorkload
from .g500_csr import Graph500CSRWorkload
from .g500_list import Graph500ListWorkload
from .hashjoin import HashJoin2Workload, HashJoin8Workload
from .intsort import IntSortWorkload
from .pagerank import PageRankWorkload
from .randacc import RandomAccessWorkload

#: Registry of workload constructors keyed by canonical name.
WORKLOADS = {
    "g500-csr": Graph500CSRWorkload,
    "g500-list": Graph500ListWorkload,
    "hj2": HashJoin2Workload,
    "hj8": HashJoin8Workload,
    "pagerank": PageRankWorkload,
    "randacc": RandomAccessWorkload,
    "intsort": IntSortWorkload,
    "conjgrad": ConjGradWorkload,
}

#: Order used throughout the evaluation (matches the paper's figures).
WORKLOAD_ORDER = [
    "g500-csr",
    "g500-list",
    "hj2",
    "hj8",
    "pagerank",
    "randacc",
    "intsort",
    "conjgrad",
]


def build_workload(name: str, scale: str = "default", seed: int = 42) -> Workload:
    """Construct and build the workload registered under ``name``."""

    try:
        constructor = WORKLOADS[name]
    except KeyError as error:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from error
    workload = constructor(scale=scale, seed=seed)
    workload.build()
    return workload


__all__ = [
    "Workload",
    "WorkloadScale",
    "WORKLOADS",
    "WORKLOAD_ORDER",
    "build_workload",
    "Graph500CSRWorkload",
    "Graph500ListWorkload",
    "HashJoin2Workload",
    "HashJoin8Workload",
    "PageRankWorkload",
    "RandomAccessWorkload",
    "IntSortWorkload",
    "ConjGradWorkload",
]
