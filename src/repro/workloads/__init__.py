"""The evaluation workloads: eight paper benchmarks plus off-paper kernels.

Each workload re-implements the memory behaviour of its benchmark over the
simulated address space: it builds the data structures, emits the dynamic
trace the main core executes (with data dependences), and provides the
prefetcher programming for every mode the paper evaluates — hand-written PPU
kernels (*manual*), the loop IR plus software prefetches that the conversion
pass consumes (*converted*), the pragma-annotated loop (*pragma generated*)
and the software-prefetch trace variant (*software*).

Workloads register themselves with :mod:`repro.workloads.registry` via the
``@register_workload`` decorator; every driver resolves workloads through
that registry, so adding a workload is one file (see ``docs/workloads.md``).

| Name       | Source benchmark        | Pattern                                | Paper? |
|------------|-------------------------|----------------------------------------|--------|
| g500-csr   | Graph500 BFS            | BFS over CSR arrays                    | yes    |
| g500-list  | Graph500 BFS            | BFS over linked edge lists             | yes    |
| hj2        | Hash join (Blanas)      | stride-hash-indirect                   | yes    |
| hj8        | Hash join (Blanas)      | stride-hash-indirect + list walks      | yes    |
| pagerank   | Boost Graph Library     | stride-indirect                        | yes    |
| randacc    | HPCC RandomAccess       | stride-hash-indirect                   | yes    |
| intsort    | NAS IS                  | stride-indirect                        | yes    |
| conjgrad   | NAS CG                  | stride-indirect                        | yes    |
| bfs        | frontier BFS            | frontier-stride-indirect + edge walks  | no     |
| spmv       | CSR SpMV                | stride-indirect gather                 | no     |
| unionfind  | union-find (halving)    | stride-indirect + pointer chasing      | no     |
"""

import os

from .base import Workload, WorkloadScale
from . import registry

# Workload modules self-register on import.  The paper benchmarks are
# imported in figure (Table 2) order so that ``registry.paper_names()`` —
# and therefore :data:`WORKLOAD_ORDER` — matches the paper's bar order; the
# off-paper extensions follow.
from .g500_csr import Graph500CSRWorkload
from .g500_list import Graph500ListWorkload
from .hashjoin import HashJoin2Workload, HashJoin8Workload
from .pagerank import PageRankWorkload
from .randacc import RandomAccessWorkload
from .intsort import IntSortWorkload
from .conjgrad import ConjGradWorkload
from .bfs import FrontierBFSWorkload
from .spmv import SpMVWorkload
from .unionfind import UnionFindWorkload

#: Workload constructors keyed by canonical name (all registered workloads).
#: Kept for backwards compatibility — new code should use
#: :func:`repro.workloads.registry.get` / :func:`~repro.workloads.registry.build`.
WORKLOADS = {spec.name: spec.factory for spec in registry.specs()}

#: Order used throughout the paper reproduction (matches the paper's figures).
#: Off-paper workloads are listed by :func:`registry.extended_names`.
WORKLOAD_ORDER = [
    "g500-csr",
    "g500-list",
    "hj2",
    "hj8",
    "pagerank",
    "randacc",
    "intsort",
    "conjgrad",
]

# The registry's paper order is the import order above, which every figure
# driver consumes via ``registry.paper_names()``.  Guard it against silent
# permutation (an auto-formatter sorting the import block would otherwise
# reorder the bars of Figures 7-11).
if WORKLOAD_ORDER != registry.paper_names():
    raise ImportError(
        "workload registration order no longer matches the paper's figure "
        f"order: expected {WORKLOAD_ORDER}, registered {registry.paper_names()}; "
        "keep the imports in repro/workloads/__init__.py in paper order"
    )


def build_workload(name: str, scale: str = "default", seed: int = 42) -> Workload:
    """Construct and build the workload registered under ``name``.

    Args:
        name: A name from :func:`registry.names`.
        scale: A :class:`WorkloadScale` name the workload supports.
        seed: Seed for the workload's data generators.

    Returns:
        A fully built :class:`Workload`.

    Raises:
        repro.errors.RegistryError: If ``name`` is not registered.
        repro.errors.WorkloadError: If ``scale`` is unsupported.
    """

    return registry.build(name, scale=scale, seed=seed)


__all__ = [
    "Workload",
    "WorkloadScale",
    "registry",
    "WORKLOADS",
    "WORKLOAD_ORDER",
    "build_workload",
    "Graph500CSRWorkload",
    "Graph500ListWorkload",
    "HashJoin2Workload",
    "HashJoin8Workload",
    "PageRankWorkload",
    "RandomAccessWorkload",
    "IntSortWorkload",
    "ConjGradWorkload",
    "FrontierBFSWorkload",
    "SpMVWorkload",
    "UnionFindWorkload",
]

# Out-of-tree workload plugins: ``REPRO_WORKLOAD_PLUGINS`` names modules
# (comma-separated, importable from ``sys.path``) imported after the
# built-ins so their ``@register_workload`` decorators run.  This is how a
# spawned ``repro serve`` subprocess learns workloads that only exist in
# the spawning process — the HA chaos tests register their hold-file-gated
# test workloads in the daemon this way.  Imported last (after the
# paper-order guard and the public names): plugins are extensions and must
# never reorder the paper set.
_plugin_modules = os.environ.get("REPRO_WORKLOAD_PLUGINS", "")
if _plugin_modules:
    import importlib

    for _module_name in _plugin_modules.split(","):
        _module_name = _module_name.strip()
        if _module_name:
            importlib.import_module(_module_name)
