"""Union-find — disjoint-set finds with path halving (off-paper).

A stream of ``find`` queries over a disjoint-set forest stored as a parent
array.  Each query reads its element id from a strided operation buffer and
then chases ``parent[parent[...]]`` to the root — a data-dependent pointer
chase like the hash-join list walks — while *path halving* rewrites every
other parent pointer along the way, so the trace also carries dependent
stores and the structure flattens as the query stream progresses (early
queries chase long chains, later ones hit compressed paths).

The forest is built as scattered chains of a fixed length so the first visit
to a set walks a guaranteed multi-hop chain through non-contiguous memory.
Software prefetching reaches the next query's *first* hop only; the manual
PPU programming chases the whole chain with a self-re-triggering tagged
kernel that stops when it observes a root (``parent[x] == x``).

This workload is not part of the paper's Table 2.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..compiler.frontend import parse_loop, prefetch
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder
from .base import Workload
from .kernels import add_stride_indirect_chain, identity_transform
from .registry import register_workload

SOFTWARE_PREFETCH_DISTANCE = 16

#: Elements per chain in the initial forest (before any compression).
CHAIN_LENGTH = 12


@register_workload()
class UnionFindWorkload(Workload):
    """Disjoint-set find queries with path halving over a chained forest."""

    name = "unionfind"
    pattern = "Stride-indirect + pointer chasing (path halving)"
    paper_input = "— (off-paper workload)"
    repro_input = "12,288 finds over 32,768 elements in 12-deep chains (scaled)"
    derives_manual = True

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        self.num_elements = self.scale.scaled(32768, minimum=1024)
        self.num_queries = self.scale.scaled(12288, minimum=256)

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        rng = np.random.default_rng(self.seed)

        # Scattered chains: a random permutation is cut into runs of
        # CHAIN_LENGTH; within a run each element points at the next, the
        # last is its own root.  Chasing a chain therefore jumps around the
        # parent array the way a pointer-linked structure jumps around the
        # heap.
        permutation = rng.permutation(self.num_elements).astype(np.int64)
        parent = np.arange(self.num_elements, dtype=np.int64)
        for start in range(0, self.num_elements, CHAIN_LENGTH):
            run = permutation[start : start + CHAIN_LENGTH]
            parent[run[:-1]] = run[1:]

        queries = rng.integers(0, self.num_elements, size=self.num_queries, dtype=np.int64)
        self.parent = self.space.allocate_array("uf_parent", self.num_elements, values=parent)
        self.ops = self.space.allocate_array("uf_ops", self.num_queries, values=queries)
        self.roots = self.space.allocate_array(
            "uf_roots", self.num_queries, values=np.zeros(self.num_queries, dtype=np.int64)
        )
        self._initial_parent = parent
        self._queries = queries
        #: Post-trace forest state (set by the first emission); the simulated
        #: parent array keeps the pristine chains — see :meth:`_emit_trace`.
        self.compressed_parent: np.ndarray | None = None

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        # Path halving mutates the forest, so the chase runs on a Python
        # mirror and the simulated parent array keeps the pristine forest:
        # simulated stores are timing-only (replay never mutates the address
        # space), and the walker kernel must see the chains the trace's
        # first-visit queries actually walk.  Re-finds overshoot a little —
        # the kernel re-chases a chain the core has already halved — which
        # is ordinary prefetcher over-fetch.
        parent = self._initial_parent.copy()
        dist = SOFTWARE_PREFETCH_DISTANCE

        for i in range(self.num_queries):
            if software_prefetch and i + dist < self.num_queries:
                future_op = tb.load(self.ops.addr_of(i + dist))
                tb.software_prefetch(
                    self.parent.addr_of(int(self._queries[i + dist])),
                    deps=[future_op],
                )
            op_load = tb.load(self.ops.addr_of(i))
            x = int(self._queries[i])
            previous = op_load
            while True:
                px = int(parent[x])
                parent_load = tb.load(self.parent.addr_of(x), deps=[previous])
                tb.compute(1, deps=[parent_load])
                tb.branch(deps=[parent_load])
                if px == x:
                    break
                grand_load = tb.load(self.parent.addr_of(px), deps=[parent_load])
                ppx = int(parent[px])
                # Path halving: point x at its grandparent and hop there.
                parent[x] = ppx
                tb.store(self.parent.addr_of(x), deps=[grand_load])
                previous = grand_load
                x = ppx
            self.roots[i] = x
            tb.store(self.roots.addr_of(i), deps=[previous])
            tb.branch()
        self.compressed_parent = parent

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        parent_base = config.set_global("uf_parent_base", self.parent.base_addr)

        # Chain walker: a parent entry arrived.  Recover the element index
        # from the address; if the value equals the index we are at a root,
        # otherwise prefetch the parent of the value — tagged with this very
        # kernel so the walk re-triggers until it reaches the root.
        walker = KernelBuilder("uf_walk_parent")
        base = walker.get_global(parent_base)
        value = walker.get_data()
        index = walker.shr(walker.sub(walker.get_vaddr(), base), 3)
        walker.branch_eq(value, index, "root")
        walker.prefetch(walker.add(base, walker.shl(value, 3)), tag=0)
        walker.label("root")
        walker.halt()
        config.add_kernel(walker.build())
        walker_tag = config.add_tag("uf_parent_fill", "uf_walk_parent", stream=None)
        if walker_tag != 0:
            raise AssertionError("union-find walker tag expected to be 0")

        # Root chain: ops reads look ahead along the query buffer; each
        # fetched element id starts a tagged walk at parent[id].
        add_stride_indirect_chain(
            config,
            prefix="uf",
            root_name="ops",
            root_base=self.ops.base_addr,
            root_end=self.ops.end_addr,
            target_name="parent",
            target_base=self.parent.base_addr,
            target_end=self.parent.end_addr,
            transform=identity_transform,
            follow_on_tag=walker_tag,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        # Written as a plain traversal function and parsed into the loop IR.
        # Software prefetching reaches the first hop of a future query; the
        # while-chase lowers to a control-dependent load (out of reach of
        # both compiler passes) plus a PointerChaseStmt, which the derivation
        # pipeline turns into the self-re-triggering walker kernel.
        def traversal(i, ops, parent):
            prefetch(
                parent[ops[i + SOFTWARE_PREFETCH_DISTANCE]],
                stream="uf_ops",
                distance=8,
                name="swpf_first_hop",
            )
            x = parent[ops[i]]
            while parent[x] != x:
                x = parent[x]

        loop = parse_loop(
            traversal,
            name="unionfind",
            arrays=[
                ir.ArrayDecl("ops", "ops_base", length_param="num_queries"),
                ir.ArrayDecl("parent", "parent_base", length_param="num_elements"),
            ],
            trip_count_param="num_queries",
            pragma_prefetch=True,
            constants={"SOFTWARE_PREFETCH_DISTANCE": SOFTWARE_PREFETCH_DISTANCE},
        )
        bindings = {
            "ops_base": self.ops.base_addr,
            "parent_base": self.parent.base_addr,
            "num_queries": self.num_queries,
            "num_elements": self.num_elements,
        }
        return loop, bindings
