"""Key and value distributions for the non-graph workloads."""

from __future__ import annotations

import numpy as np


def random_keys(count: int, key_space: int, *, seed: int = 42) -> np.ndarray:
    """Uniform random keys in ``[0, key_space)`` — the hash-join/GUPS input."""

    if count < 1 or key_space < 1:
        raise ValueError("count and key_space must be positive")
    rng = np.random.default_rng(seed)
    return rng.integers(0, key_space, size=count, dtype=np.int64)


def random_permutation(count: int, *, seed: int = 42) -> np.ndarray:
    """A random permutation of ``[0, count)``."""

    if count < 1:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    return rng.permutation(count).astype(np.int64)


def zipf_keys(count: int, key_space: int, *, exponent: float = 1.2, seed: int = 42) -> np.ndarray:
    """Zipf-skewed keys clipped to ``[0, key_space)``.

    Used for ablations on skewed join keys; the default evaluation follows the
    paper and uses uniform keys.
    """

    if count < 1 or key_space < 1:
        raise ValueError("count and key_space must be positive")
    if exponent <= 1.0:
        raise ValueError("Zipf exponent must be greater than 1")
    rng = np.random.default_rng(seed)
    draws = rng.zipf(exponent, size=count).astype(np.int64)
    return (draws - 1) % key_space
