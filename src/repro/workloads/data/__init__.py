"""Synthetic input generators for the workloads."""

from .distributions import random_keys, random_permutation, zipf_keys
from .rmat import CSRGraph, generate_rmat_csr

__all__ = [
    "CSRGraph",
    "generate_rmat_csr",
    "random_keys",
    "random_permutation",
    "zipf_keys",
]
