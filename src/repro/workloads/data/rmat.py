"""R-MAT (Kronecker) graph generation.

Graph500 specifies a Kronecker generator with parameters (A, B, C) =
(0.57, 0.19, 0.19); this module implements the standard recursive R-MAT edge
placement with those defaults, vectorised with NumPy, and converts the edge
list into a CSR structure the workloads lay out in simulated memory.  The
resulting degree distribution is heavily skewed, which is what gives Graph500
BFS and PageRank their irregular, cache-hostile access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in compressed-sparse-row form."""

    num_vertices: int
    row_offsets: np.ndarray  # int64, length num_vertices + 1
    columns: np.ndarray      # int64, length num_edges

    @property
    def num_edges(self) -> int:
        return int(self.columns.size)

    def out_degree(self, vertex: int) -> int:
        return int(self.row_offsets[vertex + 1] - self.row_offsets[vertex])

    def neighbours(self, vertex: int) -> np.ndarray:
        start = int(self.row_offsets[vertex])
        end = int(self.row_offsets[vertex + 1])
        return self.columns[start:end]


def generate_rmat_edges(
    scale: int,
    edge_factor: int,
    *,
    seed: int = 42,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an R-MAT edge list of ``2**scale`` vertices.

    Returns ``(sources, destinations)`` arrays of length
    ``edge_factor * 2**scale``.
    """

    if scale < 1:
        raise ValueError("scale must be at least 1")
    if edge_factor < 1:
        raise ValueError("edge_factor must be at least 1")
    if not 0 < a + b + c < 1:
        raise ValueError("R-MAT probabilities must sum to less than 1")

    rng = np.random.default_rng(seed)
    num_edges = edge_factor * (1 << scale)
    sources = np.zeros(num_edges, dtype=np.int64)
    destinations = np.zeros(num_edges, dtype=np.int64)

    ab = a + b
    abc = a + b + c
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrant selection per Graph500's Kronecker recursion.
        src_bit = (r >= ab).astype(np.int64)
        dst_bit = (((r >= a) & (r < ab)) | (r >= abc)).astype(np.int64)
        sources |= src_bit << bit
        destinations |= dst_bit << bit

    # Permute vertex labels so high-degree vertices are not clustered at the
    # low indices, as the Graph500 reference generator does.
    permutation = rng.permutation(1 << scale).astype(np.int64)
    return permutation[sources], permutation[destinations]


def edges_to_csr(
    num_vertices: int, sources: np.ndarray, destinations: np.ndarray
) -> CSRGraph:
    """Convert an edge list to CSR, dropping self-loops and keeping duplicates."""

    keep = sources != destinations
    sources = sources[keep]
    destinations = destinations[keep]

    order = np.argsort(sources, kind="stable")
    sources = sources[order]
    destinations = destinations[order]

    counts = np.bincount(sources, minlength=num_vertices).astype(np.int64)
    row_offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=row_offsets[1:])
    return CSRGraph(num_vertices=num_vertices, row_offsets=row_offsets, columns=destinations)


def generate_rmat_csr(
    scale: int,
    edge_factor: int,
    *,
    seed: int = 42,
    undirected: bool = True,
) -> CSRGraph:
    """Generate an R-MAT graph and return it in CSR form.

    ``undirected=True`` mirrors Graph500: each generated edge is inserted in
    both directions so BFS reaches most of the graph from any root.
    """

    sources, destinations = generate_rmat_edges(scale, edge_factor, seed=seed)
    if undirected:
        sources, destinations = (
            np.concatenate([sources, destinations]),
            np.concatenate([destinations, sources]),
        )
    return edges_to_csr(1 << scale, sources, destinations)
