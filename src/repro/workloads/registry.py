"""Declarative workload registry — the single source of truth for workloads.

Every benchmark the simulator can drive is described by a
:class:`WorkloadSpec` and registered with the :func:`register_workload`
decorator.  The spec names the workload, the scales it supports, whether it
reproduces a paper (Table 2) benchmark or is an off-paper extension, and the
factory that builds its traces and PPU kernel configurations.  Drivers — the
figure/table reproductions, the batch engine's runners, the sweeps and the
benchmark harness — resolve workloads exclusively through this module, so
adding a workload is one file::

    from repro.workloads.base import Workload
    from repro.workloads.registry import register_workload

    @register_workload()
    class MyKernel(Workload):
        name = "mykernel"
        ...

Importing :mod:`repro.workloads` populates the registry with the eight paper
benchmarks plus the off-paper extensions (BFS, SpMV, union-find); the
module-level helpers (:func:`names`, :func:`get`, :func:`build`, ...) operate
on that shared registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..errors import RegistryError, WorkloadError
from .base import Workload, WorkloadScale

#: Scale names every workload supports unless its spec narrows them.
DEFAULT_SCALES = ("tiny", "small", "default", "large")


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one registered workload.

    Attributes:
        name: Canonical workload name (``SimRequest.workload`` key).
        factory: Callable ``(scale, seed) -> Workload`` — the workload class
            itself for decorator registrations.  The constructed object owns
            the trace builder (:meth:`Workload.trace`) and the PPU kernel
            builders (:meth:`Workload.manual_configuration` et al.).
        scales: Scale names the workload accepts (subset of
            :data:`DEFAULT_SCALES`).
        paper_reference: ``True`` for the eight Table 2 benchmarks whose
            results are compared against published figures; ``False`` for
            off-paper extensions.
        pattern: Access-pattern summary (the Table 2 column).
        description: One-line summary, taken from the factory docstring when
            not given explicitly.
        derives_manual: ``True`` when the compiler pipeline can derive this
            workload's manual-mode kernels from its loop IR (the
            ``compiled`` kernel source).
        kernel_source: Default manual-kernel source (``hand``/``compiled``).
        derive_note: For workloads with loop IR but ``derives_manual`` off:
            the declared reason the pipeline cannot reproduce the
            hand-written kernels.  CI rejects specs declaring neither.
    """

    name: str
    factory: Callable[..., Workload]
    scales: tuple[str, ...] = DEFAULT_SCALES
    paper_reference: bool = False
    pattern: str = ""
    description: str = ""
    derives_manual: bool = False
    kernel_source: str = "hand"
    derive_note: str = ""

    def build(self, scale: str = "default", seed: int = 42) -> Workload:
        """Construct the workload, build its data structures and return it.

        Args:
            scale: One of :attr:`scales` (:class:`WorkloadScale` names).
            seed: Seed for the workload's data generators.

        Returns:
            A fully built :class:`Workload` whose traces and prefetcher
            configurations can be requested immediately.

        Raises:
            WorkloadError: If ``scale`` is not supported by this workload.
        """

        if scale not in self.scales:
            raise WorkloadError(
                f"workload {self.name!r} does not support scale {scale!r}; "
                f"supported: {sorted(self.scales)}"
            )
        workload = self.factory(scale=scale, seed=seed)
        workload.build()
        return workload


@dataclass
class WorkloadRegistry:
    """An insertion-ordered mapping of workload name → :class:`WorkloadSpec`."""

    _specs: dict[str, WorkloadSpec] = field(default_factory=dict)

    def register(self, spec: WorkloadSpec) -> WorkloadSpec:
        """Add ``spec``; registering a name twice raises :class:`RegistryError`."""

        if spec.name in self._specs:
            raise RegistryError(
                f"workload {spec.name!r} is already registered "
                f"(by {self._specs[spec.name].factory!r})"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> WorkloadSpec:
        """Return the spec registered under ``name``.

        Raises:
            RegistryError: If no workload of that name is registered.
        """

        try:
            return self._specs[name]
        except KeyError as error:
            raise RegistryError(
                f"unknown workload {name!r}; available: {self.names()}"
            ) from error

    def build(self, name: str, scale: str = "default", seed: int = 42) -> Workload:
        """Construct and build the workload registered under ``name``."""

        return self.get(name).build(scale=scale, seed=seed)

    def names(self) -> list[str]:
        """Every registered workload name, in registration order."""

        return list(self._specs)

    def paper_names(self) -> list[str]:
        """The paper (Table 2) benchmarks, in registration (figure) order."""

        return [name for name, spec in self._specs.items() if spec.paper_reference]

    def extended_names(self) -> list[str]:
        """The off-paper workloads, in registration order."""

        return [name for name, spec in self._specs.items() if not spec.paper_reference]

    def specs(self) -> list[WorkloadSpec]:
        """Every registered spec, in registration order."""

        return list(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[WorkloadSpec]:
        return iter(self._specs.values())


#: The process-wide registry that :func:`register_workload` populates.
REGISTRY = WorkloadRegistry()


def register_workload(
    *,
    name: Optional[str] = None,
    scales: tuple[str, ...] = DEFAULT_SCALES,
    paper_reference: bool = False,
    registry: Optional[WorkloadRegistry] = None,
) -> Callable[[type[Workload]], type[Workload]]:
    """Class decorator registering a :class:`Workload` subclass.

    Args:
        name: Canonical name; defaults to the class's ``name`` attribute.
        scales: Scale names the workload supports.
        paper_reference: Whether the workload reproduces a Table 2 benchmark.
        registry: Target registry; defaults to the shared :data:`REGISTRY`
            (tests pass their own to exercise registration in isolation).

    Returns:
        The class, unchanged, so decoration does not alter construction.
    """

    target = registry if registry is not None else REGISTRY

    def decorator(cls: type[Workload]) -> type[Workload]:
        spec_name = name if name is not None else cls.name
        if not spec_name or spec_name == Workload.name:
            raise RegistryError(
                f"{cls.__name__} must define a distinct 'name' attribute to register"
            )
        for scale in scales:
            WorkloadScale.from_name(scale)  # fail fast on unknown scale names
        doc = (cls.__doc__ or "").strip().splitlines()
        target.register(
            WorkloadSpec(
                name=spec_name,
                factory=cls,
                scales=tuple(scales),
                paper_reference=paper_reference,
                pattern=cls.pattern,
                description=doc[0] if doc else "",
                derives_manual=cls.derives_manual,
                kernel_source=cls.kernel_source,
                derive_note=cls.derive_note,
            )
        )
        return cls

    return decorator


# ------------------------------------------------------- module-level helpers
# Thin delegates so drivers can write `from repro.workloads import registry`
# and call `registry.names()` without touching the singleton directly.


def names() -> list[str]:
    """Every registered workload name, in registration order."""

    return REGISTRY.names()


def paper_names() -> list[str]:
    """The eight paper (Table 2) benchmark names, in figure order."""

    return REGISTRY.paper_names()


def extended_names() -> list[str]:
    """The off-paper workload names (the "bring your own kernel" set)."""

    return REGISTRY.extended_names()


def get(name: str) -> WorkloadSpec:
    """Return the :class:`WorkloadSpec` registered under ``name``."""

    return REGISTRY.get(name)


def build(name: str, scale: str = "default", seed: int = 42) -> Workload:
    """Construct and build the workload registered under ``name``."""

    return REGISTRY.build(name, scale=scale, seed=seed)


def specs() -> list[WorkloadSpec]:
    """Every registered spec, in registration order."""

    return REGISTRY.specs()


def resolve_kernel_source(name: str, explicit: Optional[str] = None) -> str:
    """Resolve the manual-kernel source for workload ``name`` by its spec.

    Imports :mod:`repro.workloads` first so the registry is populated even
    when the caller (e.g. the batch engine normalising a
    :class:`~repro.sim.engine.request.SimRequest`) has not touched workloads
    yet.  Unregistered names resolve as non-derivable, i.e. ``compiled``
    from the environment falls back to ``hand``.
    """

    from importlib import import_module

    from .base import resolve_kernel_source as _resolve

    import_module(__package__)
    if name in REGISTRY:
        spec = REGISTRY.get(name)
        return _resolve(explicit, default=spec.kernel_source, derivable=spec.derives_manual)
    return _resolve(explicit, default="hand", derivable=False)
