"""Graph500 breadth-first search over CSR arrays (G500-CSR).

The BFS inner loop pops a vertex from the FIFO work queue, reads its edge
range from the CSR offset array, streams the destination vertices from the
edge array, and checks/updates a visited array — four dependent, irregular
data structures.  The manual PPU program reproduces the graph-prefetcher
schedule of the paper (and of Ainsworth & Jones, ICS'16): snooped reads of
the work queue trigger a look-ahead prefetch of a future queue entry, whose
value fetches the vertex offsets, whose values fetch the edge-list lines,
whose contents fetch the visited entries — a four-deep event chain with a
data-dependent inner loop that only manual programming can express in full.

The compiler passes get exactly the partial coverage the paper describes: the
conversion pass fetches a fixed "first N" edges per vertex (software
prefetches cannot express the data-dependent edge count), and the pragma pass
finds only the two stride-indirect pairs (queue→offsets and edges→visited).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder
from .base import Workload
from .registry import register_workload
from .data.rmat import generate_rmat_csr

SOFTWARE_PREFETCH_DISTANCE = 8

#: Edges prefetched per vertex by the converted (first-N) configuration.
CONVERTED_FIRST_N_EDGES = 4

#: Maximum edge-list cache lines the manual vertex kernel walks per vertex.
MAX_EDGE_LINES = 4


@register_workload(paper_reference=True)
class Graph500CSRWorkload(Workload):
    """Graph500 BFS with CSR edge storage."""

    name = "g500-csr"
    pattern = "BFS (arrays)"
    paper_input = "-s 21 -e 10"
    repro_input = "R-MAT scale 12, edge factor 5 (scaled)"
    derive_note = (
        "The hand configuration is a bespoke multi-kernel BFS traversal — "
        "queue/vertex/edge kernels chained through cross-referencing tags and "
        "a num_edges bound check — far beyond the per-prefetch stride-indirect "
        "chains the derivation pipeline produces from the loop IR."
    )

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        if self.scale.factor >= 1.0:
            self.graph_scale = 12
        elif self.scale.factor >= 0.3:
            self.graph_scale = 10
        else:
            self.graph_scale = 8
        self.edge_factor = 5

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        graph = generate_rmat_csr(self.graph_scale, self.edge_factor, seed=self.seed)
        vertices = graph.num_vertices

        self.row_offsets = self.space.allocate_array(
            "bfs_row_offsets", vertices + 1, values=graph.row_offsets
        )
        self.columns = self.space.allocate_array(
            "bfs_columns", max(1, graph.num_edges), values=graph.columns
        )
        self.visited = self.space.allocate_array(
            "bfs_visited", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        self.queue = self.space.allocate_array(
            "bfs_queue", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        self._graph = graph
        # Start from the highest-degree vertex so the traversal covers most of
        # the graph (Graph500 roots are required to have at least one edge).
        degrees = np.diff(graph.row_offsets)
        self._root = int(np.argmax(degrees))

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        graph = self._graph
        visited = np.zeros(graph.num_vertices, dtype=bool)
        dist = SOFTWARE_PREFETCH_DISTANCE

        # Seed the queue.
        self.queue[0] = self._root
        visited[self._root] = True
        self.visited[self._root] = 1
        head, tail = 0, 1

        while head < tail:
            if software_prefetch and head + dist < tail:
                future_entry = tb.load(self.queue.addr_of(head + dist))
                tb.software_prefetch(
                    self.row_offsets.addr_of(int(self.queue[head + dist])),
                    deps=[future_entry],
                )
            queue_load = tb.load(self.queue.addr_of(head))
            vertex = int(self.queue[head])
            head += 1
            start = int(graph.row_offsets[vertex])
            end = int(graph.row_offsets[vertex + 1])
            offsets_load = tb.load(self.row_offsets.addr_of(vertex), deps=[queue_load])
            tb.load(self.row_offsets.addr_of(vertex + 1), deps=[queue_load])

            for edge in range(start, end):
                dest = int(graph.columns[edge])
                if software_prefetch and edge + dist < len(self.columns):
                    future_edge = tb.load(self.columns.addr_of(edge + dist))
                    tb.software_prefetch(
                        self.visited.addr_of(int(graph.columns[edge + dist])),
                        deps=[future_edge],
                    )
                edge_load = tb.load(self.columns.addr_of(edge), deps=[offsets_load])
                visited_load = tb.load(self.visited.addr_of(dest), deps=[edge_load])
                tb.compute(2, deps=[visited_load])
                tb.branch(deps=[visited_load])
                if not visited[dest]:
                    visited[dest] = True
                    self.visited[dest] = 1
                    tb.store(self.visited.addr_of(dest), deps=[visited_load])
                    self.queue[tail] = dest
                    tb.store(self.queue.addr_of(tail), deps=[visited_load])
                    tail += 1
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        stream = "bfs_queue"
        config.add_stream(stream, default_distance=4)
        queue_base = config.set_global("bfs_queue_base", self.queue.base_addr)
        offsets_base = config.set_global("bfs_offsets_base", self.row_offsets.base_addr)
        columns_base = config.set_global("bfs_columns_base", self.columns.base_addr)
        visited_base = config.set_global("bfs_visited_base", self.visited.base_addr)
        num_edges = config.set_global("bfs_num_edges", len(self.columns))

        # Kernel 4: a line of edges arrived — prefetch the visited entry of
        # every destination in the line (slight over-fetch past the edge
        # range, as the paper's 16 % extra-traffic figure reflects).
        edge_kernel = KernelBuilder("bfs_on_edges_fill")
        vbase = edge_kernel.get_global(visited_base)
        word = edge_kernel.imm(0)
        dest = edge_kernel.imm(0)
        addr = edge_kernel.imm(0)
        edge_kernel.label("next_word")
        edge_kernel.line_word(word, dst=dest)
        edge_kernel.shl(dest, 3, dst=addr)
        edge_kernel.add(vbase, addr, dst=addr)
        edge_kernel.prefetch(addr)
        edge_kernel.add(word, 1, dst=word)
        edge_kernel.branch_lt(word, edge_kernel.imm(8), "next_word")
        edge_kernel.halt()
        config.add_kernel(edge_kernel.build())
        edge_tag = config.add_tag("bfs_edges_fill", "bfs_on_edges_fill", stream=stream)

        # Kernel 3: the vertex offsets arrived — walk the edge range a line
        # at a time (bounded), prefetching each edge line.
        vertex_kernel = KernelBuilder("bfs_on_vertex_fill")
        ebase = vertex_kernel.get_global(columns_base)
        vaddr = vertex_kernel.get_vaddr()
        offset_in_line = vertex_kernel.and_(vertex_kernel.shr(vaddr, 3), 7)
        start = vertex_kernel.get_data()
        end = vertex_kernel.mov(start)
        # When the end offset sits in the next cache line we cannot read it;
        # fall back to one line's worth of edges.
        vertex_kernel.branch_ge(offset_in_line, vertex_kernel.imm(7), "guess_end")
        vertex_kernel.line_word(vertex_kernel.add(offset_in_line, 1), dst=end)
        vertex_kernel.jump("have_end")
        vertex_kernel.label("guess_end")
        vertex_kernel.add(start, 8, dst=end)
        vertex_kernel.label("have_end")
        limit = vertex_kernel.add(start, 8 * MAX_EDGE_LINES)
        vertex_kernel.branch_ge(limit, end, "clamped")
        vertex_kernel.mov(limit, dst=end)
        vertex_kernel.label("clamped")
        cursor = vertex_kernel.mov(start)
        target = vertex_kernel.imm(0)
        vertex_kernel.label("next_line")
        vertex_kernel.branch_ge(cursor, end, "done")
        vertex_kernel.shl(cursor, 3, dst=target)
        vertex_kernel.add(ebase, target, dst=target)
        vertex_kernel.prefetch(target, tag=edge_tag)
        vertex_kernel.add(cursor, 8, dst=cursor)
        vertex_kernel.jump("next_line")
        vertex_kernel.label("done")
        vertex_kernel.halt()
        config.add_kernel(vertex_kernel.build())
        vertex_tag = config.add_tag("bfs_vertex_fill", "bfs_on_vertex_fill", stream=stream)

        # Kernel 2: a future queue entry arrived — fetch its vertex offsets.
        queue_fill = KernelBuilder("bfs_on_queue_fill")
        vertex_id = queue_fill.get_data()
        queue_fill.prefetch(
            queue_fill.add(queue_fill.get_global(offsets_base), queue_fill.shl(vertex_id, 3)),
            tag=vertex_tag,
        )
        config.add_kernel(queue_fill.build())
        queue_tag = config.add_tag("bfs_queue_fill", "bfs_on_queue_fill", stream=stream)

        # Kernel 1: the core read a queue entry — prefetch a future entry at
        # the EWMA-derived distance.
        queue_load = KernelBuilder("bfs_on_queue_load")
        qbase = queue_load.get_global(queue_base)
        qaddr = queue_load.get_vaddr()
        index = queue_load.shr(queue_load.sub(qaddr, qbase), 3)
        lookahead = queue_load.get_lookahead(config.stream_index(stream))
        queue_load.prefetch(
            queue_load.add(qbase, queue_load.shl(queue_load.add(index, lookahead), 3)),
            tag=queue_tag,
        )
        config.add_kernel(queue_load.build())

        config.add_range(
            "bfs_queue",
            self.queue.base_addr,
            self.queue.end_addr,
            load_kernel="bfs_on_queue_load",
            stream=stream,
            time_iterations=True,
            chain_start=True,
        )
        config.add_range(
            "bfs_visited_end",
            self.visited.base_addr,
            self.visited.end_addr,
            stream=stream,
            chain_end=True,
        )
        del num_edges  # reserved for kernels that clamp against the edge count

        # Long edge lists (the R-MAT graph's high-degree frontier vertices)
        # outlive the bounded per-vertex walk above, so demand reads of the
        # edge array also stream it ahead and fetch the visited entries of the
        # upcoming destinations — the same schedule the ICS'16 graph
        # prefetcher uses for large vertices.
        from .kernels import add_stride_indirect_chain, identity_transform

        add_stride_indirect_chain(
            config,
            prefix="bfs_edges",
            root_name="columns",
            root_base=self.columns.base_addr,
            root_end=self.columns.end_addr,
            target_name="visited",
            target_base=self.visited.base_addr,
            transform=identity_transform,
            default_distance=16,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        queue_decl = ir.ArrayDecl("queue", "queue_base", length_param="num_vertices")
        offsets_decl = ir.ArrayDecl("row_offsets", "offsets_base", length_param="num_offsets")
        columns_decl = ir.ArrayDecl("columns", "columns_base", length_param="num_edges")
        visited_decl = ir.ArrayDecl("visited", "visited_base", length_param="num_vertices")
        loop = ir.Loop(
            "g500_csr",
            ir.IndexVar("i"),
            trip_count_param="num_vertices",
            arrays=[queue_decl, offsets_decl, columns_decl, visited_decl],
            pragma_prefetch=True,
            has_irregular_control_flow=True,
        )
        i = loop.indvar

        # Software prefetches: the first N edges (and their visited flags) of
        # a future frontier vertex — the fixed-N approximation the paper says
        # conversion must fall back to without control flow.
        future_vertex = ir.Load(queue_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE))
        future_start = ir.Load(offsets_decl, future_vertex)
        for j in range(CONVERTED_FIRST_N_EDGES):
            loop.add(
                ir.SoftwarePrefetchStmt(
                    visited_decl,
                    ir.Load(columns_decl, ir.add(future_start, j)),
                    name=f"swpf_visited_{j}",
                )
            )

        # The inner edge loop also carries a software prefetch of the visited
        # flag a few edges ahead (expressible because the edge array itself is
        # walked sequentially while a vertex is being processed).
        loop.add(
            ir.SoftwarePrefetchStmt(
                visited_decl,
                ir.Load(columns_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE)),
                name="swpf_visited_stream",
            )
        )

        # The demand loads the pragma pass can see: the queue→offsets gather
        # and the edges→visited gather.  The full edge walk is control
        # dependent and therefore out of reach for both passes.
        loop.add(ir.LoadStmt(ir.Load(offsets_decl, ir.Load(queue_decl, i))))
        loop.add(ir.LoadStmt(ir.Load(visited_decl, ir.Load(columns_decl, i))))
        loop.add(
            ir.LoadStmt(
                ir.Load(
                    columns_decl,
                    ir.Load(offsets_decl, ir.Load(queue_decl, i)),
                    control_dependent=True,
                )
            )
        )

        bindings = {
            "queue_base": self.queue.base_addr,
            "offsets_base": self.row_offsets.base_addr,
            "columns_base": self.columns.base_addr,
            "visited_base": self.visited.base_addr,
            "num_vertices": self._graph.num_vertices,
            "num_offsets": self._graph.num_vertices + 1,
            "num_edges": len(self.columns),
        }
        return loop, bindings
