"""Workload framework.

A :class:`Workload` owns a simulated address space, builds its data structures
into it, and can then produce

* dynamic traces for the main core (``plain`` — the unmodified benchmark — and
  ``software`` — the benchmark with software prefetches and their
  address-generation overhead inserted);
* the hand-written PPU kernel configuration (``manual_configuration``);
* the loop IR + parameter bindings that the two compiler passes consume
  (``loop_ir``), from which ``converted_configuration`` and
  ``pragma_configuration`` are derived.

Traces and configurations are cached: the data structures are built once and
every prefetch mode simulates exactly the same dynamic instruction stream
(apart from the software-prefetch variant, which legitimately executes more
instructions).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Optional

from ..compiler.convert import convert_software_prefetches
from ..compiler.ir import Loop
from ..compiler.pipeline import DerivedKernels, derive_manual_configuration
from ..compiler.pragma import generate_from_pragma
from ..cpu.trace import Trace, TraceBuilder
from ..errors import WorkloadError
from ..memory.address_space import AddressSpace
from ..programmable.config_api import PrefetcherConfiguration

#: Multiplicative hash constant used by the hash-join and RandomAccess
#: workloads (Knuth's 2^32 / phi), also baked into their PPU kernels.
HASH_MULTIPLIER = 2654435761

#: Environment variable selecting where manual-mode kernels come from:
#: ``hand`` (the hand-written configuration) or ``compiled`` (derived from
#: the loop IR by :mod:`repro.compiler.pipeline`).
KERNEL_SOURCE_ENV_VAR = "REPRO_KERNEL_SOURCE"

#: Valid kernel sources.
KERNEL_SOURCES = ("hand", "compiled")


def resolve_kernel_source(
    explicit: Optional[str] = None,
    *,
    default: str = "hand",
    derivable: bool = False,
) -> str:
    """Resolve which manual-kernel source to use.

    Precedence: ``explicit`` argument > :data:`KERNEL_SOURCE_ENV_VAR` >
    ``default``.  An explicit ``compiled`` is returned as-is even for a
    workload that cannot derive its kernels — the caller then fails loudly
    when the derivation comes up empty — whereas an env/default ``compiled``
    falls back to ``hand`` for non-derivable workloads, which is the
    *declared* fallback drivers may report.

    Raises:
        WorkloadError: On a value outside :data:`KERNEL_SOURCES`.
    """

    if explicit is not None:
        if explicit not in KERNEL_SOURCES:
            raise WorkloadError(
                f"unknown kernel source {explicit!r}; expected one of {KERNEL_SOURCES}"
            )
        return explicit
    value = os.environ.get(KERNEL_SOURCE_ENV_VAR, "").strip().lower()
    if value:
        if value not in KERNEL_SOURCES:
            raise WorkloadError(
                f"{KERNEL_SOURCE_ENV_VAR}={value!r}; expected one of {KERNEL_SOURCES}"
            )
        source = value
    else:
        source = default
    if source == "compiled" and not derivable:
        return "hand"
    return source


@dataclass(frozen=True)
class WorkloadScale:
    """Named problem sizes.

    ``tiny`` is for unit tests (hundreds of iterations), ``small`` for quick
    interactive runs, ``default`` for the figure/benchmark reproductions.
    The paper's own inputs (Table 2) are tens of millions of elements and are
    impractical under a pure-Python cycle-level model; EXPERIMENTS.md records
    this substitution.
    """

    name: str
    factor: float

    @classmethod
    def from_name(cls, name: str) -> "WorkloadScale":
        factors = {"tiny": 0.05, "small": 0.35, "default": 1.0, "large": 2.0}
        if name not in factors:
            raise WorkloadError(
                f"unknown scale {name!r}; expected one of {sorted(factors)}"
            )
        return cls(name=name, factor=factors[name])

    def scaled(self, value: int, minimum: int = 16) -> int:
        return max(minimum, int(value * self.factor))


class Workload(ABC):
    """Base class for all benchmark workloads."""

    #: Canonical name (Table 2 row).
    name: str = "workload"
    #: Access pattern description (Table 2).
    pattern: str = ""
    #: The input the paper used (Table 2), recorded for the tables report.
    paper_input: str = ""
    #: The scaled input this reproduction uses.
    repro_input: str = ""
    #: True when the manual-mode configuration can be derived from the loop
    #: IR by the compiler pipeline (the ``compiled`` kernel source).
    derives_manual: bool = False
    #: Default manual-kernel source for this workload (``hand``/``compiled``);
    #: overridable per run via ``REPRO_KERNEL_SOURCE`` or an explicit request.
    kernel_source: str = "hand"
    #: For workloads with loop IR but ``derives_manual = False``: why the
    #: pipeline cannot (yet) reproduce the hand-written kernels.  CI fails
    #: any workload that declares neither — no silent fallbacks.
    derive_note: str = ""

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        self.scale = WorkloadScale.from_name(scale)
        self.seed = seed
        self.space = AddressSpace()
        self._built = False
        self._traces: dict[str, Trace] = {}
        self._manual: Optional[PrefetcherConfiguration] = None
        self._converted: Optional[PrefetcherConfiguration] = None
        self._pragma: Optional[PrefetcherConfiguration] = None
        self._derived: Optional[DerivedKernels] = None

    # ----------------------------------------------------------------- build

    def build(self) -> None:
        """Build the workload's data structures (idempotent)."""

        if not self._built:
            self._build_data()
            self._built = True

    def _require_built(self) -> None:
        if not self._built:
            self.build()

    @abstractmethod
    def _build_data(self) -> None:
        """Allocate and initialise data structures in :attr:`space`."""

    # ---------------------------------------------------------------- traces

    def trace(self, variant: str = "plain") -> Trace:
        """Return the (cached) dynamic trace for ``variant``.

        Args:
            variant: ``'plain'`` for the unmodified benchmark or
                ``'software'`` for the software-prefetch version (extra
                prefetch instructions plus their address-generation
                overhead).

        Returns:
            The validated :class:`~repro.cpu.trace.Trace`; emitted once per
            variant and cached, so every prefetch mode simulates the same
            dynamic instruction stream.

        Raises:
            WorkloadError: For an unknown variant, or for ``'software'``
                when :meth:`supports_software_prefetch` is ``False``.
        """

        self._require_built()
        if variant not in ("plain", "software"):
            raise WorkloadError(f"unknown trace variant {variant!r}")
        if variant == "software" and not self.supports_software_prefetch():
            raise WorkloadError(
                f"{self.name}: software prefetching cannot be expressed "
                "(no direct memory address access)"
            )
        if variant not in self._traces:
            builder = TraceBuilder()
            if variant == "plain":
                self._emit_trace(builder, software_prefetch=False)
            else:
                self._emit_trace(builder, software_prefetch=True)
            trace = builder.build()
            trace.validate()
            self._traces[variant] = trace
        return self._traces[variant]

    @abstractmethod
    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        """Emit the benchmark's dynamic trace into ``tb``."""

    def supports_software_prefetch(self) -> bool:
        """Whether a software-prefetch variant exists (PageRank's does not)."""

        return True

    # ------------------------------------------------------ prefetcher modes

    def manual_configuration(self) -> PrefetcherConfiguration:
        """Hand-written PPU kernels and configuration (the paper's 'manual').

        Returns:
            The validated, cached :class:`PrefetcherConfiguration` —
            kernels, tags, filter ranges, streams and global registers —
            that :func:`repro.sim.system.simulate` installs for the
            ``manual`` and ``manual-blocked`` modes.
        """

        self._require_built()
        if self._manual is None:
            self._manual = self._build_manual_configuration()
            self._manual.validate()
        return self._manual

    @abstractmethod
    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        ...

    def derived_kernels(self) -> DerivedKernels:
        """Run (and cache) the loop-IR → manual-kernel derivation pipeline.

        Returns:
            The full :class:`~repro.compiler.pipeline.DerivedKernels` record
            — every pipeline stage, not just the configuration — which the
            dump tool uses to show intermediates.
        """

        self._require_built()
        if self._derived is None:
            loop, bindings = self.loop_ir()
            self._derived = derive_manual_configuration(
                loop, bindings, kernel_prefix=f"{self._prefix()}_gen"
            )
        return self._derived

    def derived_manual_configuration(self) -> PrefetcherConfiguration:
        """Manual-mode configuration derived from the loop IR (``compiled``).

        Raises:
            WorkloadError: When the pipeline produces no kernels for this
                workload (its loop IR cannot express the hand-written
                behaviour; see :attr:`derive_note`).
        """

        derived = self.derived_kernels()
        if not derived.derived:
            reasons = "; ".join(f"{source}: {reason}" for source, reason in derived.failures)
            note = f" ({self.derive_note})" if self.derive_note else ""
            raise WorkloadError(
                f"{self.name}: the compiler pipeline derived no manual kernels{note}"
                + (f" — {reasons}" if reasons else "")
            )
        return derived.configuration

    def resolve_kernel_source(self, explicit: Optional[str] = None) -> str:
        """Resolve the manual-kernel source for this workload instance."""

        return resolve_kernel_source(
            explicit, default=self.kernel_source, derivable=self.derives_manual
        )

    def manual_configuration_for(self, kernel_source: str) -> PrefetcherConfiguration:
        """The manual configuration for an already-resolved kernel source."""

        if kernel_source == "compiled":
            return self.derived_manual_configuration()
        if kernel_source == "hand":
            return self.manual_configuration()
        raise WorkloadError(
            f"unknown kernel source {kernel_source!r}; expected one of {KERNEL_SOURCES}"
        )

    def loop_ir(self) -> tuple[Loop, Mapping[str, int]]:
        """The loop IR + parameter bindings the compiler passes operate on.

        Returns:
            A ``(loop, bindings)`` pair: the annotated
            :class:`~repro.compiler.ir.Loop` and the concrete values
            (array base addresses, trip counts, masks) the conversion and
            pragma passes substitute for its parameters.
        """

        self._require_built()
        return self._build_loop_ir()

    @abstractmethod
    def _build_loop_ir(self) -> tuple[Loop, Mapping[str, int]]:
        ...

    def converted_configuration(self) -> PrefetcherConfiguration:
        """Configuration produced by the software-prefetch conversion pass."""

        self._require_built()
        if self._converted is None:
            loop, bindings = self.loop_ir()
            result = convert_software_prefetches(loop, bindings, kernel_prefix=f"{self._prefix()}_conv")
            self._converted = result.configuration
        return self._converted

    def pragma_configuration(self) -> PrefetcherConfiguration:
        """Configuration produced by the pragma pass."""

        self._require_built()
        if self._pragma is None:
            loop, bindings = self.loop_ir()
            result = generate_from_pragma(loop, bindings, kernel_prefix=f"{self._prefix()}_pragma")
            self._pragma = result.configuration
        return self._pragma

    def _prefix(self) -> str:
        return self.name.replace("-", "_")

    # ----------------------------------------------------------------- extras

    def config_overhead_ops(self, configuration: PrefetcherConfiguration) -> int:
        """Main-core instructions spent configuring the prefetcher."""

        return configuration.config_instruction_count()

    def description(self) -> dict[str, str]:
        return {
            "name": self.name,
            "pattern": self.pattern,
            "paper_input": self.paper_input,
            "repro_input": self.repro_input,
            "scale": self.scale.name,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(scale={self.scale.name!r}, seed={self.seed})"
