"""BFS — level-synchronous frontier breadth-first search (off-paper).

A frontier-based BFS over the R-MAT generator: instead of the Graph500 FIFO
work queue (``g500-csr``), each level's frontier is materialised in a flat
array that the next level streams through.  The access pattern is the
"bring your own kernel" cousin of G500-CSR: a perfectly strided read of the
frontier buffer, an indirect gather of each frontier vertex's CSR offsets, a
streamed edge walk, and an indirect check/update of the distance array.

The frontier is stored as one append-only *frontier log*: each discovered
vertex is appended once and never overwritten, with per-level slices
delimited in the traversal loop.  A single prefetcher address range covers
the whole log, and — because simulated stores are timing-only (the address
space is not mutated during replay) — the values the PPU kernels read at
simulation time are exactly the values the trace was emitted against.  The
manual PPU programming is two event chains: frontier reads look ahead along
the log and chase ``frontier → row_offsets``, while demand reads of the
edge array stream it ahead and fetch the distance entries of upcoming
destinations.

This workload is not part of the paper's Table 2; it exists to demonstrate
the registry path for adding new irregular kernels (see docs/workloads.md).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..compiler.frontend import parse_loop, prefetch
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from .base import Workload
from .data.rmat import generate_rmat_csr
from .kernels import add_stride_indirect_chain, identity_transform
from .registry import register_workload

SOFTWARE_PREFETCH_DISTANCE = 8


@register_workload()
class FrontierBFSWorkload(Workload):
    """Level-synchronous BFS with array frontiers over an R-MAT graph."""

    name = "bfs"
    pattern = "Frontier-stride-indirect + edge walks"
    paper_input = "— (off-paper workload)"
    repro_input = "R-MAT scale 11, edge factor 5, array frontiers (scaled)"
    derives_manual = True

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        if self.scale.factor >= 1.0:
            self.graph_scale = 11
        elif self.scale.factor >= 0.3:
            self.graph_scale = 10
        else:
            self.graph_scale = 8
        self.edge_factor = 5

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        graph = generate_rmat_csr(self.graph_scale, self.edge_factor, seed=self.seed)
        vertices = graph.num_vertices

        self.row_offsets = self.space.allocate_array(
            "bfs2_row_offsets", vertices + 1, values=graph.row_offsets
        )
        self.columns = self.space.allocate_array(
            "bfs2_columns", max(1, graph.num_edges), values=graph.columns
        )
        self.dist = self.space.allocate_array(
            "bfs2_dist", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        # Append-only frontier log: every vertex enters at most once, so one
        # allocation of |V| entries holds all levels back to back and no
        # entry the trace reads is ever overwritten by a later level.
        self.frontier = self.space.allocate_array(
            "bfs2_frontier", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        self._graph = graph
        degrees = np.diff(graph.row_offsets)
        self._root = int(np.argmax(degrees))

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        graph = self._graph
        dist = np.zeros(graph.num_vertices, dtype=np.int64)
        sp_dist = SOFTWARE_PREFETCH_DISTANCE

        # Seed level 0.  Distance labels are level + 1 so 0 means unvisited.
        self.frontier[0] = self._root
        dist[self._root] = 1
        self.dist[self._root] = 1
        level_start, level_end = 0, 1  # log slice [start, end) of this level
        appended = 1
        level = 0

        while level_start < level_end:
            for i in range(level_start, level_end):
                vertex = int(self.frontier[i])
                if software_prefetch and i + sp_dist < level_end:
                    future_entry = tb.load(self.frontier.addr_of(i + sp_dist))
                    tb.software_prefetch(
                        self.row_offsets.addr_of(int(self.frontier[i + sp_dist])),
                        deps=[future_entry],
                    )
                frontier_load = tb.load(self.frontier.addr_of(i))
                start = int(graph.row_offsets[vertex])
                end = int(graph.row_offsets[vertex + 1])
                offsets_load = tb.load(self.row_offsets.addr_of(vertex), deps=[frontier_load])
                tb.load(self.row_offsets.addr_of(vertex + 1), deps=[frontier_load])

                for edge in range(start, end):
                    dest = int(graph.columns[edge])
                    if software_prefetch and edge + sp_dist < len(self.columns):
                        future_edge = tb.load(self.columns.addr_of(edge + sp_dist))
                        tb.software_prefetch(
                            self.dist.addr_of(int(graph.columns[edge + sp_dist])),
                            deps=[future_edge],
                        )
                    edge_load = tb.load(self.columns.addr_of(edge), deps=[offsets_load])
                    dist_load = tb.load(self.dist.addr_of(dest), deps=[edge_load])
                    tb.compute(2, deps=[dist_load])
                    tb.branch(deps=[dist_load])
                    if dist[dest] == 0:
                        dist[dest] = level + 2
                        self.dist[dest] = level + 2
                        tb.store(self.dist.addr_of(dest), deps=[dist_load])
                        self.frontier[appended] = dest
                        tb.store(self.frontier.addr_of(appended), deps=[dist_load])
                        appended += 1
                tb.branch()
            level_start, level_end = level_end, appended
            level += 1

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        # Chain 1: frontier reads look ahead along the buffer; the fetched
        # vertex id gathers its CSR offsets.
        add_stride_indirect_chain(
            config,
            prefix="bfs2",
            root_name="frontier",
            root_base=self.frontier.base_addr,
            root_end=self.frontier.end_addr,
            target_name="row_offsets",
            target_base=self.row_offsets.base_addr,
            transform=identity_transform,
            default_distance=4,
        )
        # Chain 2: demand reads of the edge array stream it ahead and fetch
        # the distance entries of the upcoming destinations (the same
        # large-vertex schedule G500-CSR uses).
        add_stride_indirect_chain(
            config,
            prefix="bfs2_edges",
            root_name="columns",
            root_base=self.columns.base_addr,
            root_end=self.columns.end_addr,
            target_name="dist",
            target_base=self.dist.base_addr,
            target_end=self.dist.end_addr,
            transform=identity_transform,
            default_distance=16,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        # The traversal is written as plain Python and *parsed* into the loop
        # IR; the prefetch hints carry the hand-tuned stream names, seed
        # distances and the chain-end choice, so the derivation pipeline
        # reproduces the hand-written configuration exactly.  The per-vertex
        # edge walk is a data-dependent inner loop: its loads are control
        # dependent and out of reach of both compiler passes.
        def traversal(i, frontier, row_offsets, columns, dist):
            prefetch(
                row_offsets[frontier[i + SOFTWARE_PREFETCH_DISTANCE]],
                stream="bfs2_frontier",
                distance=4,
                chain_end=False,
                name="swpf_offsets",
            )
            prefetch(
                dist[columns[i + SOFTWARE_PREFETCH_DISTANCE]],
                stream="bfs2_edges_columns",
                distance=16,
                name="swpf_dist_stream",
            )
            row_offsets[frontier[i]]
            dist[columns[i]]
            for edge in range(row_offsets[frontier[i]], row_offsets[frontier[i] + 1]):
                columns[edge]

        loop = parse_loop(
            traversal,
            name="bfs",
            arrays=[
                ir.ArrayDecl("frontier", "frontier_base", length_param="frontier_len"),
                ir.ArrayDecl("row_offsets", "offsets_base", length_param="num_offsets"),
                ir.ArrayDecl("columns", "columns_base", length_param="num_edges"),
                ir.ArrayDecl("dist", "dist_base", length_param="num_vertices"),
            ],
            trip_count_param="frontier_len",
            pragma_prefetch=True,
            constants={"SOFTWARE_PREFETCH_DISTANCE": SOFTWARE_PREFETCH_DISTANCE},
        )

        bindings = {
            "frontier_base": self.frontier.base_addr,
            "offsets_base": self.row_offsets.base_addr,
            "columns_base": self.columns.base_addr,
            "dist_base": self.dist.base_addr,
            "frontier_len": len(self.frontier),
            "num_offsets": self._graph.num_vertices + 1,
            "num_edges": len(self.columns),
            "num_vertices": self._graph.num_vertices,
        }
        return loop, bindings
