"""PageRank — pull-style PageRank iteration over an R-MAT web graph.

The paper uses the Boost Graph Library PageRank on the web-Google graph.  The
kernel is a stride-indirect gather: the edge (source-vertex) array streams
sequentially while the rank and out-degree of each source vertex are gathered
through it.  The BGL implementation works on high-level iterators, so the
paper could not insert software prefetches — the *software* and *converted*
bars are absent from Figure 7 — but the pragma pass (which sees the IR, not
the iterator abstraction) and manual programming both work.  This workload
reproduces exactly that asymmetry: :meth:`supports_software_prefetch` is
False, so the software/converted modes are unavailable, while pragma and
manual configurations are provided.

web-Google is not redistributable here; an R-MAT graph with comparable degree
skew stands in for it (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from .base import Workload
from .registry import register_workload
from .data.rmat import generate_rmat_csr
from .kernels import add_stride_indirect_chain, identity_transform


@register_workload(paper_reference=True)
class PageRankWorkload(Workload):
    """One pull-style PageRank sweep (rank gather through the edge array)."""

    name = "pagerank"
    pattern = "Stride-indirect"
    paper_input = "web-Google"
    repro_input = "R-MAT scale 14, edge factor 6, ~18k-edge sweep (scaled)"
    derive_note = (
        "The loop IR contains no software-prefetch statement (the paper "
        "applies no SWPF to PageRank), so the pipeline has nothing to anchor "
        "a chain on; the manual configuration is written directly against the "
        "stride-indirect helper with a multi-target fan-out."
    )

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        self.graph_scale = 14 if self.scale.factor >= 1.0 else (12 if self.scale.factor >= 0.3 else 9)
        self.edge_factor = 6
        self.edge_budget = self.scale.scaled(18000, minimum=512)

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        graph = generate_rmat_csr(
            self.graph_scale, self.edge_factor, seed=self.seed, undirected=False
        )
        vertices = graph.num_vertices
        rng = np.random.default_rng(self.seed)

        self.row_offsets = self.space.allocate_array(
            "pr_row_offsets", vertices + 1, values=graph.row_offsets
        )
        self.sources = self.space.allocate_array("pr_sources", max(1, graph.num_edges), values=graph.columns)
        self.rank = self.space.allocate_array(
            "pr_rank", vertices, values=rng.integers(1, 1 << 20, size=vertices, dtype=np.int64)
        )
        self.outdeg = self.space.allocate_array(
            "pr_outdeg",
            vertices,
            values=np.maximum(1, np.diff(graph.row_offsets)),
        )
        self.new_rank = self.space.allocate_array(
            "pr_new_rank", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        self._graph = graph

    # ----------------------------------------------------------------- trace

    def supports_software_prefetch(self) -> bool:
        return False

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        del software_prefetch  # unreachable: supports_software_prefetch() is False
        graph = self._graph
        edges_done = 0
        for vertex in range(graph.num_vertices):
            if edges_done >= self.edge_budget:
                break
            start = int(graph.row_offsets[vertex])
            end = int(graph.row_offsets[vertex + 1])
            if start == end:
                continue
            row_load = tb.load(self.row_offsets.addr_of(vertex))
            tb.load(self.row_offsets.addr_of(vertex + 1))
            accumulate = row_load
            for edge in range(start, end):
                source = int(graph.columns[edge])
                src_load = tb.load(self.sources.addr_of(edge), deps=[row_load])
                rank_load = tb.load(self.rank.addr_of(source), deps=[src_load])
                deg_load = tb.load(self.outdeg.addr_of(source), deps=[src_load])
                accumulate = tb.compute(5, deps=[rank_load, deg_load, accumulate])
                edges_done += 1
            tb.store(self.new_rank.addr_of(vertex), deps=[accumulate])
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        add_stride_indirect_chain(
            config,
            prefix="pr",
            root_name="sources",
            root_base=self.sources.base_addr,
            root_end=self.sources.end_addr,
            target_name="rank",
            target_base=self.rank.base_addr,
            target_end=self.rank.end_addr,
            transform=identity_transform,
            extra_targets=[("outdeg", self.outdeg.base_addr, 3, identity_transform)],
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        sources_decl = ir.ArrayDecl("sources", "sources_base", length_param="num_edges")
        rank_decl = ir.ArrayDecl("rank", "rank_base", length_param="num_vertices")
        outdeg_decl = ir.ArrayDecl("outdeg", "outdeg_base", length_param="num_vertices")
        loop = ir.Loop(
            "pagerank",
            ir.IndexVar("e"),
            trip_count_param="num_edges",
            arrays=[sources_decl, rank_decl, outdeg_decl],
            pragma_prefetch=True,
        )
        e = loop.indvar
        source = ir.Load(sources_decl, e)
        rank = ir.Load(rank_decl, source)
        outdeg = ir.Load(outdeg_decl, ir.Load(sources_decl, e))
        loop.add(ir.LoadStmt(rank))
        loop.add(ir.LoadStmt(outdeg))
        loop.add(ir.ComputeStmt(3, uses=(rank, outdeg)))
        bindings = {
            "sources_base": self.sources.base_addr,
            "rank_base": self.rank.base_addr,
            "outdeg_base": self.outdeg.base_addr,
            "num_edges": len(self.sources),
            "num_vertices": self._graph.num_vertices,
        }
        return loop, bindings
