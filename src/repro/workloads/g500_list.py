"""Graph500 breadth-first search over linked edge lists (G500-List).

Identical traversal to :mod:`repro.workloads.g500_csr`, but each vertex's
edges are stored as a linked list of nodes scattered through memory instead
of a contiguous CSR slice.  Walking a list is inherently sequential — each
node's address comes from the previous node — so there is no fine-grained
memory-level parallelism to mine; the paper reports this as its lowest
speedup (1.7×), with prefetches arriving early enough only to help the L2,
and about 40 % extra memory traffic.  The manual kernels here walk the list
through a self-re-triggering tagged event, exactly as the hardware would.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..config import WORD_BYTES
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from ..programmable.kernel import KernelBuilder
from .base import Workload
from .registry import register_workload
from .data.rmat import generate_rmat_csr

SOFTWARE_PREFETCH_DISTANCE = 8

#: Edge-node layout: [dest, next] — 16 bytes.
_NODE_WORDS = 2


@register_workload(paper_reference=True)
class Graph500ListWorkload(Workload):
    """Graph500 BFS with linked-list edge storage."""

    name = "g500-list"
    pattern = "BFS (lists)"
    paper_input = "-s 16 -e 10"
    repro_input = "R-MAT scale 12, edge factor 4, linked edge lists (scaled)"
    derive_note = (
        "The hand configuration walks linked edge lists with three "
        "interlinked fill kernels re-triggering each other through tags; the "
        "loop IR records only the first-hop software prefetch, so derivation "
        "reproduces a single chain and misses the list walk."
    )

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        if self.scale.factor >= 1.0:
            self.graph_scale = 12
        elif self.scale.factor >= 0.3:
            self.graph_scale = 10
        else:
            self.graph_scale = 8
        self.edge_factor = 4

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        graph = generate_rmat_csr(self.graph_scale, self.edge_factor, seed=self.seed)
        vertices = graph.num_vertices
        rng = np.random.default_rng(self.seed)

        self.heads = self.space.allocate_array(
            "list_heads", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        num_edges = max(1, graph.num_edges)
        self.nodes = self.space.allocate_array(
            "list_nodes", num_edges * _NODE_WORDS, values=np.zeros(num_edges * _NODE_WORDS, dtype=np.int64)
        )
        self.visited = self.space.allocate_array(
            "list_visited", vertices, values=np.zeros(vertices, dtype=np.int64)
        )
        self.queue = self.space.allocate_array(
            "list_queue", vertices, values=np.zeros(vertices, dtype=np.int64)
        )

        # Build the per-vertex edge lists from the CSR graph, allocating the
        # nodes in a random order so list traversal jumps around memory.
        placement = rng.permutation(graph.num_edges)
        slot_of_edge = np.empty(graph.num_edges, dtype=np.int64)
        slot_of_edge[placement] = np.arange(graph.num_edges)
        for vertex in range(vertices):
            start = int(graph.row_offsets[vertex])
            end = int(graph.row_offsets[vertex + 1])
            head = 0
            for edge in range(start, end):
                slot = int(slot_of_edge[edge])
                node_addr = self.nodes.addr_of(slot * _NODE_WORDS)
                self.nodes[slot * _NODE_WORDS] = int(graph.columns[edge])
                self.nodes[slot * _NODE_WORDS + 1] = head
                head = node_addr
            self.heads[vertex] = head

        self._graph = graph
        degrees = np.diff(graph.row_offsets)
        self._root = int(np.argmax(degrees))

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        graph = self._graph
        visited = np.zeros(graph.num_vertices, dtype=bool)
        dist = SOFTWARE_PREFETCH_DISTANCE

        self.queue[0] = self._root
        visited[self._root] = True
        self.visited[self._root] = 1
        head_index, tail = 0, 1

        while head_index < tail:
            if software_prefetch and head_index + dist < tail:
                future_entry = tb.load(self.queue.addr_of(head_index + dist))
                tb.software_prefetch(
                    self.heads.addr_of(int(self.queue[head_index + dist])),
                    deps=[future_entry],
                )
            queue_load = tb.load(self.queue.addr_of(head_index))
            vertex = int(self.queue[head_index])
            head_index += 1

            head_load = tb.load(self.heads.addr_of(vertex), deps=[queue_load])
            node_addr = self.space.read_word(self.heads.addr_of(vertex))
            previous = head_load
            while node_addr != 0:
                dest_load = tb.load(node_addr, deps=[previous])
                next_load = tb.load(node_addr + WORD_BYTES, deps=[previous])
                dest = self.space.read_word(node_addr)
                visited_load = tb.load(self.visited.addr_of(dest), deps=[dest_load])
                tb.compute(2, deps=[visited_load])
                tb.branch(deps=[visited_load])
                if not visited[dest]:
                    visited[dest] = True
                    self.visited[dest] = 1
                    tb.store(self.visited.addr_of(dest), deps=[visited_load])
                    self.queue[tail] = dest
                    tb.store(self.queue.addr_of(tail), deps=[visited_load])
                    tail += 1
                previous = next_load
                node_addr = self.space.read_word(node_addr + WORD_BYTES)
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        stream = "list_queue"
        config.add_stream(stream, default_distance=4)
        queue_base = config.set_global("list_queue_base", self.queue.base_addr)
        heads_base = config.set_global("list_heads_base", self.heads.base_addr)
        visited_base = config.set_global("list_visited_base", self.visited.base_addr)

        # Kernel 4: an edge node arrived — prefetch its destination's visited
        # entry and follow the next pointer (self-re-triggering walk).
        node_kernel = KernelBuilder("list_on_node_fill")
        vbase = node_kernel.get_global(visited_base)
        vaddr = node_kernel.get_vaddr()
        offset = node_kernel.and_(node_kernel.shr(vaddr, 3), 7)
        dest = node_kernel.line_word(offset)
        node_kernel.prefetch(node_kernel.add(vbase, node_kernel.shl(dest, 3)))
        next_ptr = node_kernel.line_word(node_kernel.add(offset, 1))
        node_kernel.branch_eq(next_ptr, 0, "done")
        node_kernel.prefetch(next_ptr, tag=0)  # tag 0 == list_node_fill (asserted below)
        node_kernel.label("done")
        node_kernel.halt()
        config.add_kernel(node_kernel.build())
        node_tag = config.add_tag("list_node_fill", "list_on_node_fill", stream=stream, chain_end=True)
        if node_tag != 0:
            raise AssertionError("list node tag expected to be 0")

        # Kernel 3: the head pointer arrived — start the list walk.
        head_kernel = KernelBuilder("list_on_head_fill")
        pointer = head_kernel.get_data()
        head_kernel.branch_eq(pointer, 0, "empty")
        head_kernel.prefetch(pointer, tag=node_tag)
        head_kernel.label("empty")
        head_kernel.halt()
        config.add_kernel(head_kernel.build())
        head_tag = config.add_tag("list_head_fill", "list_on_head_fill", stream=stream)

        # Kernel 2: a future queue entry arrived — fetch its head pointer.
        queue_fill = KernelBuilder("list_on_queue_fill")
        vertex_id = queue_fill.get_data()
        queue_fill.prefetch(
            queue_fill.add(queue_fill.get_global(heads_base), queue_fill.shl(vertex_id, 3)),
            tag=head_tag,
        )
        config.add_kernel(queue_fill.build())
        queue_tag = config.add_tag("list_queue_fill", "list_on_queue_fill", stream=stream)

        # Kernel 1: the core read a queue entry — prefetch a future entry.
        queue_load = KernelBuilder("list_on_queue_load")
        qbase = queue_load.get_global(queue_base)
        qaddr = queue_load.get_vaddr()
        index = queue_load.shr(queue_load.sub(qaddr, qbase), 3)
        lookahead = queue_load.get_lookahead(config.stream_index(stream))
        queue_load.prefetch(
            queue_load.add(qbase, queue_load.shl(queue_load.add(index, lookahead), 3)),
            tag=queue_tag,
        )
        config.add_kernel(queue_load.build())

        config.add_range(
            "list_queue",
            self.queue.base_addr,
            self.queue.end_addr,
            load_kernel="list_on_queue_load",
            stream=stream,
            time_iterations=True,
            chain_start=True,
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        queue_decl = ir.ArrayDecl("queue", "queue_base", length_param="num_vertices")
        heads_decl = ir.ArrayDecl("heads", "heads_base", length_param="num_vertices")
        heap_decl = ir.ArrayDecl("heap", "zero_base", element_bytes=1)
        visited_decl = ir.ArrayDecl("visited", "visited_base", length_param="num_vertices")
        loop = ir.Loop(
            "g500_list",
            ir.IndexVar("i"),
            trip_count_param="num_vertices",
            arrays=[queue_decl, heads_decl, heap_decl, visited_decl],
            pragma_prefetch=True,
            has_irregular_control_flow=True,
        )
        i = loop.indvar

        # A software prefetch can reach the head pointer of a future frontier
        # vertex; everything past it is a pointer chase behind control flow.
        loop.add(
            ir.SoftwarePrefetchStmt(
                heads_decl,
                ir.Load(queue_decl, ir.add(i, SOFTWARE_PREFETCH_DISTANCE)),
                name="swpf_head",
            )
        )
        head_pointer = ir.Load(heads_decl, ir.Load(queue_decl, i))
        loop.add(ir.LoadStmt(head_pointer))
        loop.add(ir.LoadStmt(ir.Load(heap_decl, head_pointer, control_dependent=True)))

        bindings = {
            "queue_base": self.queue.base_addr,
            "heads_base": self.heads.base_addr,
            "visited_base": self.visited.base_addr,
            "zero_base": 0,
            "num_vertices": self._graph.num_vertices,
        }
        return loop, bindings
