"""ConjGrad — the NAS CG sparse matrix-vector multiply kernel.

The memory-bound core of conjugate gradient is the SpMV ``y[r] += a[k] *
x[colidx[k]]``: the column-index and value arrays stream sequentially while
``x`` is gathered through the column indices — a stride-indirect pattern over
a vector too large to cache.  The paper runs NAS class B; this reproduction
uses a random sparse matrix whose gather vector exceeds the scaled L2.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compiler import ir
from ..cpu.trace import TraceBuilder
from ..programmable.config_api import PrefetcherConfiguration
from .base import Workload
from .registry import register_workload
from .kernels import add_stride_indirect_chain, identity_transform

SOFTWARE_PREFETCH_DISTANCE = 32


@register_workload(paper_reference=True)
class ConjGradWorkload(Workload):
    """NAS CG sparse matrix-vector multiplication."""

    name = "conjgrad"
    pattern = "Stride-indirect"
    paper_input = "NAS class B"
    repro_input = "4,096-row sparse matrix, 6 nnz/row, 65,536-entry vector (scaled)"
    derive_note = (
        "The tuned manual configuration couples an avals streaming kernel to "
        "the colidx stream's look-ahead register; the loop IR has no construct "
        "for cross-stream coupling, so derivation would silently drop that "
        "kernel and lose the tuned look-ahead distance."
    )

    def __init__(self, scale: str = "default", seed: int = 42) -> None:
        super().__init__(scale=scale, seed=seed)
        self.num_rows = self.scale.scaled(4096, minimum=128)
        self.nnz_per_row = 6
        self.num_cols = self.scale.scaled(65536, minimum=2048)

    # ------------------------------------------------------------------ data

    def _build_data(self) -> None:
        rng = np.random.default_rng(self.seed)
        nnz = self.num_rows * self.nnz_per_row
        columns = rng.integers(0, self.num_cols, size=nnz, dtype=np.int64)
        row_offsets = np.arange(0, nnz + 1, self.nnz_per_row, dtype=np.int64)
        values = rng.integers(1, 1 << 20, size=nnz, dtype=np.int64)
        x_values = rng.integers(1, 1 << 20, size=self.num_cols, dtype=np.int64)

        self.row_offsets = self.space.allocate_array("row_offsets", self.num_rows + 1, values=row_offsets)
        self.colidx = self.space.allocate_array("colidx", nnz, values=columns)
        self.avals = self.space.allocate_array("avals", nnz, values=values)
        self.x = self.space.allocate_array("x", self.num_cols, values=x_values)
        self.y = self.space.allocate_array("y", self.num_rows, values=np.zeros(self.num_rows, dtype=np.int64))
        self._columns = columns
        self._nnz = nnz

    # ----------------------------------------------------------------- trace

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        dist = SOFTWARE_PREFETCH_DISTANCE
        columns = self._columns
        k = 0
        for row in range(self.num_rows):
            row_start = tb.load(self.row_offsets.addr_of(row))
            tb.load(self.row_offsets.addr_of(row + 1))
            accumulate: list[int] = []
            for _ in range(self.nnz_per_row):
                if software_prefetch and k + dist < self._nnz:
                    future_col = tb.load(self.colidx.addr_of(k + dist))
                    tb.software_prefetch(
                        self.x.addr_of(int(columns[k + dist])), deps=[future_col]
                    )
                col_load = tb.load(self.colidx.addr_of(k), deps=[row_start])
                x_load = tb.load(self.x.addr_of(int(columns[k])), deps=[col_load])
                a_load = tb.load(self.avals.addr_of(k), deps=[row_start])
                accumulate.append(tb.compute(4, deps=[x_load, a_load]))
                k += 1
            tb.store(self.y.addr_of(row), deps=accumulate[-1:])
            tb.branch()

    # ---------------------------------------------------------------- manual

    def _build_manual_configuration(self) -> PrefetcherConfiguration:
        config = PrefetcherConfiguration()
        add_stride_indirect_chain(
            config,
            prefix="cg",
            root_name="colidx",
            root_base=self.colidx.base_addr,
            root_end=self.colidx.end_addr,
            target_name="x",
            target_base=self.x.base_addr,
            target_end=self.x.end_addr,
            transform=identity_transform,
        )
        # The value array streams alongside colidx; a single-event kernel
        # keeps it ahead of the core as well (it shares the colidx stream's
        # look-ahead since the two arrays advance in lock step).
        stream_index = config.stream_index("cg_colidx")
        avals_base = config.set_global("cg_avals_base", self.avals.base_addr)
        from ..programmable.kernel import KernelBuilder

        builder = KernelBuilder("cg_on_avals_load")
        base = builder.get_global(avals_base)
        vaddr = builder.get_vaddr()
        element = builder.shr(builder.sub(vaddr, base), 3)
        lookahead = builder.get_lookahead(stream_index)
        builder.prefetch(
            builder.add(base, builder.shl(builder.add(element, lookahead), 3)), tag=-1
        )
        config.add_kernel(builder.build())
        config.add_range(
            "cg_avals",
            self.avals.base_addr,
            self.avals.end_addr,
            load_kernel="cg_on_avals_load",
        )
        return config

    # -------------------------------------------------------------- compiler

    def _build_loop_ir(self) -> tuple[ir.Loop, Mapping[str, int]]:
        colidx_decl = ir.ArrayDecl("colidx", "colidx_base", length_param="nnz")
        x_decl = ir.ArrayDecl("x", "x_base", length_param="num_cols")
        avals_decl = ir.ArrayDecl("avals", "avals_base", length_param="nnz")
        loop = ir.Loop(
            "conjgrad",
            ir.IndexVar("k"),
            trip_count_param="nnz",
            arrays=[colidx_decl, x_decl, avals_decl],
            pragma_prefetch=True,
        )
        k = loop.indvar
        loop.add(
            ir.SoftwarePrefetchStmt(
                x_decl,
                ir.Load(colidx_decl, ir.add(k, SOFTWARE_PREFETCH_DISTANCE)),
                name="swpf_x",
            )
        )
        gather = ir.Load(x_decl, ir.Load(colidx_decl, k))
        value = ir.Load(avals_decl, k)
        loop.add(ir.LoadStmt(gather))
        loop.add(ir.ComputeStmt(2, uses=(gather, value)))
        bindings = {
            "colidx_base": self.colidx.base_addr,
            "x_base": self.x.base_addr,
            "avals_base": self.avals.base_addr,
            "nnz": self._nnz,
            "num_cols": self.num_cols,
        }
        return loop, bindings
