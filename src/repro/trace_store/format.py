"""Compact binary encoding of trace artifacts.

One artifact file is::

    magic  b"RTRC"                      (4 bytes)
    format version                      (u16, little-endian)
    reserved                            (u16, zero)
    header length                       (u32)
    header JSON                         (UTF-8; see below)
    5 column blobs, each: u64 length + raw ``array.tobytes()`` payload
        kinds ('b'), addrs ('q'), counts ('q'),
        dep_offsets ('q'), dep_values ('q')
    SHA-256 of every preceding byte     (32 bytes)

The header JSON records the artifact identity (workload, variant, scale,
seed), the workload-code digest the entry was keyed under, the op /
instruction / dependence counts (cross-checked against the blobs on
decode), the region table, the software-prefetch support flag and the
emitting machine's byte order (column payloads are native-endian; a
mismatch decodes as corruption, i.e. a store miss — the store is per
machine, not portable).

Every structural problem — bad magic, unknown version, truncated blobs,
checksum mismatch, inconsistent counts — raises
:class:`~repro.errors.TraceStoreError`; the store converts that into a
cache miss so a corrupt file can never poison a simulation.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array

from ..cpu.trace import COLUMN_TYPECODES, Trace
from ..errors import TraceStoreError
from .artifact import RegionSpec, TraceArtifact

#: File magic of trace artifacts.
MAGIC = b"RTRC"

#: On-disk format version; bump on any layout change (old entries then
#: simply read as misses and are re-emitted).
FORMAT_VERSION = 1

_PREAMBLE = struct.Struct("<4sHHI")
_BLOB_LEN = struct.Struct("<Q")
_CHECKSUM_BYTES = 32


def encode_artifact(artifact: TraceArtifact, *, digest: str = "") -> bytes:
    """Serialise ``artifact`` to the on-disk byte layout.

    ``digest`` (the store key) is recorded in the header so files are
    self-describing for the maintenance CLI; it does not participate in
    decoding.
    """

    trace = artifact.trace
    header = {
        "workload": artifact.workload,
        "variant": artifact.variant,
        "scale": artifact.scale,
        "seed": artifact.seed,
        "digest": digest,
        "supports_software": artifact.supports_software,
        "regions": [[r.name, r.base, r.size_bytes] for r in artifact.regions],
        "ops": len(trace),
        "instructions": trace.instruction_count(),
        "deps": len(trace.columns()[4]),
        "byteorder": sys.byteorder,
    }
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    parts = [_PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(header_bytes)), header_bytes]
    for column in trace.columns():
        blob = column.tobytes()
        parts.append(_BLOB_LEN.pack(len(blob)))
        parts.append(blob)
    payload = b"".join(parts)
    return payload + hashlib.sha256(payload).digest()


def decode_header(data) -> dict:
    """Parse and return only the header JSON (used by the maintenance CLI).

    Validates the preamble but not the column blobs or the checksum, so it
    stays cheap for ``ls`` over a large store.  ``data`` may be any
    bytes-like buffer (``bytes``, ``memoryview``, ...).
    """

    if len(data) < _PREAMBLE.size:
        raise TraceStoreError("artifact truncated before the preamble")
    magic, version, _reserved, header_len = _PREAMBLE.unpack_from(data)
    if magic != MAGIC:
        raise TraceStoreError(f"bad artifact magic {magic!r}")
    if version != FORMAT_VERSION:
        raise TraceStoreError(f"unsupported artifact format version {version}")
    end = _PREAMBLE.size + header_len
    if len(data) < end:
        raise TraceStoreError("artifact truncated inside the header")
    try:
        header = json.loads(bytes(data[_PREAMBLE.size : end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceStoreError(f"artifact header is not valid JSON: {error}") from error
    if not isinstance(header, dict):
        raise TraceStoreError("artifact header is not a JSON object")
    return header


def read_header_from_file(path) -> dict:
    """Read and parse only an artifact file's header (preamble + JSON).

    This is what keeps ``trace_store.py ls``/``stat`` cheap on stores
    holding large-scale traces: the column blobs (the bulk of the file)
    are never read.  The checksum is likewise not verified — corruption in
    the unread portion surfaces as a miss when the entry is actually used.
    """

    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise TraceStoreError("artifact truncated before the preamble")
        _magic, _version, _reserved, header_len = _PREAMBLE.unpack(preamble)
        if header_len > 1 << 24:
            raise TraceStoreError(f"unreasonable header length {header_len}")
        return decode_header(preamble + handle.read(header_len))


def validate_artifact_bytes(data: bytes) -> bool:
    """Cheap structural check: preamble + checksum, no column decode.

    Used by the multiprocess parent before counting a store hit and
    shipping bytes to workers — a corrupt entry must read as a miss there
    too, or one trace would be reported both warm (parent) and emitted
    (every worker whose decode fell back to a rebuild).
    """

    if len(data) < _PREAMBLE.size + _CHECKSUM_BYTES:
        return False
    magic, version, _reserved, _header_len = _PREAMBLE.unpack_from(data)
    if magic != MAGIC or version != FORMAT_VERSION:
        return False
    payload, checksum = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
    return hashlib.sha256(payload).digest() == checksum


def decode_artifact(data) -> TraceArtifact:
    """Deserialise artifact bytes, verifying structure and checksum.

    ``data`` may be any bytes-like buffer: a ``memoryview`` over a shared
    memory segment decodes without an intermediate copy (only the column
    payloads are copied, once, into the ``array`` objects that own them),
    which is what lets the multiprocess runner ship one set of trace bytes
    to every worker instead of pickling a copy per chunk.

    Raises:
        TraceStoreError: On any corruption — truncation, bad magic/version,
            checksum mismatch, count/length inconsistencies or a foreign
            byte order.
    """

    if len(data) < _PREAMBLE.size + _CHECKSUM_BYTES:
        raise TraceStoreError("artifact truncated")
    payload, checksum = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
    if hashlib.sha256(payload).digest() != checksum:
        raise TraceStoreError("artifact checksum mismatch")
    header = decode_header(payload)
    try:
        if header["byteorder"] != sys.byteorder:
            raise TraceStoreError(
                f"artifact byte order {header['byteorder']!r} does not match this machine"
            )
        expected_ops = int(header["ops"])
        expected_deps = int(header["deps"])
        regions = tuple(
            RegionSpec(name=str(name), base=int(base), size_bytes=int(size))
            for name, base, size in header["regions"]
        )
        identity = {
            "workload": str(header["workload"]),
            "variant": str(header["variant"]),
            "scale": str(header["scale"]),
            "seed": int(header["seed"]),
            "supports_software": bool(header["supports_software"]),
        }
    except (KeyError, TypeError, ValueError) as error:
        raise TraceStoreError(f"artifact header is malformed: {error}") from error

    _magic, _version, _reserved, header_len = _PREAMBLE.unpack_from(payload)
    offset = _PREAMBLE.size + header_len

    columns: list[array] = []
    for typecode in COLUMN_TYPECODES:
        if offset + _BLOB_LEN.size > len(payload):
            raise TraceStoreError("artifact truncated inside a column length")
        (blob_len,) = _BLOB_LEN.unpack_from(payload, offset)
        offset += _BLOB_LEN.size
        if offset + blob_len > len(payload):
            raise TraceStoreError("artifact truncated inside a column blob")
        column = array(typecode)
        if blob_len % column.itemsize != 0:
            raise TraceStoreError(
                f"column blob of {blob_len} bytes is not a multiple of "
                f"itemsize {column.itemsize}"
            )
        column.frombytes(payload[offset : offset + blob_len])
        offset += blob_len
        columns.append(column)
    if offset != len(payload):
        raise TraceStoreError(f"{len(payload) - offset} trailing bytes after the columns")

    kinds, addrs, counts, dep_offsets, dep_values = columns
    if len(kinds) != expected_ops or len(dep_values) != expected_deps:
        raise TraceStoreError(
            f"column lengths ({len(kinds)} ops, {len(dep_values)} deps) do not "
            f"match the header ({expected_ops} ops, {expected_deps} deps)"
        )
    try:
        trace = Trace.from_columns(kinds, addrs, counts, dep_offsets, dep_values)
    except Exception as error:  # TraceError and friends → corruption
        raise TraceStoreError(f"artifact columns are inconsistent: {error}") from error
    if trace.instruction_count() != int(header["instructions"]):
        raise TraceStoreError("instruction count does not match the header")
    return TraceArtifact(
        workload=identity["workload"],
        variant=identity["variant"],
        scale=identity["scale"],
        seed=identity["seed"],
        supports_software=identity["supports_software"],
        regions=regions,
        trace=trace,
    )
