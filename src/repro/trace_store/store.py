"""Digest-keyed on-disk store of trace artifacts, shared across runs and workers.

Emitting a dynamic trace is the expensive part of most simulations at scale:
the workload rebuilds its data structures and re-runs its algorithm in pure
Python just to produce the exact same op stream it produced last time.  The
:class:`TraceStore` makes that a once-per-machine cost: every
``(workload, variant, scale, seed)`` trace is stored under a content digest
that also folds in the trace-affecting source code and the on-disk format
version, so a warm store returns bit-identical traces and any change that
could alter emission silently invalidates every stale entry.

Properties (mirroring :class:`~repro.sim.engine.cache.ResultCache`):

* **atomic writes** — write-then-rename, with a sweep of ``*.tmp.<pid>``
  leftovers whose writer died, so concurrent runs and multiprocess workers
  can share one directory;
* **corruption-tolerant reads** — any malformed entry (truncated, bad
  checksum, foreign byte order) is a miss, never an error;
* **an environment switch** — ``REPRO_TRACE_STORE`` selects the directory,
  ``REPRO_TRACE_STORE=off`` disables the tier entirely, and the default is
  a per-user cache directory so every run on a machine shares one store.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Optional, Union

from ..atomicio import atomic_write_bytes, sweep_dead_writer_tmp_files
from ..errors import TraceStoreError
from .artifact import TraceArtifact
from .format import (
    FORMAT_VERSION,
    decode_artifact,
    encode_artifact,
    read_header_from_file,
)

#: Environment variable controlling the store: unset → the per-user default
#: directory; a path → that directory; one of :data:`DISABLED_VALUES` → off.
TRACE_STORE_ENV = "REPRO_TRACE_STORE"

#: Values of :data:`TRACE_STORE_ENV` that disable the trace-artifact tier.
DISABLED_VALUES = frozenset({"off", "0", "none", "disabled"})


@dataclass
class TraceStoreStats:
    """What trace-artifact resolution did for one engine run.

    ``hits`` are traces warmed from the store (or from encoded columns a
    parent process shipped); ``built`` are traces that had to be emitted by
    running the workload; ``stored`` are freshly-emitted traces persisted
    for the next run.
    """

    hits: int = 0
    built: int = 0
    stored: int = 0

    def merge(self, other: "TraceStoreStats") -> None:
        self.hits += other.hits
        self.built += other.built
        self.stored += other.stored


# ------------------------------------------------------------------ digests


@lru_cache(maxsize=1)
def trace_code_fingerprint() -> str:
    """SHA-256 over the sources that determine trace emission.

    Narrower than the engine's whole-package
    :func:`~repro.sim.engine.request.code_fingerprint`: a stored trace only
    depends on the workload implementations (data generation + emission),
    the trace representation, the address-space/layout code that assigns
    virtual addresses, and the constants in ``config.py``.  Engine, eval or
    docs changes therefore do *not* invalidate the store — that is what
    makes "emitted once per machine, ever" real — while any edit that could
    change a single emitted op does.
    """

    package_root = Path(__file__).resolve().parents[1]
    relevant = sorted(
        path
        for path in (
            list((package_root / "workloads").rglob("*.py"))
            + [
                package_root / "cpu" / "trace.py",
                package_root / "memory" / "address_space.py",
                package_root / "memory" / "layout.py",
                package_root / "config.py",
            ]
        )
        if path.is_file()
    )
    digest = hashlib.sha256()
    for path in relevant:
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


def trace_digest(workload: str, variant: str, scale: str, seed: int) -> str:
    """Stable content digest keying one ``(workload, variant, scale, seed)`` trace."""

    payload = json.dumps(
        {
            "workload": workload,
            "variant": variant,
            "scale": scale,
            "seed": seed,
            "format": FORMAT_VERSION,
            "code": trace_code_fingerprint(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------- store


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk artifact, as listed by the maintenance CLI."""

    digest: str
    path: Path
    size_bytes: int
    mtime: float
    header: Optional[dict] = None


class TraceStore:
    """Digest-keyed binary store of :class:`TraceArtifact` files."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._swept_orphans = False

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.trace"

    # ----------------------------------------------------------------- reads

    def get(self, digest: str) -> Optional[TraceArtifact]:
        """Return the decoded artifact for ``digest``, or ``None`` on a miss.

        Missing, truncated, checksum-failing or otherwise corrupt entries
        are treated as misses (and will be overwritten by the next store).
        """

        data = self.get_bytes(digest)
        if data is None:
            return None
        try:
            return decode_artifact(data)
        except TraceStoreError:
            return None

    def get_bytes(self, digest: str) -> Optional[bytes]:
        """Raw encoded bytes for ``digest`` (shipped to workers unverified;
        the receiving decode treats corruption as a miss)."""

        try:
            return self._path(digest).read_bytes()
        except OSError:
            return None

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.trace"))

    # ---------------------------------------------------------------- writes

    def put(self, artifact: TraceArtifact) -> str:
        """Encode and persist ``artifact``; return its digest."""

        digest = trace_digest(
            artifact.workload, artifact.variant, artifact.scale, artifact.seed
        )
        self.put_bytes(digest, encode_artifact(artifact, digest=digest))
        return digest

    def put_bytes(self, digest: str, data: bytes) -> None:
        # Atomic write-then-rename with per-write temp names (see
        # :mod:`repro.atomicio`): readers never see a partial artifact, and
        # concurrent same-digest writers — parallel workers or the service
        # daemon within one process — never share a temp file.
        if not self._swept_orphans:
            self._swept_orphans = True
            sweep_dead_writer_tmp_files(self.directory)
        atomic_write_bytes(self._path(digest), data)

    # ----------------------------------------------------------- maintenance

    def entries(self, *, with_headers: bool = False) -> list[StoreEntry]:
        """List every artifact, oldest first (for the ``ls``/``prune`` CLI)."""

        found: list[StoreEntry] = []
        for path in self.directory.glob("*.trace"):
            try:
                stat = path.stat()
            except OSError:
                continue
            header = None
            if with_headers:
                try:
                    header = read_header_from_file(path)
                except (OSError, TraceStoreError):
                    header = None  # listed, but shown as unreadable
            found.append(
                StoreEntry(
                    digest=path.stem,
                    path=path,
                    size_bytes=stat.st_size,
                    mtime=stat.st_mtime,
                    header=header,
                )
            )
        return sorted(found, key=lambda entry: entry.mtime)

    def stat(self) -> dict[str, object]:
        """Aggregate store statistics (entry count, total bytes, per workload)."""

        entries = self.entries(with_headers=True)
        per_workload: dict[str, int] = {}
        unreadable = 0
        for entry in entries:
            if entry.header is None:
                unreadable += 1
            else:
                name = str(entry.header.get("workload", "?"))
                per_workload[name] = per_workload.get(name, 0) + 1
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": sum(entry.size_bytes for entry in entries),
            "unreadable": unreadable,
            "per_workload": dict(sorted(per_workload.items())),
        }

    def prune(self, *, older_than_seconds: float, now: Optional[float] = None) -> int:
        """Delete artifacts not modified within the window; return the count."""

        cutoff = (now if now is not None else time.time()) - older_than_seconds
        removed = 0
        for entry in self.entries():
            if entry.mtime < cutoff:
                try:
                    entry.path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent prune
                    pass
        return removed

    def clear(self) -> int:
        """Delete every artifact; return how many were removed."""

        removed = 0
        for path in self.directory.glob("*.trace"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        return removed


# ------------------------------------------------------------- env plumbing


def default_trace_store_dir() -> Optional[Path]:
    """Resolve the store directory from ``REPRO_TRACE_STORE`` (``None`` = off)."""

    value = os.environ.get(TRACE_STORE_ENV)
    if value is not None:
        if value.strip().lower() in DISABLED_VALUES or not value.strip():
            return None
        return Path(value)
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro" / "trace_store"


def default_trace_store() -> Optional[TraceStore]:
    """The environment-selected shared store, or ``None`` when disabled.

    A directory that cannot be created (read-only home, sandboxed CI) also
    resolves to ``None``: the tier is an accelerator, never a requirement.
    """

    directory = default_trace_store_dir()
    if directory is None:
        return None
    try:
        return TraceStore(directory)
    except OSError:
        return None


def trace_store_from_spec(spec: Optional[str]) -> Optional[TraceStore]:
    """Resolve a ``--trace-store DIR|off`` style option to a store.

    The single normalisation shared by every driver flag: ``None`` defers
    to the environment (:func:`default_trace_store`), an empty/whitespace
    value or any of :data:`DISABLED_VALUES` disables the tier, anything
    else names the directory.
    """

    if spec is None:
        return default_trace_store()
    cleaned = spec.strip()
    if not cleaned or cleaned.lower() in DISABLED_VALUES:
        return None
    return TraceStore(cleaned)
