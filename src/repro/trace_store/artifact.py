"""Trace artifacts: everything replay needs, detached from the workload.

A :class:`TraceArtifact` captures one ``(workload, variant, scale, seed)``
dynamic trace *plus* the minimal context required to re-run it without
rebuilding the workload: the region table of the address space it was
emitted against (so unmapped-prefetch drops reproduce exactly) and whether
the workload supports the software-prefetch variant (so unavailability is
knowable without a build).  Artifacts are what the on-disk
:class:`~repro.trace_store.store.TraceStore` serialises and what the batch
engine ships to multiprocess workers instead of workload rebuild recipes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cpu.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..workloads.base import Workload


@dataclass(frozen=True)
class RegionSpec:
    """One mapped allocation of the emitting address space."""

    name: str
    base: int
    size_bytes: int


@dataclass(frozen=True)
class TraceArtifact:
    """One stored dynamic trace and its replay context."""

    workload: str
    variant: str
    scale: str
    seed: int
    supports_software: bool
    regions: tuple[RegionSpec, ...]
    trace: Trace

    @classmethod
    def from_workload(cls, workload: "Workload", variant: str) -> "TraceArtifact":
        """Capture ``workload``'s trace for ``variant`` as an artifact.

        The workload's (cached) trace is referenced, not copied — traces are
        immutable after construction.
        """

        trace = workload.trace(variant)
        return cls(
            workload=workload.name,
            variant=variant,
            scale=workload.scale.name,
            seed=workload.seed,
            supports_software=workload.supports_software_prefetch(),
            regions=tuple(
                RegionSpec(name=region.name, base=region.base, size_bytes=region.size_bytes)
                for region in workload.space.regions
            ),
            trace=trace,
        )
