"""The trace artifact tier: emit each dynamic trace once per machine, ever.

PRs 3–4 made ``simulate()`` fast; what dominates a plan now is everything
*around* it — rebuilding workload data structures and re-emitting identical
dynamic traces in every process, for every run.  This package closes that
gap:

* :mod:`~repro.trace_store.artifact` — :class:`TraceArtifact`: a trace plus
  its replay context (region table, software-support flag);
* :mod:`~repro.trace_store.format` — the compact, checksummed binary
  encoding (struct-packed flat columns, versioned header);
* :mod:`~repro.trace_store.store` — :class:`TraceStore`: the digest-keyed
  on-disk store with atomic writes, corruption-as-miss reads and the
  ``REPRO_TRACE_STORE`` switch;
* :mod:`~repro.trace_store.replay` — :class:`ReplayWorkload` and
  :class:`GroupResolver`: how the engine's runners and the perf harness
  turn warm artifacts into runnable simulations without rebuilding
  workloads.

See ``docs/trace_store.md`` for the format and invalidation story.
"""

from .artifact import RegionSpec, TraceArtifact
from .format import (
    FORMAT_VERSION,
    decode_artifact,
    decode_header,
    encode_artifact,
    read_header_from_file,
    validate_artifact_bytes,
)
from .replay import (
    GroupResolver,
    ReplayWorkload,
    needs_workload_build,
    variant_for_mode,
    variants_needed,
)
from .store import (
    DISABLED_VALUES,
    TRACE_STORE_ENV,
    StoreEntry,
    TraceStore,
    TraceStoreStats,
    default_trace_store,
    default_trace_store_dir,
    trace_code_fingerprint,
    trace_digest,
    trace_store_from_spec,
)

__all__ = [
    "TraceArtifact",
    "RegionSpec",
    "FORMAT_VERSION",
    "encode_artifact",
    "decode_artifact",
    "decode_header",
    "read_header_from_file",
    "validate_artifact_bytes",
    "TraceStore",
    "TraceStoreStats",
    "StoreEntry",
    "TRACE_STORE_ENV",
    "DISABLED_VALUES",
    "trace_digest",
    "trace_code_fingerprint",
    "default_trace_store",
    "default_trace_store_dir",
    "trace_store_from_spec",
    "GroupResolver",
    "ReplayWorkload",
    "variant_for_mode",
    "needs_workload_build",
    "variants_needed",
]
