"""Replay workloads and per-group artifact resolution.

:class:`ReplayWorkload` is a :class:`~repro.workloads.base.Workload` stand-in
reconstructed purely from stored :class:`TraceArtifact`\\ s: same name, same
region table (mapped zero-filled, which is all the hierarchy's
unmapped-prefetch check needs), same traces — but no data build, no kernel
builders.  It is sufficient for every mode that does not program the PPUs
(``none``, ``stride``, ``ghb-*``, ``software``); the programmable modes need
the real workload for its kernel configurations and line *contents*, so they
always take the full-build path (with the emission step skipped when the
store already holds the trace).

:class:`GroupResolver` is the shared resolution policy used by the plan
runners and the perf harness: for one request group — one
``(workload, scale, seed)`` — it warms artifacts from the store (or from
encoded columns shipped by a parent process), falls back to building the
workload when it must, and persists freshly-emitted traces so the next run,
worker or machine boot starts warm.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..cpu.trace import TraceBuilder
from ..errors import TraceStoreError, WorkloadError
from ..workloads import build_workload
from ..workloads.base import Workload
from .artifact import TraceArtifact
from .format import decode_artifact
from .store import TraceStore, TraceStoreStats, trace_digest

#: Trace variants, in resolution order (``plain`` also carries the
#: software-support flag, so it is consulted first).
VARIANTS = ("plain", "software")

# NOTE: this module deliberately does not import ``repro.sim`` — the engine
# package imports *us*, and pulling ``sim.modes`` in here would close an
# import cycle through ``repro.sim.__init__``.  Mode objects are therefore
# duck-typed: the helpers below accept any object with the
# ``PrefetchMode.value`` / ``trace_variant`` / ``needs_workload_build``
# surface (or a plain variant string where noted).


def variant_for_mode(mode) -> str:
    """The trace variant ``mode`` replays (only ``software`` differs).

    Accepts a :class:`~repro.sim.modes.PrefetchMode` (whose
    ``trace_variant`` property is the authoritative mapping) or its value
    string.
    """

    variant = getattr(mode, "trace_variant", None)
    if variant is not None:
        return variant
    return "software" if mode == "software" else "plain"


def needs_workload_build(mode) -> bool:
    """Whether ``mode`` requires the real workload (kernels / loop IR).

    ``mode`` must be a :class:`~repro.sim.modes.PrefetchMode` — see its
    ``needs_workload_build`` property for the rationale.
    """

    return bool(getattr(mode, "needs_workload_build", False))


class ReplayWorkload(Workload):
    """A workload reconstructed from trace artifacts (no data build)."""

    def __init__(self, artifact: TraceArtifact) -> None:
        super().__init__(scale=artifact.scale, seed=artifact.seed)
        self.name = artifact.workload
        self._supports_software = artifact.supports_software
        for region in artifact.regions:
            self.space.map_region(region.name, region.base, region.size_bytes)
        self._built = True
        self.attach(artifact)

    def attach(self, artifact: TraceArtifact) -> None:
        """Adopt another variant's trace (same workload identity)."""

        self._traces[artifact.variant] = artifact.trace

    def has_variant(self, variant: str) -> bool:
        return variant in self._traces

    # --------------------------------------------------- Workload interface

    def supports_software_prefetch(self) -> bool:
        return self._supports_software

    def trace(self, variant: str = "plain"):
        if variant not in VARIANTS:
            raise WorkloadError(f"unknown trace variant {variant!r}")
        if variant == "software" and not self._supports_software:
            raise WorkloadError(
                f"{self.name}: software prefetching cannot be expressed "
                "(no direct memory address access)"
            )
        try:
            return self._traces[variant]
        except KeyError:
            raise WorkloadError(
                f"{self.name}: replay artifact set has no {variant!r} trace"
            ) from None

    def _build_data(self) -> None:  # pragma: no cover - _built is preset
        pass

    def _emit_trace(self, tb: TraceBuilder, *, software_prefetch: bool) -> None:
        raise WorkloadError(f"{self.name}: a replay workload cannot re-emit traces")

    def _build_manual_configuration(self):
        raise WorkloadError(
            f"{self.name}: replay artifacts carry no prefetcher configuration; "
            "programmable modes must build the real workload"
        )

    def _build_loop_ir(self):
        raise WorkloadError(
            f"{self.name}: replay artifacts carry no loop IR; "
            "programmable modes must build the real workload"
        )


class GroupResolver:
    """Resolve one request group's trace artifacts and workload objects.

    Resolution order per variant: encoded columns shipped by the caller →
    the on-disk store → build the workload and emit.  Whatever path wins,
    the artifacts of every *needed* variant end up persisted (when a store
    is attached), so each ``(workload, variant, scale, seed)`` trace is
    emitted once per machine, ever.
    """

    def __init__(
        self,
        workload: str,
        scale: str,
        seed: int,
        *,
        store: Optional[TraceStore] = None,
        prebuilt: Optional[Workload] = None,
        encoded: Optional[Mapping[str, bytes]] = None,
    ) -> None:
        self.workload = workload
        self.scale = scale
        self.seed = seed
        self.store = store
        self.stats = TraceStoreStats()
        self._encoded = dict(encoded or {})
        self._artifacts: dict[str, TraceArtifact] = {}
        self._missing: set[str] = set()
        self._replay: Optional[ReplayWorkload] = None
        self._full: Optional[Workload] = None
        if (
            prebuilt is not None
            and prebuilt.scale.name == scale
            and prebuilt.seed == seed
        ):
            self._full = prebuilt

    # ------------------------------------------------------------ artifacts

    def artifact(self, variant: str) -> Optional[TraceArtifact]:
        """The decoded artifact for ``variant``, warming it if possible."""

        cached = self._artifacts.get(variant)
        if cached is not None:
            return cached
        if variant in self._missing:
            return None
        data = self._encoded.pop(variant, None)
        if data is not None:
            try:
                artifact = decode_artifact(data)
            except TraceStoreError:
                artifact = None
            if artifact is not None and self._identity_matches(artifact, variant):
                # Shipped by the parent process, which already counted the
                # store hit once for the whole group — workers decoding
                # their chunk's copy must not inflate the count.
                self._adopt(variant, artifact, count_hit=False)
                return artifact
        if self.store is not None:
            artifact = self.store.get(self.digest(variant))
            if artifact is not None and self._identity_matches(artifact, variant):
                self._adopt(variant, artifact)
                return artifact
        self._missing.add(variant)
        return None

    def digest(self, variant: str) -> str:
        return trace_digest(self.workload, variant, self.scale, self.seed)

    def _identity_matches(self, artifact: TraceArtifact, variant: str) -> bool:
        return (
            artifact.workload == self.workload
            and artifact.variant == variant
            and artifact.scale == self.scale
            and artifact.seed == self.seed
        )

    def _adopt(
        self, variant: str, artifact: TraceArtifact, *, count_hit: bool = True
    ) -> None:
        self._artifacts[variant] = artifact
        if count_hit:
            self.stats.hits += 1
        if self._replay is not None:
            self._replay.attach(artifact)

    # ------------------------------------------------------------ workloads

    def workload_for_mode(self, mode) -> Workload:
        """A workload object sufficient to simulate ``mode``.

        Replay path when the needed artifact is warm and the mode does not
        program the PPUs; full build otherwise.
        """

        if needs_workload_build(mode):
            return self.full_workload()
        variant = variant_for_mode(mode)
        artifact = self.artifact(variant)
        if artifact is None:
            if variant == "software":
                plain = self.artifact("plain")
                if plain is not None and not plain.supports_software:
                    # Unavailability is knowable from the plain artifact's
                    # flag — no build needed just to discover it.
                    return self._replay_workload(plain)
            return self.full_workload()
        return self._replay_workload(artifact)

    def _replay_workload(self, artifact: TraceArtifact) -> Workload:
        # Prefer an already-built full workload: it answers everything a
        # replay can, without constructing a second address space.  (Its
        # traces are *not* overwritten with decoded ones: emission has
        # address-space side effects — visited flags, result arrays — that
        # the programmable modes' kernels read, so the full path always
        # emits for real and the decoded artifact is simply redundant.)
        if self._full is not None:
            return self._full
        if self._replay is None:
            self._replay = ReplayWorkload(artifact)
            for other in self._artifacts.values():
                self._replay.attach(other)
        return self._replay

    def full_workload(self) -> Workload:
        """The real workload, built (and emitting for itself) at most once.

        Stored traces are deliberately *not* injected here: emitting a trace
        runs the workload's algorithm against the simulated address space,
        and some workloads write results (BFS visited sets, union-find
        roots) that the programmable prefetcher's kernels subsequently read.
        A full workload therefore always reproduces the canonical
        post-emission space, exactly as before the artifact tier existed.
        """

        if self._full is None:
            self._full = build_workload(self.workload, scale=self.scale, seed=self.seed)
        return self._full

    # ------------------------------------------------------------ persisting

    def persist(self, variants: Sequence[str]) -> None:
        """Emit-and-store every needed variant that is not already on disk.

        Called after a group executes: by then either every variant came
        from the store (nothing to do) or the full workload exists and its
        traces are already cached, so "emission" here is a lookup.  With no
        store attached this is a no-op (and the trace statistics stay zero,
        which is how a disabled tier reads in the engine summary).
        """

        if self.store is None:
            return
        for variant in variants:
            if variant not in VARIANTS or self.artifact(variant) is not None:
                continue
            if variant == "software":
                # The plain artifact already knows whether a software trace
                # can exist — never pay a full build just to rediscover
                # unavailability (it would recur on every run, since
                # unsupported variants are never stored).
                plain = self.artifact("plain")
                if plain is not None and not plain.supports_software:
                    continue
            workload = self.full_workload()
            if variant == "software" and not workload.supports_software_prefetch():
                continue
            try:
                artifact = TraceArtifact.from_workload(workload, variant)
            except WorkloadError:
                continue
            self.stats.built += 1
            self._artifacts[variant] = artifact
            self._missing.discard(variant)
            if self.store is not None:
                try:
                    self.store.put(artifact)
                    self.stats.stored += 1
                except OSError:  # pragma: no cover - store on a full/ro disk
                    pass


def variants_needed(modes: Sequence) -> tuple[str, ...]:
    """The trace variants a set of modes (or value strings) replays."""

    wanted = {variant_for_mode(mode) for mode in modes}
    return tuple(variant for variant in VARIANTS if variant in wanted)
