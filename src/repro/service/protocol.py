"""Wire protocol of the simulation service: newline-delimited JSON.

Every message is one JSON object per line, UTF-8 encoded.  The framing is
deliberately primitive — any language (or ``nc``) can speak it — and every
message carries a ``"type"`` field naming its meaning.

Client → server
    ``hello``      optional handshake; answered with ``welcome``.
    ``submit``     ``{"id": <client id>, "requests": [<wire request>, ...]}``
                   plus an optional ``"deadline"`` (seconds): after that
                   budget the server fails the submission's unresolved
                   requests instead of keeping it waiting forever.
    ``stats``      global server counters; answered with ``stats``.
    ``ping``       liveness probe; answered with ``pong``.
    ``health``     readiness probe (protocol v3); answered with ``health``:
                   uptime, queue depth, in-flight digests, pool
                   generation, cache/memo state, draining flag.  Clients
                   use it for endpoint selection and circuit-breaker
                   half-open probing.
    ``fetch``      peer replication pull (protocol v3):
                   ``{"digests": [...]}`` asks whether this daemon already
                   holds results for the given content digests; answered
                   with ``fetch-result`` carrying checksummed payloads for
                   the hits and the list of misses.  Purely best-effort —
                   a daemon that cannot answer is simply a miss.
    ``shutdown``   ask the server to drain and exit (same as SIGTERM).

Server → client
    ``welcome``        protocol version, code fingerprint, worker count.
    ``accepted``       per-submission plan accounting (unique, memo/cache
                       hits, joined in-flight digests, scheduled chunks).
    ``rejected``       admission control refused the submission (``reason``
                       is ``"quota"`` or ``"queue"``); nothing was
                       scheduled.  Carries ``retry_after`` seconds — a
                       well-behaved client backs off at least that long and
                       resubmits (``ServiceClient.submit`` does, through
                       its :class:`~repro.resilience.RetryPolicy`).
                       Protocol v2.
    ``chunk-started``  a chunk containing digests this submission waits on
                       began executing (carries a global ``seq`` so clients
                       can observe dispatch order).
    ``chunk-requeued`` the chunk's worker crashed and it was requeued.
    ``progress``       ``completed``/``total`` unique digests resolved.
    ``outcome``        one resolved digest's outcome, streamed as it lands
                       (protocol v3, only for submissions that set
                       ``"stream": true``).  Carries the ``positions`` of
                       the resolved requests in the submitted list and a
                       ``source`` (``"executed"`` / ``"peer"``), so a
                       failover client can bank partial results before a
                       daemon dies and resubmit only what is missing.
    ``done``           positional ``outcomes`` (aligned with the submitted
                       request list) plus per-submission statistics.
    ``error``          submission-scoped or connection-scoped failure text.

Simulation requests travel as their declarative fields (workload, mode,
scale, seed, policy, full nested config) — never as digests — so a client
and server with different source trees still agree on what to simulate;
results travel as :meth:`~repro.sim.results.SimulationResult.as_dict`
payloads, which round-trip floats exactly (the same property the on-disk
:class:`~repro.sim.engine.ResultCache` relies on), so service results are
bit-identical to direct engine runs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..config import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    GHBPrefetcherConfig,
    ProgrammablePrefetcherConfig,
    StridePrefetcherConfig,
    SystemConfig,
    TLBConfig,
)
from ..errors import ServiceProtocolError
from ..sim.engine import SimRequest

#: Protocol revision; bumped on any incompatible message change.
#: v2 added admission control: the ``rejected`` server message and the
#: optional ``deadline`` field on ``submit``.
#: v3 added the HA fabric: the ``health`` readiness probe, streamed
#: ``outcome`` events (opt-in via ``"stream": true`` on ``submit``) and
#: the peer-replication ``fetch`` / ``fetch-result`` pair.  All v3
#: messages are additive — a v3 client talking to a v2 server degrades
#: cleanly to v2 behaviour (no probes, no streaming, no peer pulls).
PROTOCOL_VERSION = 3

#: Upper bound on one encoded message line (and the server's readline
#: limit).  Large sweep submissions with full nested configs stay well
#: under this; anything bigger is a protocol violation, not a workload.
MAX_MESSAGE_BYTES = 1 << 24


def encode_message(message: dict[str, Any]) -> bytes:
    """Encode one message as a JSON line ready for the socket."""

    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Decode one received line; anything but a JSON object is an error."""

    try:
        message = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceProtocolError(f"undecodable message line: {error}") from error
    if not isinstance(message, dict):
        raise ServiceProtocolError(
            f"expected a JSON object per line, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------- result checksum


def result_checksum(result_payload: dict[str, Any]) -> str:
    """Content checksum of one result payload for peer replication.

    Peers exchange results as ``SimulationResult.as_dict()`` payloads; the
    checksum is a SHA-256 over the canonical (sorted-keys, compact) JSON
    encoding, so a truncated or corrupted transfer — or a peer whose
    result schema drifted — is detected and treated as a miss rather than
    poisoning the puller's cache.
    """

    canonical = json.dumps(result_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------- request codec


def request_to_wire(request: SimRequest) -> dict[str, Any]:
    """Encode a request as its declarative fields (no digest, no code hash)."""

    description = request.describe()
    description.pop("code", None)
    return description


def config_from_wire(data: dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``asdict`` encoding."""

    try:
        return SystemConfig(
            core=CoreConfig(**data["core"]),
            l1=CacheConfig(**data["l1"]),
            l2=CacheConfig(**data["l2"]),
            tlb=TLBConfig(**data["tlb"]),
            dram=DRAMConfig(**data["dram"]),
            prefetcher=ProgrammablePrefetcherConfig(**data["prefetcher"]),
            stride=StridePrefetcherConfig(**data["stride"]),
            ghb=GHBPrefetcherConfig(**data["ghb"]),
        )
    except (KeyError, TypeError) as error:
        raise ServiceProtocolError(f"malformed config payload: {error}") from error


def request_from_wire(data: dict[str, Any]) -> SimRequest:
    """Rebuild a :class:`SimRequest` from :func:`request_to_wire` output.

    The server recomputes the digest locally, so a client cannot poison the
    result cache with a forged content address.
    """

    if not isinstance(data, dict):
        raise ServiceProtocolError(
            f"expected a request object, got {type(data).__name__}"
        )
    try:
        return SimRequest(
            workload=data["workload"],
            mode=data["mode"],
            scale=data.get("scale", "default"),
            seed=int(data.get("seed", 42)),
            config=config_from_wire(data["config"]),
            policy=data.get("policy"),
            kernel_source=data.get("kernel_source"),
        )
    except ServiceProtocolError:
        raise
    except KeyError as error:
        raise ServiceProtocolError(f"request is missing field {error}") from error
    except Exception as error:  # unknown mode/policy/scale names, bad types
        raise ServiceProtocolError(f"invalid request payload: {error}") from error
