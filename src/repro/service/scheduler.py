"""Work splitting and fair cross-client chunk scheduling.

Submitted plans are divided into *chunks* — the unit the daemon hands to a
pool worker.  Splitting reuses :meth:`~repro.sim.engine.SimPlan.workload_groups`
so requests that replay the same traces stay together: a chunk resolves its
workload's trace artifacts once, and configuration sweeps within a chunk
remain eligible for the multi-configuration vector batch path
(:func:`~repro.sim.system.try_simulate_batch_vector`).  Groups larger than
``chunk_size`` are sliced — the work-splitting heuristic from the
parallel-instantiation literature (Perri et al., arXiv:1110.1015): bound
each unit of work so one giant submission cannot monopolise a worker for
its whole duration.

The :class:`FairScheduler` then interleaves chunks *across clients* in
strict round-robin: under load, a client submitting two chunks gets one
turn, then every other backlogged client gets theirs, so small interactive
submissions are not starved behind a bulk sweep.  Like the singleflight
table it is pure and synchronous — no sockets, no clocks — and is
property-tested against an independent reference model.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional, Sequence

from ..sim.engine import SimPlan, SimRequest

#: Default upper bound on requests per chunk.  A full figure-7 mode set for
#: one workload (~10 points) stays whole; figure-9-style sweeps split.
DEFAULT_CHUNK_SIZE = 16

_chunk_ids = itertools.count(1)


@dataclass
class Chunk:
    """One schedulable slice of a submission's unscheduled unique requests."""

    key: Hashable
    requests: list[SimRequest]
    id: int = field(default_factory=lambda: next(_chunk_ids))
    #: Execution attempts so far (bumped when a pool worker crashes).
    attempts: int = 0

    def __len__(self) -> int:
        return len(self.requests)


def split_requests(
    requests: Sequence[SimRequest],
    key: Hashable,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[Chunk]:
    """Split ``requests`` into chunks along workload-group boundaries.

    Each chunk holds requests of exactly one workload group (same built
    workload, same traces); groups above ``chunk_size`` are sliced into
    consecutive runs so the scheduler can interleave other clients between
    the slices.
    """

    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    chunks: list[Chunk] = []
    for group in SimPlan(requests).workload_groups().values():
        for start in range(0, len(group), chunk_size):
            chunks.append(Chunk(key=key, requests=list(group[start : start + chunk_size])))
    return chunks


class FairScheduler:
    """Round-robin chunk queue across fairness keys (one key per client)."""

    def __init__(self) -> None:
        self._queues: dict[Hashable, deque[Chunk]] = {}
        self._rotation: deque[Hashable] = deque()

    def add(self, chunk: Chunk, *, front: bool = False) -> None:
        """Queue ``chunk`` under its fairness key.

        ``front`` requeues a crash-recovered chunk at the head of its
        owner's queue so a retry is not penalised a full rotation.
        """

        queue = self._queues.get(chunk.key)
        if queue is None:
            queue = self._queues[chunk.key] = deque()
            self._rotation.append(chunk.key)
        if front:
            queue.appendleft(chunk)
        else:
            queue.append(chunk)

    def next(self) -> Optional[Chunk]:
        """Pop the next chunk, rotating fairness keys; ``None`` when empty.

        Chunks whose every request was cancelled while queued are skipped
        and dropped.
        """

        while self._rotation:
            key = self._rotation[0]
            queue = self._queues.get(key)
            if not queue:
                self._rotation.popleft()
                self._queues.pop(key, None)
                continue
            chunk = queue.popleft()
            self._rotation.rotate(-1)
            if chunk.requests:
                return chunk
        return None

    def discard_digests(self, digests: Iterable[str]) -> set[str]:
        """Remove the given digests from every *queued* chunk.

        Returns the digests actually found in a queue — the ones whose
        cancellation took effect here.  Digests already handed to a worker
        are not in any queue and are unaffected (their flights run on).
        """

        doomed = set(digests)
        if not doomed:
            return set()
        removed: set[str] = set()
        for queue in self._queues.values():
            for chunk in queue:
                kept = []
                for request in chunk.requests:
                    if request.digest in doomed:
                        removed.add(request.digest)
                    else:
                        kept.append(request)
                chunk.requests = kept
        return removed

    def __len__(self) -> int:
        """Queued chunks that still contain work."""

        return sum(
            1 for queue in self._queues.values() for chunk in queue if chunk.requests
        )

    def pending_digests(self) -> set[str]:
        return {
            request.digest
            for queue in self._queues.values()
            for chunk in queue
            for request in chunk.requests
        }
