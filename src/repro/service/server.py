"""The ``repro serve`` daemon: one warm engine shared by every client.

A long-lived asyncio server owning the warm state every invocation of the
batch engine otherwise rebuilds: the in-process result memo, a persistent
:class:`~repro.sim.engine.ResultCache`, the on-disk
:class:`~repro.trace_store.TraceStore`, and a pool of long-lived worker
processes whose compiled-kernel caches stay hot across chunks.  Clients
submit plans over the newline-delimited JSON protocol
(:mod:`repro.service.protocol`) on a TCP or UNIX socket; identical
in-flight requests — across concurrent clients or within one plan — are
deduplicated by the digest-keyed :class:`~repro.service.singleflight.
SingleflightTable` so each unique simulation executes exactly once, and the
:class:`~repro.service.scheduler.FairScheduler` interleaves chunks from
different clients round-robin under load.

Robustness guarantees (exercised by the fault-injection tests):

* a pool worker dying mid-chunk requeues the chunk (bounded retries, then
  a labelled failure delivered to every waiter — nobody hangs);
* a client disconnecting mid-stream cancels its still-queued unique work,
  while singleflight work shared with other clients survives;
* SIGTERM/SIGINT (or a ``shutdown`` message) drains: queued and running
  chunks finish, every pending submission receives its ``done``, new
  submissions are refused, then the process exits;
* **admission control** (protocol v2): a client whose in-flight request
  count would exceed ``--max-inflight``, or any submission arriving while
  the scheduler already holds ``--max-queued-chunks`` chunks, is answered
  with ``rejected`` + ``retry_after`` instead of being queued — one greedy
  client cannot starve the rest, and the queue cannot grow without bound;
* **per-submission deadlines**: a ``deadline`` on the submit message (or
  ``--request-deadline`` as the default) bounds how long a submission may
  wait; on expiry its unresolved requests fail with a retryable label,
  its un-shared queued work is cancelled, and work shared with other
  clients (or already running) continues and warms the caches;
* **HA fabric** (protocol v3): a ``health`` readiness probe (uptime,
  queue depth, in-flight digests, pool generation, cache state) that
  failover clients select endpoints by; streamed per-digest ``outcome``
  events for submissions that opt in, so a client surviving this daemon's
  death resubmits only the unresolved remainder elsewhere; and
  coordinator-free **peer result replication** — with ``--peer ADDR``
  configured, a chunk's digests are pulled from peers (digest-keyed,
  checksummed, behind per-peer circuit breakers) before execution, so
  warm results propagate across a fleet and a dead peer is just a miss.
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import ServiceProtocolError, WorkerCrashedError
from ..sim.engine import UNAVAILABLE, ResultCache, SimRequest
from ..sim.engine.request import code_fingerprint
from ..sim.results import SimulationResult
from ..trace_store import trace_store_from_spec
from .breaker import CircuitBreaker
from .pool import ChunkPool
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    request_from_wire,
    result_checksum,
)
from .scheduler import DEFAULT_CHUNK_SIZE, Chunk, FairScheduler, split_requests
from .singleflight import SingleflightTable

#: Default total execution attempts per chunk before its requests are
#: failed to their waiters (1 first try + 2 crash retries).
DEFAULT_MAX_ATTEMPTS = 3

#: Default ``retry_after`` hint (seconds) carried on ``rejected`` messages.
DEFAULT_RETRY_AFTER = 0.5

#: Default budget (seconds) for one peer replication pull.  Deliberately
#: tight: a slow peer must cost less than simulating locally.
DEFAULT_PEER_TIMEOUT = 2.0


@dataclass
class ServiceStats:
    """Daemon-lifetime counters, served verbatim on a ``stats`` message."""

    connections: int = 0
    submissions: int = 0
    submitted: int = 0
    unique: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    joined: int = 0
    scheduled: int = 0
    executed: int = 0
    unavailable: int = 0
    failed: int = 0
    failures: dict[str, int] = field(default_factory=dict)
    cancelled: int = 0
    crashes: int = 0
    requeued: int = 0
    #: Submissions refused because the client exceeded its in-flight quota.
    rejected_quota: int = 0
    #: Submissions refused because the chunk queue was at capacity.
    rejected_queue: int = 0
    #: Requests failed to their submission because its deadline expired.
    expired: int = 0
    #: Requests resolved by pulling a finished result from a ``--peer``
    #: daemon instead of executing locally (protocol v3 replication).
    peer_hits: int = 0
    #: Requests asked of every configured peer and answered by none.
    peer_misses: int = 0
    #: Peer fetch attempts that failed outright (dead peer, bad checksum,
    #: protocol error).  Each is also a miss for its requests.
    peer_errors: int = 0
    #: ``health`` probes answered (protocol v3).
    health_probes: int = 0
    chunks_dispatched: int = 0
    trace_hits: int = 0
    trace_built: int = 0
    trace_stored: int = 0
    batched: int = 0

    def as_dict(self) -> dict[str, Any]:
        data = self.__dict__.copy()
        data["failures"] = dict(self.failures)
        return data


class _Connection:
    """One connected client: its writer queue and live submissions."""

    _tokens = itertools.count(1)

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.token = next(self._tokens)
        self.writer = writer
        self.outbox: asyncio.Queue[Optional[bytes]] = asyncio.Queue()
        self.submissions: dict[Any, "_Submission"] = {}
        self.closed = False

    def send(self, message: dict[str, Any]) -> None:
        if not self.closed:
            self.outbox.put_nowait(encode_message(message))

    def close_outbox(self) -> None:
        if not self.closed:
            self.closed = True
            self.outbox.put_nowait(None)

    async def pump_outbox(self) -> None:
        """Serialize all writes to this client through one task."""

        try:
            while True:
                data = await self.outbox.get()
                if data is None:
                    break
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            try:
                self.writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass


class _Submission:
    """One ``submit`` message: positional requests and their outcomes."""

    def __init__(
        self,
        conn: _Connection,
        sid: Any,
        requests: list[SimRequest],
        *,
        stream: bool = False,
    ) -> None:
        self.conn = conn
        self.sid = sid
        #: Stream per-digest ``outcome`` events as results land (v3), so a
        #: failover client can bank partial progress before this daemon
        #: (or the connection) dies.
        self.stream = stream
        self.digests = [request.digest for request in requests]
        #: Positions of each digest in the submitted request list, for the
        #: positional ``outcome`` events (clients map positions back to
        #: their own requests without trusting digest equality).
        self.positions: dict[str, list[int]] = {}
        for index, digest in enumerate(self.digests):
            self.positions.setdefault(digest, []).append(index)
        self.unique: list[SimRequest] = []
        seen: set[str] = set()
        for request in requests:
            if request.digest not in seen:
                seen.add(request.digest)
                self.unique.append(request)
        self.outcomes: dict[str, dict[str, Any]] = {}
        self.remaining: set[str] = set()
        #: Deadline timer (``loop.call_later`` handle) when one applies.
        self.deadline_handle: Optional[asyncio.TimerHandle] = None
        self.deadline_seconds: Optional[float] = None
        self.counts: dict[str, Any] = {
            "submitted": len(requests),
            "unique": len(self.unique),
            "deduplicated": len(requests) - len(self.unique),
            "memo_hits": 0,
            "cache_hits": 0,
            "joined": 0,
            "scheduled": 0,
            "executed": 0,
            "peer_hits": 0,
            "unavailable": 0,
            "failed": 0,
            "failures": {},
        }

    def deliver(self, digest: str, outcome: dict[str, Any]) -> bool:
        """Record one resolved digest; ``True`` when the submission is done."""

        self.outcomes[digest] = outcome
        self.remaining.discard(digest)
        return not self.remaining

    def cancel_deadline(self) -> None:
        if self.deadline_handle is not None:
            self.deadline_handle.cancel()
            self.deadline_handle = None

    @property
    def total(self) -> int:
        return len(self.unique)

    @property
    def completed(self) -> int:
        return len(self.outcomes)

    def wire_outcomes(self) -> list[dict[str, Any]]:
        return [self.outcomes[digest] for digest in self.digests]


class ReproServer:
    """The daemon: warm caches, singleflight table, fair scheduler, pool."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        trace_store: Optional[str] = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        max_inflight: Optional[int] = None,
        max_queued_chunks: Optional[int] = None,
        request_deadline: Optional[float] = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
        peers: Sequence[str] = (),
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
        protocol_version: int = PROTOCOL_VERSION,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.chunk_size = chunk_size
        self.max_attempts = max(1, max_attempts)
        #: Per-client cap on in-flight unique requests.  A client with no
        #: in-flight work is always admitted (otherwise a plan larger than
        #: the quota could never run); further submissions are rejected
        #: while outstanding + new would exceed the cap.
        self.max_inflight = max_inflight
        #: Global cap on queued (not yet running) chunks; submissions
        #: arriving at a full queue are rejected with ``retry_after``.
        self.max_queued_chunks = max_queued_chunks
        #: Default per-submission deadline when the client names none.
        self.request_deadline = request_deadline
        self.retry_after = retry_after
        #: Ordered replication peers (``--peer ADDR``).  On a local memo
        #: and cache miss, finished results are pulled from peers before a
        #: chunk executes; a dead or slow peer is just a miss.
        self.peers = [peer for peer in peers if peer]
        self.peer_timeout = peer_timeout
        #: Per-peer circuit breakers so a dead peer costs one timeout per
        #: cooldown, not one per chunk.
        self._peer_breakers = {
            peer: CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
            for peer in self.peers
        }
        #: Advertised protocol revision.  Running a daemon in v2 compat
        #: mode (``protocol_version=2``) suppresses every v3 feature —
        #: ``health``, ``fetch`` and streamed outcomes — which is how the
        #: negotiation regression test pins a v3 client against a v2-only
        #: server.
        self.protocol_version = min(protocol_version, PROTOCOL_VERSION)
        self._started_at: Optional[float] = None
        self.cache = ResultCache(cache_dir) if cache_dir else None
        store = trace_store_from_spec(trace_store)
        self.pool = ChunkPool(
            workers,
            trace_store_dir=str(store.directory) if store is not None else None,
        )
        self.stats = ServiceStats()
        self._memo: dict[str, dict[str, Any]] = {}
        self._flights = SingleflightTable()
        self._scheduler = FairScheduler()
        self._running: dict[int, Chunk] = {}
        self._connections: set[_Connection] = set()
        self._tasks: set[asyncio.Task] = set()
        self._dispatch_seq = itertools.count(1)
        self._server: Optional[asyncio.base_events.Server] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> str:
        """The bound address in client syntax (``host:port`` / ``unix:path``)."""

        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path, limit=MAX_MESSAGE_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, limit=MAX_MESSAGE_BYTES
            )
            self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin a graceful drain (SIGTERM / SIGINT / ``shutdown`` message).

        New connections and submissions are refused; queued and running
        work completes and is delivered; then :meth:`wait_closed` returns.
        """

        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        self._maybe_finish_drain()

    async def wait_closed(self) -> None:
        """Block until a requested drain completes, then release resources."""

        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()
        for conn in list(self._connections):
            conn.close_outbox()
        if self._server is not None:
            await self._server.wait_closed()
        # Let writer tasks flush their final done/error messages.
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.pool.shutdown()

    def _maybe_finish_drain(self) -> None:
        if (
            self._draining
            and self._stopped is not None
            and not self._running
            and len(self._scheduler) == 0
        ):
            self._stopped.set()

    def _track(self, coro) -> asyncio.Task:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # ---------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self.stats.connections += 1
        pump = self._track(conn.pump_outbox())
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ServiceProtocolError as error:
                    conn.send({"type": "error", "message": str(error)})
                    break
                self._handle_message(conn, message)
        finally:
            self._disconnect(conn)
            conn.close_outbox()
            await pump

    def _handle_message(self, conn: _Connection, message: dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == "hello":
            conn.send(
                {
                    "type": "welcome",
                    "server": "repro-serve",
                    "protocol": self.protocol_version,
                    "code": code_fingerprint(),
                    "workers": self.pool.workers,
                }
            )
        elif kind == "health" and self.protocol_version >= 3:
            self.stats.health_probes += 1
            conn.send(self._health_payload())
        elif kind == "fetch" and self.protocol_version >= 3:
            conn.send(self._handle_fetch(message))
        elif kind == "submit":
            self._handle_submit(conn, message)
        elif kind == "stats":
            payload = self.stats.as_dict()
            payload.update(
                type="stats",
                pending_chunks=len(self._scheduler),
                running_chunks=len(self._running),
                in_flight=len(self._flights),
                memo_entries=len(self._memo),
                draining=self._draining,
            )
            conn.send(payload)
        elif kind == "ping":
            conn.send({"type": "pong"})
        elif kind == "shutdown":
            conn.send({"type": "draining"})
            self.request_shutdown()
        else:
            conn.send({"type": "error", "message": f"unknown message type {kind!r}"})

    def _health_payload(self) -> dict[str, Any]:
        """The protocol-v3 readiness snapshot clients select endpoints by."""

        uptime = (
            time.monotonic() - self._started_at if self._started_at is not None else 0.0
        )
        return {
            "type": "health",
            "status": "draining" if self._draining else "ok",
            "protocol": self.protocol_version,
            "address": self.address,
            "uptime": uptime,
            "workers": self.pool.workers,
            "pool_generation": self.pool.generation,
            "connections": len(self._connections),
            "queued_chunks": len(self._scheduler),
            "running_chunks": len(self._running),
            "in_flight": len(self._flights),
            "memo_entries": len(self._memo),
            "cache_dir": str(self.cache.directory) if self.cache is not None else None,
            "peers": list(self.peers),
            "executed": self.stats.executed,
            "memo_hits": self.stats.memo_hits,
            "cache_hits": self.stats.cache_hits,
            "peer_hits": self.stats.peer_hits,
            "failed": self.stats.failed,
            "crashes": self.stats.crashes,
        }

    def _handle_fetch(self, message: dict[str, Any]) -> dict[str, Any]:
        """Answer a peer's pull: checksummed results for known digests.

        Only *finished* knowledge is shared — memoised / cached ``ok``
        results and ``unavailable`` markers.  In-flight or failed digests
        are misses: the puller executes them itself, and failures stay
        retryable everywhere.
        """

        digests = message.get("digests")
        if not isinstance(digests, list):
            return {"type": "error", "message": "'digests' must be a list"}
        found: dict[str, dict[str, Any]] = {}
        misses: list[str] = []
        for digest in digests:
            if not isinstance(digest, str):
                misses.append(str(digest))
                continue
            outcome = self._memo.get(digest)
            if outcome is None and self.cache is not None:
                cached = self.cache.get(digest)
                if cached is UNAVAILABLE:
                    outcome = {"status": "unavailable"}
                elif cached is not None:
                    outcome = {"status": "ok", "result": cached.as_dict()}
            if outcome is None:
                misses.append(digest)
            elif outcome["status"] == "ok":
                found[digest] = {
                    "status": "ok",
                    "result": outcome["result"],
                    "checksum": result_checksum(outcome["result"]),
                }
            elif outcome["status"] == "unavailable":
                found[digest] = {"status": "unavailable"}
            else:
                misses.append(digest)
        return {"type": "fetch-result", "results": found, "misses": misses}

    def _disconnect(self, conn: _Connection) -> None:
        """Cancel the client's pending unique work; shared flights survive."""

        self._connections.discard(conn)
        orphaned: set[str] = set()
        for submission in conn.submissions.values():
            submission.cancel_deadline()
            for digest in list(submission.remaining):
                if self._flights.leave(digest, submission):
                    orphaned.add(digest)
        conn.submissions.clear()
        removed = self._scheduler.discard_digests(orphaned)
        self.stats.cancelled += len(removed)
        self._maybe_finish_drain()

    # ----------------------------------------------------------- submission

    def _handle_submit(self, conn: _Connection, message: dict[str, Any]) -> None:
        sid = message.get("id")
        if self._draining:
            conn.send(
                {"type": "error", "id": sid, "message": "server is draining; resubmit elsewhere"}
            )
            return
        try:
            wire_requests = message["requests"]
            if not isinstance(wire_requests, list):
                raise ServiceProtocolError("'requests' must be a list")
            requests = [request_from_wire(item) for item in wire_requests]
        except (KeyError, ServiceProtocolError) as error:
            conn.send({"type": "error", "id": sid, "message": str(error)})
            return

        rejection = self._admission_check(conn, len(requests))
        if rejection is not None:
            reason, detail = rejection
            conn.send(
                {
                    "type": "rejected",
                    "id": sid,
                    "reason": reason,
                    "message": detail,
                    "retry_after": self.retry_after,
                }
            )
            return

        stream = bool(message.get("stream")) and self.protocol_version >= 3
        submission = _Submission(conn, sid, requests, stream=stream)
        conn.submissions[sid] = submission
        counts = submission.counts
        to_schedule: list[SimRequest] = []
        for request in submission.unique:
            digest = request.digest
            outcome = self._memo.get(digest)
            if outcome is not None:
                counts["memo_hits"] += 1
            elif self.cache is not None:
                cached = self.cache.get(digest)
                if cached is UNAVAILABLE:
                    outcome = {"status": "unavailable"}
                elif cached is not None:
                    outcome = {"status": "ok", "result": cached.as_dict()}
                if outcome is not None:
                    counts["cache_hits"] += 1
                    self._memo[digest] = outcome
            if outcome is not None:
                submission.deliver(digest, outcome)
                continue
            submission.remaining.add(digest)
            if self._flights.join(digest, submission, request=request):
                to_schedule.append(request)
            else:
                counts["joined"] += 1

        chunks = split_requests(to_schedule, conn.token, self.chunk_size)
        for chunk in chunks:
            self._scheduler.add(chunk)
        counts["scheduled"] = len(to_schedule)

        self.stats.submissions += 1
        self.stats.submitted += counts["submitted"]
        self.stats.unique += counts["unique"]
        self.stats.deduplicated += counts["deduplicated"]
        self.stats.memo_hits += counts["memo_hits"]
        self.stats.cache_hits += counts["cache_hits"]
        self.stats.joined += counts["joined"]
        self.stats.scheduled += counts["scheduled"]

        conn.send(
            {
                "type": "accepted",
                "id": sid,
                "submitted": counts["submitted"],
                "unique": counts["unique"],
                "deduplicated": counts["deduplicated"],
                "memo_hits": counts["memo_hits"],
                "cache_hits": counts["cache_hits"],
                "joined": counts["joined"],
                "scheduled": counts["scheduled"],
                "chunks": len(chunks),
            }
        )
        if not submission.remaining:
            self._finish_submission(submission)
        else:
            deadline = message.get("deadline")
            effective = float(deadline) if deadline is not None else self.request_deadline
            if effective is not None:
                submission.deadline_seconds = effective
                submission.deadline_handle = asyncio.get_running_loop().call_later(
                    effective, self._expire_submission, submission
                )
        self._pump()

    def _admission_check(
        self, conn: _Connection, incoming: int
    ) -> Optional[tuple[str, str]]:
        """Return ``(reason, detail)`` when a submission must be rejected.

        Quota: a client with outstanding work may not push its in-flight
        request count past ``max_inflight`` (a client with *no* outstanding
        work is always admitted, so a plan larger than the quota still
        runs).  Queue: nobody is admitted while the scheduler already holds
        ``max_queued_chunks`` chunks.  Both are pure backpressure — the
        client backs off ``retry_after`` seconds and resubmits.
        """

        if self.max_inflight is not None:
            outstanding = sum(
                len(submission.remaining)
                for submission in conn.submissions.values()
            )
            if outstanding > 0 and outstanding + incoming > self.max_inflight:
                self.stats.rejected_quota += 1
                return (
                    "quota",
                    f"client has {outstanding} requests in flight; "
                    f"{incoming} more would exceed the quota of {self.max_inflight}",
                )
        if self.max_queued_chunks is not None and len(self._scheduler) >= self.max_queued_chunks:
            self.stats.rejected_queue += 1
            return (
                "queue",
                f"{len(self._scheduler)} chunks queued (limit {self.max_queued_chunks})",
            )
        return None

    def _expire_submission(self, submission: _Submission) -> None:
        """Deadline fired: fail what is unresolved, cancel un-shared work.

        Digests shared with other submissions — or already running — keep
        executing and warm the memo/cache; only queued work that nobody
        else waits on is discarded.  The expired submission receives
        ``failed`` outcomes with a retryable label and its ``done``.
        """

        submission.deadline_handle = None
        if submission.conn.submissions.get(submission.sid) is not submission:
            return  # already finished
        by_digest = {request.digest: request for request in submission.unique}
        orphaned: set[str] = set()
        expired = list(submission.remaining)
        for digest in expired:
            if self._flights.leave(digest, submission):
                orphaned.add(digest)
        removed = self._scheduler.discard_digests(orphaned)
        self.stats.cancelled += len(removed)
        self.stats.expired += len(expired)
        for digest in expired:
            request = by_digest[digest]
            failure = (
                f"{request.workload}/{request.mode}: deadline exceeded "
                f"({submission.deadline_seconds:g}s budget in service)"
            )
            counts = submission.counts
            counts["failed"] += 1
            counts["failures"][failure] = counts["failures"].get(failure, 0) + 1
            submission.deliver(digest, {"status": "failed", "failure": failure})
        self._finish_submission(submission)
        self._maybe_finish_drain()

    def _finish_submission(self, submission: _Submission) -> None:
        submission.cancel_deadline()
        submission.conn.send(
            {
                "type": "done",
                "id": submission.sid,
                "outcomes": submission.wire_outcomes(),
                "stats": submission.counts,
            }
        )
        submission.conn.submissions.pop(submission.sid, None)

    # ------------------------------------------------------------- dispatch

    def _pump(self) -> None:
        """Dispatch queued chunks while worker capacity is free."""

        while len(self._running) < self.pool.workers:
            chunk = self._scheduler.next()
            if chunk is None:
                break
            # Drop digests whose flights were cancelled while queued.
            chunk.requests = [
                request for request in chunk.requests if request.digest in self._flights
            ]
            if not chunk.requests:
                continue
            for request in chunk.requests:
                self._flights.start(request.digest)
            chunk.attempts += 1
            self._running[chunk.id] = chunk
            self.stats.chunks_dispatched += 1
            self._notify_chunk(chunk, "chunk-started", seq=next(self._dispatch_seq))
            self._track(self._execute_chunk(chunk))
        self._maybe_finish_drain()

    def _notify_chunk(self, chunk: Chunk, kind: str, **extra: Any) -> None:
        """Tell every waiting submission that a chunk changed state."""

        interested: dict[int, _Submission] = {}
        for request in chunk.requests:
            for submission in self._flights.waiters(request.digest):
                interested[id(submission)] = submission
        for submission in interested.values():
            submission.conn.send(
                {
                    "type": kind,
                    "id": submission.sid,
                    "chunk": chunk.id,
                    "attempt": chunk.attempts,
                    "requests": len(chunk.requests),
                    **extra,
                }
            )

    async def _execute_chunk(self, chunk: Chunk) -> None:
        try:
            if self.peers and chunk.attempts == 1:
                # Pull-through replication: before paying for execution,
                # ask the peers whether any of them already finished these
                # digests.  Only on the first attempt — a requeued chunk
                # already missed once.
                resolved = await self._fetch_from_peers(chunk.requests)
                for digest, outcome in resolved.items():
                    if outcome["status"] == "ok":
                        result = SimulationResult.from_dict(outcome["result"])
                        self._publish(digest, result, None, source="peer")
                    else:
                        self._publish(digest, None, None, source="peer")
                if resolved:
                    chunk.requests = [
                        request
                        for request in chunk.requests
                        if request.digest not in resolved
                    ]
                if not chunk.requests:
                    self._running.pop(chunk.id, None)
                    return
            executed, trace_stats, batched = await self.pool.run(chunk.requests)
        except WorkerCrashedError as error:
            self._running.pop(chunk.id, None)
            self.stats.crashes += 1
            if chunk.attempts < self.max_attempts:
                for request in chunk.requests:
                    self._flights.requeue(request.digest)
                self.stats.requeued += 1
                self._notify_chunk(chunk, "chunk-requeued", error=str(error))
                self._scheduler.add(chunk, front=True)
            else:
                for request in chunk.requests:
                    label = (
                        f"{request.workload}/{request.mode}: worker crashed "
                        f"(attempt {chunk.attempts}/{self.max_attempts}: {error})"
                    )
                    self._publish(request.digest, None, label)
        except Exception as error:  # defensive: a bug must never hang waiters
            self._running.pop(chunk.id, None)
            for request in chunk.requests:
                self._publish(
                    request.digest,
                    None,
                    f"{request.workload}/{request.mode}: service error: {error}",
                )
        else:
            self._running.pop(chunk.id, None)
            self.stats.executed += len(executed)
            self.stats.trace_hits += trace_stats.hits
            self.stats.trace_built += trace_stats.built
            self.stats.trace_stored += trace_stats.stored
            self.stats.batched += batched
            for digest, result, failure in executed:
                self._publish(digest, result, failure)
        finally:
            self._pump()

    async def _fetch_from_peers(
        self, requests: Sequence[SimRequest]
    ) -> dict[str, dict[str, Any]]:
        """Pull finished results for ``requests`` from the peer daemons.

        Peers are consulted in order behind per-peer circuit breakers;
        each answer is checksum-verified before it is trusted.  Every
        failure mode — refused connection, timeout, undecodable reply,
        checksum mismatch — degrades to a miss for the affected digests;
        replication can make execution cheaper, never wronger.
        """

        unresolved = {request.digest for request in requests}
        resolved: dict[str, dict[str, Any]] = {}
        for peer in self.peers:
            if not unresolved:
                break
            if peer == self.address:
                continue  # self-referential peer config: nothing to learn
            breaker = self._peer_breakers[peer]
            if not breaker.allow():
                continue
            try:
                reply = await asyncio.wait_for(
                    self._peer_roundtrip(peer, sorted(unresolved)),
                    timeout=self.peer_timeout,
                )
            except (OSError, asyncio.TimeoutError, ServiceProtocolError, ValueError):
                breaker.record_failure()
                self.stats.peer_errors += 1
                continue
            breaker.record_success()
            for digest, payload in reply.items():
                if digest not in unresolved or not isinstance(payload, dict):
                    continue
                status = payload.get("status")
                if status == "ok":
                    result_payload = payload.get("result")
                    if (
                        not isinstance(result_payload, dict)
                        or payload.get("checksum") != result_checksum(result_payload)
                    ):
                        self.stats.peer_errors += 1
                        continue
                    try:
                        SimulationResult.from_dict(result_payload)
                    except Exception:
                        self.stats.peer_errors += 1
                        continue
                elif status != "unavailable":
                    continue
                resolved[digest] = payload
                unresolved.discard(digest)
        self.stats.peer_misses += len(unresolved)
        return resolved

    async def _peer_roundtrip(
        self, peer: str, digests: list[str]
    ) -> dict[str, dict[str, Any]]:
        """One ``fetch`` exchange with ``peer``; returns its results map."""

        from .client import parse_address  # local import: avoids a cycle

        target = parse_address(peer)
        if isinstance(target, str):
            reader, writer = await asyncio.open_unix_connection(
                target, limit=MAX_MESSAGE_BYTES
            )
        else:
            reader, writer = await asyncio.open_connection(
                target[0], target[1], limit=MAX_MESSAGE_BYTES
            )
        try:
            writer.write(encode_message({"type": "fetch", "digests": digests}))
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise ServiceProtocolError(f"peer {peer} closed mid-fetch")
                message = decode_message(line)
                kind = message.get("type")
                if kind == "fetch-result":
                    results = message.get("results")
                    if not isinstance(results, dict):
                        raise ServiceProtocolError(f"peer {peer}: malformed fetch-result")
                    return results
                if kind == "error":
                    raise ServiceProtocolError(
                        f"peer {peer} rejected fetch: {message.get('message')}"
                    )
                # Skip unrelated chatter (a v2 peer answers nothing useful;
                # its error message lands in the branch above).
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):  # pragma: no cover - teardown race
                pass

    def _publish(
        self, digest: str, result, failure: Optional[str], *, source: str = "executed"
    ) -> None:
        """Fan one resolved digest out to every waiter; warm the caches."""

        waiters, request = self._flights.complete(digest)
        if result is not None:
            outcome = {"status": "ok", "result": result.as_dict()}
            self._memo[digest] = outcome
            if self.cache is not None and request is not None:
                self.cache.put(request, result)
        elif failure is None:
            outcome = {"status": "unavailable"}
            if source != "peer":
                self.stats.unavailable += 1
            self._memo[digest] = outcome
            if self.cache is not None and request is not None:
                self.cache.put_unavailable(request)
        else:
            # Genuine failures are delivered but never memoised: a later
            # submission retries, mirroring the engine's transient-error
            # semantics.
            outcome = {"status": "failed", "failure": failure}
            self.stats.failed += 1
            self.stats.failures[failure] = self.stats.failures.get(failure, 0) + 1
        if source == "peer":
            self.stats.peer_hits += 1

        for submission in waiters:
            counts = submission.counts
            if source == "peer":
                counts["peer_hits"] += 1
            else:
                counts["executed"] += 1
            if outcome["status"] == "unavailable":
                counts["unavailable"] += 1
            elif outcome["status"] == "failed":
                counts["failed"] += 1
                counts["failures"][failure] = counts["failures"].get(failure, 0) + 1
            if submission.stream:
                # v3 failover clients bank these as they land, so a daemon
                # dying mid-plan costs only the unresolved remainder.
                submission.conn.send(
                    {
                        "type": "outcome",
                        "id": submission.sid,
                        "positions": submission.positions.get(digest, []),
                        "source": source,
                        "outcome": outcome,
                    }
                )
            if submission.deliver(digest, outcome):
                self._finish_submission(submission)
            else:
                submission.conn.send(
                    {
                        "type": "progress",
                        "id": submission.sid,
                        "completed": submission.completed,
                        "total": submission.total,
                    }
                )


# -------------------------------------------------------------- entry point


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the long-lived simulation service daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks a free port (announced on stdout)")
    parser.add_argument("--unix", metavar="PATH", default=None,
                        help="serve on a UNIX socket instead of TCP")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="pool worker processes (default: all cores)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="persistent result-cache directory shared by all clients")
    parser.add_argument("--trace-store", metavar="DIR|off", default=None,
                        help="trace-artifact store directory, 'off' to disable, "
                             "default: $REPRO_TRACE_STORE or the per-user store")
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                        help=f"max requests per scheduled chunk (default {DEFAULT_CHUNK_SIZE})")
    parser.add_argument("--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS,
                        help="execution attempts per chunk before its requests fail "
                             f"(default {DEFAULT_MAX_ATTEMPTS})")
    parser.add_argument("--max-inflight", type=int, default=None, metavar="N",
                        help="per-client in-flight request quota; further submissions "
                             "are rejected with retry_after (default: unlimited)")
    parser.add_argument("--max-queued-chunks", type=int, default=None, metavar="N",
                        help="reject submissions while this many chunks are queued "
                             "(default: unlimited)")
    parser.add_argument("--request-deadline", type=float, default=None, metavar="SECONDS",
                        help="default per-submission deadline; expired submissions get "
                             "retryable failures (default: none)")
    parser.add_argument("--retry-after", type=float, default=DEFAULT_RETRY_AFTER,
                        help="backoff hint carried on rejected submissions "
                             f"(default {DEFAULT_RETRY_AFTER}s)")
    parser.add_argument("--peer", metavar="ADDR", action="append", default=[],
                        help="replication peer daemon (host:port or unix:/path); "
                             "repeat or comma-separate for several — on a local "
                             "cache miss, finished results are pulled from peers "
                             "before executing (a dead peer is just a miss)")
    parser.add_argument("--peer-timeout", type=float, default=DEFAULT_PEER_TIMEOUT,
                        metavar="SECONDS",
                        help="budget for one peer replication pull "
                             f"(default {DEFAULT_PEER_TIMEOUT}s)")
    return parser


async def _serve(args: argparse.Namespace) -> None:
    server = ReproServer(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        workers=args.workers,
        cache_dir=args.cache,
        trace_store=args.trace_store,
        chunk_size=args.chunk_size,
        max_attempts=args.max_attempts,
        max_inflight=args.max_inflight,
        max_queued_chunks=args.max_queued_chunks,
        request_deadline=args.request_deadline,
        retry_after=args.retry_after,
        peers=[
            part.strip()
            for value in args.peer
            for part in value.split(",")
            if part.strip()
        ],
        peer_timeout=args.peer_timeout,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            pass
    announcement = {
        "event": "listening",
        "address": server.address,
        "workers": server.pool.workers,
        "pid": os.getpid(),
    }
    if server.unix_path is None:
        announcement.update(host=server.host, port=server.port)
    print(json.dumps(announcement), flush=True)
    await server.wait_closed()


def main(argv: Optional[list[str]] = None) -> int:
    """``repro serve`` / ``python -m repro.service`` entry point."""

    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
