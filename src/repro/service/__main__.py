"""``python -m repro.service`` — run the daemon directly."""

import sys

from .server import main

if __name__ == "__main__":
    sys.exit(main())
