"""Digest-keyed singleflight table: each unique request runs at most once.

The daemon's core dedup structure.  A *flight* is one in-progress unique
simulation digest; any number of *waiters* (submissions from any client)
attach to it.  The first waiter to ask for a digest becomes the flight's
creator and is responsible for getting it scheduled; every later waiter —
a concurrent client submitting the same point, or an overlapping request
within one large plan — simply joins, and the one result is fanned out to
all of them on completion.

The table is deliberately free of sockets, asyncio and clocks: it is a
synchronous state machine over opaque hashable waiter tokens, driven by the
server's single event loop and property-tested in isolation (random
interleavings of join/start/complete/cancel — see
``tests/test_service_properties.py``).

Lifecycle of one flight::

    join (first) ──> pending ──start──> running ──complete/fail──> gone
                        │                  │
      leave (last waiter,│                 │ requeue (worker crash)
      never started)     ▼                 ▼
                       gone             pending

Cancellation semantics: a waiter leaving a *pending* flight whose waiter
set becomes empty cancels the flight entirely (the caller must also drop
it from the scheduler); leaving a *running* flight never cancels it — the
simulation is already paid for, its result still warms the caches, there
is simply nobody left to notify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Optional

from ..errors import ServiceError
from ..sim.engine import SimRequest


@dataclass
class Flight:
    """One in-progress unique digest and everybody waiting on it."""

    digest: str
    request: Optional[SimRequest] = None
    waiters: set[Hashable] = field(default_factory=set)
    #: ``True`` while a chunk containing this digest is executing.
    started: bool = False


class SingleflightTable:
    """In-flight unique digests, keyed by content digest."""

    def __init__(self) -> None:
        self._flights: dict[str, Flight] = {}

    # ------------------------------------------------------------- joining

    def join(
        self, digest: str, waiter: Hashable, request: Optional[SimRequest] = None
    ) -> bool:
        """Attach ``waiter`` to the flight for ``digest``.

        Returns ``True`` when this call *created* the flight — the caller
        now owns scheduling the work — and ``False`` when an existing
        flight was joined (the result will be fanned out on completion).
        """

        flight = self._flights.get(digest)
        if flight is None:
            self._flights[digest] = Flight(digest, request=request, waiters={waiter})
            return True
        flight.waiters.add(waiter)
        return False

    def leave(self, digest: str, waiter: Hashable) -> bool:
        """Detach ``waiter`` (client disconnect / submission cancel).

        Returns ``True`` when the flight was cancelled outright: its last
        waiter left before any execution started, so the caller must also
        remove the digest from the scheduler.  A running flight is never
        cancelled here (see module docstring).
        """

        flight = self._flights.get(digest)
        if flight is None:
            return False
        flight.waiters.discard(waiter)
        if not flight.waiters and not flight.started:
            del self._flights[digest]
            return True
        return False

    # ----------------------------------------------------------- execution

    def start(self, digest: str) -> bool:
        """Mark the flight as executing; ``False`` if it no longer exists.

        Starting the same flight twice without an intervening
        :meth:`requeue` is a dispatcher bug — a digest must never run in
        two chunks at once — and raises.
        """

        flight = self._flights.get(digest)
        if flight is None:
            return False
        if flight.started:
            raise ServiceError(f"digest {digest[:12]} dispatched twice")
        flight.started = True
        return True

    def requeue(self, digest: str) -> None:
        """Return a started flight to pending (its chunk's worker crashed)."""

        flight = self._flights.get(digest)
        if flight is not None:
            flight.started = False

    def complete(self, digest: str) -> tuple[frozenset, Optional[SimRequest]]:
        """Retire the flight; return its waiters (to notify) and request.

        Completing a digest with no flight — one whose waiters all left
        while it was running — returns an empty waiter set: the result is
        still worth caching, there is just nobody to tell.
        """

        flight = self._flights.pop(digest, None)
        if flight is None:
            return frozenset(), None
        return frozenset(flight.waiters), flight.request

    # --------------------------------------------------------------- views

    def waiters(self, digest: str) -> frozenset:
        flight = self._flights.get(digest)
        return frozenset(flight.waiters) if flight is not None else frozenset()

    def started(self, digest: str) -> bool:
        flight = self._flights.get(digest)
        return flight is not None and flight.started

    def __contains__(self, digest: str) -> bool:
        return digest in self._flights

    def __len__(self) -> int:
        return len(self._flights)

    def __iter__(self) -> Iterator[str]:
        return iter(self._flights)
