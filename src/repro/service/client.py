"""Client library for the simulation service daemon(s).

Four layers, lowest to highest:

* :class:`ServiceClient` — a blocking socket client speaking the
  newline-delimited JSON protocol: connect (with exponential-backoff
  retries), handshake, :meth:`~ServiceClient.submit` a list of requests and
  stream progress events until ``done``.  The split
  :meth:`~ServiceClient.submit_nowait` / :meth:`~ServiceClient.read_event`
  pair exposes individual protocol events for tests that synchronise on
  them (the fault-injection tier never sleeps for ordering).
* :func:`run_plan` — execute one plan through one client, mapping remote
  outcomes back onto local digests.
* :class:`ServiceEngine` — the drop-in
  :class:`~repro.sim.engine.SimEngine` facade, now a **failover engine**:
  it accepts an ordered endpoint list (``ADDR,ADDR,...``), health-probes
  endpoints for selection (protocol v3), quarantines flapping daemons
  behind per-endpoint :class:`~repro.service.breaker.CircuitBreaker`\\ s,
  banks streamed per-digest outcomes so a daemon dying mid-plan costs only
  the unresolved remainder, and — when every endpoint is down — degrades
  to a caller-supplied local engine (which honors ``--resume``
  checkpoints).  From the caller's view a plan completes bit-identically
  and each digest resolves exactly once, whatever the fleet did.
* :func:`spawn_local_daemon` — a context manager starting
  ``python -m repro.service`` as a subprocess; the child is killed on exit
  even when startup fails or the body raises.

Requests travel as declarative wire payloads (never digests), so client and
server agree on *what* to simulate even across source revisions; results
come back as exact-round-trip :meth:`~repro.sim.results.SimulationResult.
as_dict` payloads.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import socket
import subprocess
import sys
import time
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from ..errors import ServiceError, ServiceProtocolError
from ..resilience import RetryPolicy
from ..sim.engine import BatchResult, EngineStats, SimPlan, SimRequest
from ..sim.results import SimulationResult
from .breaker import CircuitBreaker
from .protocol import MAX_MESSAGE_BYTES, decode_message, encode_message, request_to_wire

#: Event callback: receives every server message for one submission.
EventCallback = Callable[[dict[str, Any]], None]

#: Upper bound on admission-control rejections one ``submit`` call will
#: retry through before giving up.  Deliberately generous: each retry waits
#: at least the server's ``retry_after``, so a busy-but-progressing daemon
#: is eventually admitted, while a wedged one still cannot loop forever.
DEFAULT_REJECTION_LIMIT = 100


def parse_address(address: str) -> Union[tuple[str, int], str]:
    """Parse ``host:port`` or ``unix:/path`` into connectable form."""

    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ServiceError(f"empty UNIX socket path in address {address!r}")
        return path
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ServiceError(
            f"service address {address!r} is not 'host:port' or 'unix:/path'"
        )
    try:
        return (host, int(port))
    except ValueError as error:
        raise ServiceError(f"bad port in service address {address!r}") from error


def parse_endpoints(spec: Union[str, Sequence[str]]) -> list[str]:
    """Split ``ADDR,ADDR,...`` (or a sequence) into an ordered endpoint list.

    Order is preference order — the first endpoint is the primary.
    Duplicates collapse to their first occurrence; every endpoint is
    syntax-checked up front so a typo fails loudly, not at failover time.
    """

    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",")]
    else:
        parts = [part.strip() for part in spec]
    endpoints: list[str] = []
    for part in parts:
        if not part:
            continue
        parse_address(part)  # validate syntax eagerly
        if part not in endpoints:
            endpoints.append(part)
    if not endpoints:
        raise ServiceError(f"no service endpoints in {spec!r}")
    return endpoints


class ServiceClient:
    """Blocking NDJSON client for one daemon connection."""

    def __init__(
        self,
        address: str,
        *,
        timeout: Optional[float] = 300.0,
        connect_retries: int = 5,
        backoff: float = 0.05,
        name: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rejection_limit: int = DEFAULT_REJECTION_LIMIT,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.backoff = backoff
        self.name = name or f"client-{os.getpid()}"
        #: Backoff schedule shared by connects, resubmits after connection
        #: loss, and admission-control rejections.  Capped and seeded with
        #: the client name, so concurrent clients decorrelate their retries
        #: instead of hammering the daemon in lockstep.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=connect_retries + 1,
                base_delay=backoff,
                seed=self.name,
            )
        )
        self.rejection_limit = rejection_limit
        self.welcome: Optional[dict[str, Any]] = None
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)
        self._sleep: Callable[[float], None] = time.sleep
        self.connect()

    # ------------------------------------------------------------ transport

    def connect(self) -> None:
        """(Re)connect with capped, jittered backoff, then handshake."""

        self.close()
        target = parse_address(self.address)
        last_error: Optional[Exception] = None
        for attempt in range(self.retry_policy.max_attempts):
            if attempt:
                self._sleep(self.retry_policy.delay(attempt - 1))
            try:
                if isinstance(target, str):
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(target)
                else:
                    sock = socket.create_connection(target, timeout=self.timeout)
            except OSError as error:
                last_error = error
                continue
            self._sock = sock
            self._file = sock.makefile("rb")
            self._send({"type": "hello", "client": self.name})
            self.welcome = self.read_event()
            if self.welcome.get("type") != "welcome":
                raise ServiceProtocolError(
                    f"expected welcome, got {self.welcome.get('type')!r}"
                )
            return
        raise ServiceError(
            f"could not connect to service at {self.address!r} "
            f"after {self.retry_policy.max_attempts} attempts: {last_error}"
        )

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def server_protocol(self) -> int:
        """Protocol version the server advertised in its ``welcome``.

        The negotiation pivot: v3 features (health probes, streamed
        outcomes) are only used when the server speaks v3 — against an
        older daemon the client degrades to plain v2 behaviour.
        """

        welcome = self.welcome or {}
        try:
            return int(welcome.get("protocol") or 1)
        except (TypeError, ValueError):
            return 1

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, message: dict[str, Any]) -> None:
        if self._sock is None:
            raise ServiceError("client is not connected")
        try:
            self._sock.sendall(encode_message(message))
        except OSError as error:
            raise ServiceError(f"send to service failed: {error}") from error

    def read_event(self) -> dict[str, Any]:
        """Read one server message (blocking up to ``timeout``)."""

        if self._file is None:
            raise ServiceError("client is not connected")
        try:
            line = self._file.readline(MAX_MESSAGE_BYTES)
        except socket.timeout as error:
            raise ServiceError(
                f"timed out after {self.timeout}s waiting for the service"
            ) from error
        except OSError as error:
            raise ServiceError(f"read from service failed: {error}") from error
        if not line:
            raise ServiceError("service closed the connection")
        return decode_message(line)

    # ------------------------------------------------------------- requests

    def submit_nowait(
        self,
        requests: Sequence[SimRequest],
        *,
        deadline: Optional[float] = None,
        stream: bool = False,
    ) -> int:
        """Send one submission; returns its id.  Events via :meth:`read_event`."""

        sid = next(self._ids)
        message: dict[str, Any] = {
            "type": "submit",
            "id": sid,
            "requests": [request_to_wire(request) for request in requests],
        }
        if deadline is not None:
            message["deadline"] = deadline
        if stream:
            message["stream"] = True
        self._send(message)
        return sid

    def submit(
        self,
        requests: Sequence[SimRequest],
        on_event: Optional[EventCallback] = None,
        *,
        deadline: Optional[float] = None,
        stream: bool = False,
    ) -> dict[str, Any]:
        """Submit and block until ``done``; returns the done message.

        If the connection dies before the submission is ``accepted`` (the
        daemon restarted, a transient network fault), the client reconnects
        and resubmits — safe because nothing was scheduled yet.  After
        acceptance a connection loss is surfaced as :class:`ServiceError`:
        the server has cancelled our pending work on disconnect, and the
        caller decides whether to retry the whole plan (a retry is cheap —
        completed digests are served from the daemon's memo) or, as the
        failover :class:`ServiceEngine` does, to resubmit the unresolved
        remainder to another endpoint.

        A ``rejected`` answer (admission control, protocol v2) is honored
        by sleeping at least the server's ``retry_after`` — and at least
        this client's own backoff for the attempt — then resubmitting, up
        to :attr:`rejection_limit` times.  Rejections do not consume
        connection-retry attempts: being told "later" is flow control, not
        a fault.

        With ``stream=True`` (protocol v3) the server additionally emits a
        per-digest ``outcome`` event as each result lands; the events flow
        through ``on_event`` like every other message, which is how the
        failover engine banks partial progress.
        """

        rejections = 0
        attempt = 0
        while attempt < self.retry_policy.max_attempts:
            if self._sock is None:
                self.connect()
            try:
                sid = self.submit_nowait(requests, deadline=deadline, stream=stream)
            except ServiceError:
                attempt += 1
                if attempt >= self.retry_policy.max_attempts:
                    raise
                self.close()
                continue
            accepted = False
            rejected = False
            while True:
                try:
                    event = self.read_event()
                except ServiceError:
                    attempt += 1
                    if accepted or attempt >= self.retry_policy.max_attempts:
                        raise
                    self.close()
                    break
                if event.get("id") not in (None, sid):
                    continue
                if on_event is not None:
                    on_event(event)
                kind = event.get("type")
                if kind == "accepted":
                    accepted = True
                elif kind == "rejected":
                    rejections += 1
                    if rejections > self.rejection_limit:
                        raise ServiceError(
                            f"service kept rejecting submission "
                            f"({event.get('reason')}: {event.get('message')}) "
                            f"after {self.rejection_limit} retries"
                        )
                    retry_after = float(event.get("retry_after") or 0.0)
                    backoff = self.retry_policy.delay(
                        min(rejections - 1, self.retry_policy.retries)
                    )
                    self._sleep(max(retry_after, backoff))
                    rejected = True
                    break
                elif kind == "done":
                    return event
                elif kind == "error":
                    raise ServiceError(f"service rejected submission: {event.get('message')}")
            if rejected:
                continue  # backed off; resubmit without burning an attempt
            # fell out of the read loop pre-acceptance: reconnect + resubmit
        raise ServiceError("submission retries exhausted")  # pragma: no cover

    def server_stats(self) -> dict[str, Any]:
        self._send({"type": "stats"})
        while True:
            event = self.read_event()
            if event.get("type") == "stats":
                return event

    def ping(self) -> None:
        self._send({"type": "ping"})
        while True:
            if self.read_event().get("type") == "pong":
                return

    def health(self) -> dict[str, Any]:
        """One protocol-v3 ``health`` round-trip (raises against pre-v3)."""

        if self.server_protocol < 3:
            raise ServiceError(
                f"server at {self.address!r} speaks protocol "
                f"{self.server_protocol}; health probes need v3"
            )
        self._send({"type": "health"})
        while True:
            event = self.read_event()
            kind = event.get("type")
            if kind == "health":
                return event
            if kind == "error":
                raise ServiceError(f"health probe refused: {event.get('message')}")

    def shutdown_server(self) -> None:
        """Ask the daemon to drain and exit (best-effort)."""

        try:
            self._send({"type": "shutdown"})
            while True:
                if self.read_event().get("type") == "draining":
                    return
        except ServiceError:
            pass


# -------------------------------------------------------- engine-level API


def _outcome_error(request: SimRequest, outcome: dict[str, Any]) -> str:
    return outcome.get("failure") or f"{request.workload}/{request.mode}: service failure"


def _absorb_outcome(
    batch: BatchResult, request: SimRequest, outcome: dict[str, Any]
) -> None:
    """Materialise one wire outcome into the batch (results/skips/failures)."""

    stats = batch.stats
    status = outcome.get("status")
    if status == "ok":
        batch.results[request.digest] = SimulationResult.from_dict(outcome["result"])
    elif status == "unavailable":
        batch.skipped.add(request.digest)
        stats.unavailable += 1
    elif status == "failed":
        label = _outcome_error(request, outcome)
        batch.skipped.add(request.digest)
        batch.failures[request.digest] = label
        stats.failed += 1
        stats.failures[label] = stats.failures.get(label, 0) + 1
    else:
        raise ServiceProtocolError(f"unknown outcome status {status!r}")


def run_plan(
    client: ServiceClient,
    plan: SimPlan,
    *,
    on_event: Optional[EventCallback] = None,
    deadline: Optional[float] = None,
) -> BatchResult:
    """Execute ``plan`` through one service client; results keyed by local digests.

    Outcomes are positional in the wire protocol, so the mapping back to
    local digests never depends on client and server computing identical
    content hashes (they may run different source revisions).
    """

    requests = list(plan)
    batch = BatchResult()
    stats = batch.stats
    stats.runner = "service"
    stats.submitted = plan.submitted
    stats.unique = len(requests)
    stats.deduplicated = stats.submitted - stats.unique
    if not requests:
        return batch

    def counting_on_event(event: dict[str, Any]) -> None:
        if event.get("type") == "rejected":
            stats.rejected += 1
        if on_event is not None:
            on_event(event)

    done = client.submit(requests, on_event=counting_on_event, deadline=deadline)
    outcomes = done.get("outcomes")
    if not isinstance(outcomes, list) or len(outcomes) != len(requests):
        raise ServiceProtocolError(
            f"service returned {len(outcomes) if isinstance(outcomes, list) else 'no'} "
            f"outcomes for {len(requests)} requests"
        )
    remote = done.get("stats", {})
    # The daemon distinguishes its own reuse tiers (memo, disk cache, joined
    # in-flight work, peer replication); locally they are all avoided
    # simulations.
    stats.memo_hits = int(remote.get("memo_hits", 0))
    stats.cache_hits = int(remote.get("cache_hits", 0))
    stats.deduplicated += int(remote.get("joined", 0))
    stats.executed = int(remote.get("executed", 0))
    stats.peer_hits = int(remote.get("peer_hits", 0))

    for request, outcome in zip(requests, outcomes):
        _absorb_outcome(batch, request, outcome)
    return batch


class ServiceEngine:
    """Failover :class:`~repro.sim.engine.SimEngine` facade over a fleet.

    Presents the same ``run(plan)`` / ``simulate(request)`` / lifetime
    ``stats`` surface, so report drivers take ``--service ADDR[,ADDR...]``
    without special-casing.  Endpoints are tried in order; a failing one is
    skipped for the rest of the run and quarantined by its circuit breaker
    across runs.  Mid-plan progress streamed by a dying daemon is banked,
    so only the unresolved remainder is resubmitted — each digest resolves
    exactly once from the caller's view.  With ``local_engine_factory``
    set, a fleet that is entirely unreachable degrades to local execution
    (the factory's engine carries the caller's cache/checkpoint/resume
    configuration).

    Args:
        address: One endpoint or an ordered comma-separated list.
        timeout: Socket timeout per endpoint connection.
        deadline: Per-``run`` submission deadline forwarded to the daemon.
        local_engine_factory: Zero-argument callable building the local
            fallback engine; invoked at most once, on first degrade.
        connect_retries: Connect attempts per endpoint per run (kept low —
            failover to the next endpoint beats hammering a dead one).
        breaker_failure_threshold / breaker_reset_timeout: Per-endpoint
            circuit-breaker tuning (see :class:`CircuitBreaker`).
        probe_timeout: Budget for one health probe.
        clock: Injectable monotonic clock for the breakers (tests).
    """

    def __init__(
        self,
        address: Union[str, Sequence[str]],
        *,
        timeout: Optional[float] = 600.0,
        deadline: Optional[float] = None,
        local_engine_factory: Optional[Callable[[], Any]] = None,
        connect_retries: int = 2,
        breaker_failure_threshold: int = 2,
        breaker_reset_timeout: float = 5.0,
        probe_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.endpoints = parse_endpoints(address)
        self.address = ",".join(self.endpoints)
        self.timeout = timeout
        self.deadline = deadline
        self.local_engine_factory = local_engine_factory
        self.connect_retries = connect_retries
        self.probe_timeout = probe_timeout
        self.breakers: dict[str, CircuitBreaker] = {
            endpoint: CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                reset_timeout=breaker_reset_timeout,
                clock=clock,
            )
            for endpoint in self.endpoints
        }
        self._clients: dict[str, ServiceClient] = {}
        self._local_engine: Optional[Any] = None
        self.stats = EngineStats(runner="service")

    # ------------------------------------------------------------ endpoints

    @property
    def client(self) -> ServiceClient:
        """A connected client for the primary endpoint (compat accessor)."""

        return self._client_for(self.endpoints[0])

    def _client_for(self, endpoint: str) -> ServiceClient:
        client = self._clients.get(endpoint)
        if client is not None and client.connected:
            return client
        client = ServiceClient(
            endpoint, timeout=self.timeout, connect_retries=self.connect_retries
        )
        self._clients[endpoint] = client
        return client

    def _drop_client(self, endpoint: str) -> None:
        client = self._clients.pop(endpoint, None)
        if client is not None:
            client.close()

    def _select_endpoint(
        self, tried: set[str], stats: Optional[EngineStats] = None
    ) -> Optional[str]:
        """First endpoint, in preference order, that is currently usable.

        Skips endpoints already failed this run and endpoints whose
        breaker refuses traffic.  A breaker in half-open (and any endpoint
        without a live connection) is validated with a health probe first:
        unreachable or draining endpoints are failed without submitting a
        plan to them.  Pre-v3 endpoints cannot be health-probed — for them
        a successful connection is the whole probe (clean degradation).
        """

        from .health import probe_endpoint  # local import: health imports client

        for endpoint in self.endpoints:
            if endpoint in tried:
                continue
            breaker = self.breakers[endpoint]
            if not breaker.allow():
                continue
            needs_probe = breaker.state != "closed" or not (
                endpoint in self._clients and self._clients[endpoint].connected
            )
            if needs_probe:
                report = probe_endpoint(endpoint, timeout=self.probe_timeout)
                if not report.ready:
                    # An unreachable or draining endpoint skipped at
                    # selection time is a failover too — just a cheap one.
                    breaker.record_failure()
                    tried.add(endpoint)
                    if stats is not None:
                        stats.failed_over += 1
                    continue
            return endpoint
        return None

    # ------------------------------------------------------------------ run

    def run(
        self,
        plan: SimPlan,
        *,
        progress: bool = False,
        on_event: Optional[EventCallback] = None,
    ) -> BatchResult:
        requests = list(plan)
        batch = BatchResult()
        stats = batch.stats
        stats.runner = "service"
        stats.submitted = plan.submitted
        stats.unique = len(requests)
        stats.deduplicated = stats.submitted - stats.unique
        if not requests:
            self.stats.merge(batch.stats)
            return batch

        user_on_event = on_event
        if progress:
            def user_on_event(event: dict[str, Any]) -> None:  # noqa: F811
                if event.get("type") == "progress":
                    print(
                        f"  [service] {event['completed']}/{event['total']} resolved",
                        file=sys.stderr,
                    )
                if on_event is not None:
                    on_event(event)

        #: Final wire outcome per local digest, across every attempt.
        resolved: dict[str, dict[str, Any]] = {}
        tried: set[str] = set()

        while True:
            pending = [r for r in requests if r.digest not in resolved]
            if not pending:
                break
            endpoint = self._select_endpoint(tried, stats)
            if endpoint is None:
                self._degrade_to_local(batch, pending)
                break
            breaker = self.breakers[endpoint]
            #: Outcomes streamed by THIS attempt, banked by position.
            attempt_banked: dict[str, dict[str, Any]] = {}
            attempt_counts = {"executed": 0, "peer_hits": 0}

            def banking_on_event(event: dict[str, Any]) -> None:
                kind = event.get("type")
                if kind == "rejected":
                    stats.rejected += 1
                elif kind == "outcome":
                    outcome = event.get("outcome")
                    positions = event.get("positions") or []
                    if isinstance(outcome, dict):
                        for position in positions:
                            if isinstance(position, int) and 0 <= position < len(pending):
                                digest = pending[position].digest
                                if digest not in attempt_banked:
                                    source = event.get("source")
                                    key = "peer_hits" if source == "peer" else "executed"
                                    attempt_counts[key] += 1
                                attempt_banked[digest] = outcome
                if user_on_event is not None:
                    user_on_event(event)

            try:
                client = self._client_for(endpoint)
                done = client.submit(
                    pending,
                    on_event=banking_on_event,
                    deadline=self.deadline,
                    stream=client.server_protocol >= 3,
                )
            except ServiceError:
                # Connect failure, mid-plan disconnect, drain refusal:
                # quarantine the endpoint, keep what it streamed, move on.
                breaker.record_failure()
                tried.add(endpoint)
                self._drop_client(endpoint)
                stats.failed_over += 1
                resolved.update(attempt_banked)
                stats.executed += attempt_counts["executed"]
                stats.peer_hits += attempt_counts["peer_hits"]
                continue

            breaker.record_success()
            outcomes = done.get("outcomes")
            if not isinstance(outcomes, list) or len(outcomes) != len(pending):
                raise ServiceProtocolError(
                    f"service returned "
                    f"{len(outcomes) if isinstance(outcomes, list) else 'no'} "
                    f"outcomes for {len(pending)} requests"
                )
            remote = done.get("stats", {})
            stats.memo_hits += int(remote.get("memo_hits", 0))
            stats.cache_hits += int(remote.get("cache_hits", 0))
            stats.deduplicated += int(remote.get("joined", 0))
            stats.executed += int(remote.get("executed", 0))
            stats.peer_hits += int(remote.get("peer_hits", 0))
            for request, outcome in zip(pending, outcomes):
                resolved[request.digest] = outcome
            break

        for request in requests:
            outcome = resolved.get(request.digest)
            if outcome is not None and request.digest not in batch.results:
                if request.digest in batch.skipped:
                    continue  # already absorbed (duplicate digest in plan)
                _absorb_outcome(batch, request, outcome)

        self.stats.merge(batch.stats)
        return batch

    def _degrade_to_local(
        self, batch: BatchResult, pending: list[SimRequest]
    ) -> None:
        """Every endpoint is down or draining: run ``pending`` locally.

        The fallback engine is built once from ``local_engine_factory``
        and carries the caller's cache / checkpoint / ``--resume``
        configuration, so a degraded run banks its progress exactly like a
        direct local run would.  Without a factory the degradation is a
        hard error naming the endpoints — silently hanging would be worse.
        """

        if self.local_engine_factory is None:
            states = ", ".join(
                f"{endpoint} ({self.breakers[endpoint].state})"
                for endpoint in self.endpoints
            )
            raise ServiceError(
                f"no healthy service endpoint and no local fallback: {states}"
            )
        if self._local_engine is None:
            self._local_engine = self.local_engine_factory()
        local = self._local_engine.run(SimPlan(pending))
        batch.results.update(local.results)
        batch.skipped.update(local.skipped)
        batch.failures.update(local.failures)
        stats = batch.stats
        stats.degraded_local += len(pending)
        for attribute in (
            "memo_hits", "cache_hits", "executed", "unavailable", "failed",
            "trace_hits", "trace_built", "trace_stored", "batched", "resumed",
            "retried", "requeues", "hung_killed", "expired",
        ):
            setattr(
                stats, attribute,
                getattr(stats, attribute) + getattr(local.stats, attribute),
            )
        for label, count in local.stats.failures.items():
            stats.failures[label] = stats.failures.get(label, 0) + count

    def simulate(self, request: SimRequest) -> Optional[SimulationResult]:
        batch = self.run(SimPlan([request]))
        return batch.get(request)

    def close(self) -> None:
        for endpoint in list(self._clients):
            self._drop_client(endpoint)


# ------------------------------------------------------------ local daemon


@contextlib.contextmanager
def spawn_local_daemon(
    *,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    trace_store: Optional[str] = "off",
    extra_args: Sequence[str] = (),
    startup_timeout: float = 60.0,
    env: Optional[dict[str, str]] = None,
) -> Iterator[tuple[subprocess.Popen, str]]:
    """Start ``python -m repro.service``; yield ``(process, address)``.

    A context manager so the child can never be leaked: on exit — normal,
    test failure, or an exception during startup itself — a still-running
    daemon is killed and reaped.  A body that already shut the daemon down
    (drain, SIGTERM) sees no interference: an exited child is only reaped.
    Used by the smoke/HA tools and the fault-injection tests;
    ``trace_store`` defaults to ``"off"`` so spawning a daemon never
    touches the per-user store.  ``env`` entries are overlaid on the
    inherited environment (``PYTHONPATH`` is *prepended* to the one that
    makes ``repro`` importable, not replaced).
    """

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.dirname(package_root)
    child_env = dict(os.environ)
    child_env["PYTHONPATH"] = src_root + os.pathsep + child_env.get("PYTHONPATH", "")
    if env:
        for key, value in env.items():
            if key == "PYTHONPATH":
                child_env["PYTHONPATH"] = value + os.pathsep + child_env["PYTHONPATH"]
            else:
                child_env[key] = value
    command = [sys.executable, "-m", "repro.service", "--workers", str(workers)]
    if cache_dir is not None:
        command += ["--cache", cache_dir]
    if trace_store is not None:
        command += ["--trace-store", trace_store]
    command += list(extra_args)
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=child_env
    )
    try:
        yield process, _read_announcement(process, startup_timeout)
    finally:
        if process.poll() is None:
            process.kill()
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill must reap
            pass
        if process.stdout is not None:
            process.stdout.close()


def _read_announcement(process: subprocess.Popen, startup_timeout: float) -> str:
    """Wait for the daemon's ``listening`` line; return its address."""

    assert process.stdout is not None
    deadline = time.monotonic() + startup_timeout
    line = b""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line:
            break
        if process.poll() is not None:
            raise ServiceError(
                f"service daemon exited during startup (code {process.returncode})"
            )
    try:
        announcement = json.loads(line)
        if announcement.get("event") != "listening":
            raise ValueError(announcement)
        return announcement["address"]
    except (ValueError, KeyError) as error:
        raise ServiceError(f"bad daemon announcement {line!r}") from error
