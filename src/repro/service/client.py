"""Client library for the simulation service daemon.

Three layers, lowest to highest:

* :class:`ServiceClient` — a blocking socket client speaking the
  newline-delimited JSON protocol: connect (with exponential-backoff
  retries), handshake, :meth:`~ServiceClient.submit` a list of requests and
  stream progress events until ``done``.  The split
  :meth:`~ServiceClient.submit_nowait` / :meth:`~ServiceClient.read_event`
  pair exposes individual protocol events for tests that synchronise on
  them (the fault-injection tier never sleeps for ordering).
* :func:`run_plan` / :class:`ServiceEngine` — a drop-in
  :class:`~repro.sim.engine.SimEngine` facade: ``ServiceEngine(addr).run(plan)``
  returns a :class:`~repro.sim.engine.BatchResult` keyed by the *local*
  request digests, bit-identical to a direct engine run, so every driver
  (``reproduce_paper.py --service``, the eval report) works unchanged
  against a daemon.
* :func:`spawn_local_daemon` — start ``python -m repro.service`` as a
  subprocess and return its announced address; shared by the smoke tool and
  the SIGTERM-drain test.

Requests travel as declarative wire payloads (never digests), so client and
server agree on *what* to simulate even across source revisions; results
come back as exact-round-trip :meth:`~repro.sim.results.SimulationResult.
as_dict` payloads.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import subprocess
import sys
import time
from typing import Any, Callable, Optional, Sequence, Union

from ..errors import ServiceError, ServiceProtocolError
from ..resilience import RetryPolicy
from ..sim.engine import BatchResult, EngineStats, SimPlan, SimRequest
from ..sim.results import SimulationResult
from .protocol import MAX_MESSAGE_BYTES, decode_message, encode_message, request_to_wire

#: Event callback: receives every server message for one submission.
EventCallback = Callable[[dict[str, Any]], None]

#: Upper bound on admission-control rejections one ``submit`` call will
#: retry through before giving up.  Deliberately generous: each retry waits
#: at least the server's ``retry_after``, so a busy-but-progressing daemon
#: is eventually admitted, while a wedged one still cannot loop forever.
DEFAULT_REJECTION_LIMIT = 100


def parse_address(address: str) -> Union[tuple[str, int], str]:
    """Parse ``host:port`` or ``unix:/path`` into connectable form."""

    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ServiceError(f"empty UNIX socket path in address {address!r}")
        return path
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ServiceError(
            f"service address {address!r} is not 'host:port' or 'unix:/path'"
        )
    try:
        return (host, int(port))
    except ValueError as error:
        raise ServiceError(f"bad port in service address {address!r}") from error


class ServiceClient:
    """Blocking NDJSON client for one daemon connection."""

    def __init__(
        self,
        address: str,
        *,
        timeout: Optional[float] = 300.0,
        connect_retries: int = 5,
        backoff: float = 0.05,
        name: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rejection_limit: int = DEFAULT_REJECTION_LIMIT,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.backoff = backoff
        self.name = name or f"client-{os.getpid()}"
        #: Backoff schedule shared by connects, resubmits after connection
        #: loss, and admission-control rejections.  Capped and seeded with
        #: the client name, so concurrent clients decorrelate their retries
        #: instead of hammering the daemon in lockstep.
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_attempts=connect_retries + 1,
                base_delay=backoff,
                seed=self.name,
            )
        )
        self.rejection_limit = rejection_limit
        self.welcome: Optional[dict[str, Any]] = None
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)
        self._sleep: Callable[[float], None] = time.sleep
        self.connect()

    # ------------------------------------------------------------ transport

    def connect(self) -> None:
        """(Re)connect with capped, jittered backoff, then handshake."""

        self.close()
        target = parse_address(self.address)
        last_error: Optional[Exception] = None
        for attempt in range(self.retry_policy.max_attempts):
            if attempt:
                self._sleep(self.retry_policy.delay(attempt - 1))
            try:
                if isinstance(target, str):
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(target)
                else:
                    sock = socket.create_connection(target, timeout=self.timeout)
            except OSError as error:
                last_error = error
                continue
            self._sock = sock
            self._file = sock.makefile("rb")
            self._send({"type": "hello", "client": self.name})
            self.welcome = self.read_event()
            if self.welcome.get("type") != "welcome":
                raise ServiceProtocolError(
                    f"expected welcome, got {self.welcome.get('type')!r}"
                )
            return
        raise ServiceError(
            f"could not connect to service at {self.address!r} "
            f"after {self.retry_policy.max_attempts} attempts: {last_error}"
        )

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, message: dict[str, Any]) -> None:
        if self._sock is None:
            raise ServiceError("client is not connected")
        try:
            self._sock.sendall(encode_message(message))
        except OSError as error:
            raise ServiceError(f"send to service failed: {error}") from error

    def read_event(self) -> dict[str, Any]:
        """Read one server message (blocking up to ``timeout``)."""

        if self._file is None:
            raise ServiceError("client is not connected")
        try:
            line = self._file.readline(MAX_MESSAGE_BYTES)
        except socket.timeout as error:
            raise ServiceError(
                f"timed out after {self.timeout}s waiting for the service"
            ) from error
        except OSError as error:
            raise ServiceError(f"read from service failed: {error}") from error
        if not line:
            raise ServiceError("service closed the connection")
        return decode_message(line)

    # ------------------------------------------------------------- requests

    def submit_nowait(
        self,
        requests: Sequence[SimRequest],
        *,
        deadline: Optional[float] = None,
    ) -> int:
        """Send one submission; returns its id.  Events via :meth:`read_event`."""

        sid = next(self._ids)
        message: dict[str, Any] = {
            "type": "submit",
            "id": sid,
            "requests": [request_to_wire(request) for request in requests],
        }
        if deadline is not None:
            message["deadline"] = deadline
        self._send(message)
        return sid

    def submit(
        self,
        requests: Sequence[SimRequest],
        on_event: Optional[EventCallback] = None,
        *,
        deadline: Optional[float] = None,
    ) -> dict[str, Any]:
        """Submit and block until ``done``; returns the done message.

        If the connection dies before the submission is ``accepted`` (the
        daemon restarted, a transient network fault), the client reconnects
        and resubmits — safe because nothing was scheduled yet.  After
        acceptance a connection loss is surfaced as :class:`ServiceError`:
        the server has cancelled our pending work on disconnect, and the
        caller decides whether to retry the whole plan (a retry is cheap —
        completed digests are served from the daemon's memo).

        A ``rejected`` answer (admission control, protocol v2) is honored
        by sleeping at least the server's ``retry_after`` — and at least
        this client's own backoff for the attempt — then resubmitting, up
        to :attr:`rejection_limit` times.  Rejections do not consume
        connection-retry attempts: being told "later" is flow control, not
        a fault.
        """

        rejections = 0
        attempt = 0
        while attempt < self.retry_policy.max_attempts:
            if self._sock is None:
                self.connect()
            try:
                sid = self.submit_nowait(requests, deadline=deadline)
            except ServiceError:
                attempt += 1
                if attempt >= self.retry_policy.max_attempts:
                    raise
                self.close()
                continue
            accepted = False
            rejected = False
            while True:
                try:
                    event = self.read_event()
                except ServiceError:
                    attempt += 1
                    if accepted or attempt >= self.retry_policy.max_attempts:
                        raise
                    self.close()
                    break
                if event.get("id") not in (None, sid):
                    continue
                if on_event is not None:
                    on_event(event)
                kind = event.get("type")
                if kind == "accepted":
                    accepted = True
                elif kind == "rejected":
                    rejections += 1
                    if rejections > self.rejection_limit:
                        raise ServiceError(
                            f"service kept rejecting submission "
                            f"({event.get('reason')}: {event.get('message')}) "
                            f"after {self.rejection_limit} retries"
                        )
                    retry_after = float(event.get("retry_after") or 0.0)
                    backoff = self.retry_policy.delay(
                        min(rejections - 1, self.retry_policy.retries)
                    )
                    self._sleep(max(retry_after, backoff))
                    rejected = True
                    break
                elif kind == "done":
                    return event
                elif kind == "error":
                    raise ServiceError(f"service rejected submission: {event.get('message')}")
            if rejected:
                continue  # backed off; resubmit without burning an attempt
            # fell out of the read loop pre-acceptance: reconnect + resubmit
        raise ServiceError("submission retries exhausted")  # pragma: no cover

    def server_stats(self) -> dict[str, Any]:
        self._send({"type": "stats"})
        while True:
            event = self.read_event()
            if event.get("type") == "stats":
                return event

    def ping(self) -> None:
        self._send({"type": "ping"})
        while True:
            if self.read_event().get("type") == "pong":
                return

    def shutdown_server(self) -> None:
        """Ask the daemon to drain and exit (best-effort)."""

        try:
            self._send({"type": "shutdown"})
            while True:
                if self.read_event().get("type") == "draining":
                    return
        except ServiceError:
            pass


# -------------------------------------------------------- engine-level API


def _outcome_error(request: SimRequest, outcome: dict[str, Any]) -> str:
    return outcome.get("failure") or f"{request.workload}/{request.mode}: service failure"


def run_plan(
    client: ServiceClient,
    plan: SimPlan,
    *,
    on_event: Optional[EventCallback] = None,
    deadline: Optional[float] = None,
) -> BatchResult:
    """Execute ``plan`` through the service; results keyed by local digests.

    Outcomes are positional in the wire protocol, so the mapping back to
    local digests never depends on client and server computing identical
    content hashes (they may run different source revisions).
    """

    requests = list(plan)
    batch = BatchResult()
    stats = batch.stats
    stats.runner = "service"
    stats.submitted = plan.submitted
    stats.unique = len(requests)
    stats.deduplicated = stats.submitted - stats.unique
    if not requests:
        return batch

    def counting_on_event(event: dict[str, Any]) -> None:
        if event.get("type") == "rejected":
            stats.rejected += 1
        if on_event is not None:
            on_event(event)

    done = client.submit(requests, on_event=counting_on_event, deadline=deadline)
    outcomes = done.get("outcomes")
    if not isinstance(outcomes, list) or len(outcomes) != len(requests):
        raise ServiceProtocolError(
            f"service returned {len(outcomes) if isinstance(outcomes, list) else 'no'} "
            f"outcomes for {len(requests)} requests"
        )
    remote = done.get("stats", {})
    # The daemon distinguishes its own reuse tiers (memo, disk cache, joined
    # in-flight work); locally they are all avoided simulations.
    stats.memo_hits = int(remote.get("memo_hits", 0))
    stats.cache_hits = int(remote.get("cache_hits", 0))
    stats.deduplicated += int(remote.get("joined", 0))
    stats.executed = int(remote.get("executed", 0))

    for request, outcome in zip(requests, outcomes):
        status = outcome.get("status")
        if status == "ok":
            batch.results[request.digest] = SimulationResult.from_dict(outcome["result"])
        elif status == "unavailable":
            batch.skipped.add(request.digest)
            stats.unavailable += 1
        elif status == "failed":
            label = _outcome_error(request, outcome)
            batch.skipped.add(request.digest)
            batch.failures[request.digest] = label
            stats.failed += 1
            stats.failures[label] = stats.failures.get(label, 0) + 1
        else:
            raise ServiceProtocolError(f"unknown outcome status {status!r}")
    return batch


class ServiceEngine:
    """Drop-in :class:`~repro.sim.engine.SimEngine` facade over a daemon.

    Presents the same ``run(plan)`` / ``simulate(request)`` / lifetime
    ``stats`` surface, so report drivers take ``--service ADDR`` without
    special-casing.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: Optional[float] = 600.0,
        deadline: Optional[float] = None,
    ) -> None:
        self.address = address
        self.client = ServiceClient(address, timeout=timeout)
        #: Per-``run`` submission deadline forwarded to the daemon.
        self.deadline = deadline
        self.stats = EngineStats(runner="service")

    def run(self, plan: SimPlan, *, progress: bool = False) -> BatchResult:
        on_event: Optional[EventCallback] = None
        if progress:
            def on_event(event: dict[str, Any]) -> None:
                if event.get("type") == "progress":
                    print(
                        f"  [service] {event['completed']}/{event['total']} resolved",
                        file=sys.stderr,
                    )
        batch = run_plan(self.client, plan, on_event=on_event, deadline=self.deadline)
        self.stats.merge(batch.stats)
        return batch

    def simulate(self, request: SimRequest) -> Optional[SimulationResult]:
        batch = self.run(SimPlan([request]))
        return batch.get(request)

    def close(self) -> None:
        self.client.close()


# ------------------------------------------------------------ local daemon


def spawn_local_daemon(
    *,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    trace_store: Optional[str] = "off",
    extra_args: Sequence[str] = (),
    startup_timeout: float = 60.0,
) -> tuple[subprocess.Popen, str]:
    """Start ``python -m repro.service`` and wait for its address line.

    Returns ``(process, address)``.  The caller owns the process (terminate
    or :meth:`ServiceClient.shutdown_server` when done).  Used by the smoke
    tool and the SIGTERM-drain test; ``trace_store`` defaults to ``"off"``
    so spawning a daemon never touches the per-user store.
    """

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.dirname(package_root)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro.service", "--workers", str(workers)]
    if cache_dir is not None:
        command += ["--cache", cache_dir]
    if trace_store is not None:
        command += ["--trace-store", trace_store]
    command += list(extra_args)
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env
    )
    assert process.stdout is not None
    deadline = time.monotonic() + startup_timeout
    line = b""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line:
            break
        if process.poll() is not None:
            raise ServiceError(
                f"service daemon exited during startup (code {process.returncode})"
            )
    try:
        announcement = json.loads(line)
        if announcement.get("event") != "listening":
            raise ValueError(announcement)
        address = announcement["address"]
    except (ValueError, KeyError) as error:
        process.terminate()
        raise ServiceError(f"bad daemon announcement {line!r}") from error
    return process, address
