"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

A long-lived daemon (:class:`ReproServer`) holds one warm result memo,
persistent :class:`~repro.sim.engine.ResultCache`, on-disk trace store and
process worker pool, and serves simulation plans to any number of
concurrent clients over newline-delimited JSON on a TCP or UNIX socket.
Identical in-flight requests are deduplicated across clients by a
digest-keyed singleflight table — each unique simulation executes exactly
once per daemon lifetime — and a fair scheduler interleaves chunks from
different clients under load.

Start a daemon::

    repro serve --workers 8 --cache ~/.cache/repro-results

and point any driver at it::

    python examples/reproduce_paper.py --service 127.0.0.1:7421

Daemons form a high-availability fabric (protocol v3): clients accept an
ordered endpoint list (``--service ADDR,ADDR,...``) and fail over between
daemons behind per-endpoint circuit breakers, ``health`` probes gate
endpoint selection, daemons replicate finished results from ``--peer``
daemons before executing, and when the whole fleet is unreachable the
client degrades to local execution.  ``repro status ADDR[,ADDR...]``
prints the fleet's health table.

See ``docs/service.md`` for the protocol, lifecycle and failure semantics.
"""

from .breaker import CircuitBreaker
from .client import (
    ServiceClient,
    ServiceEngine,
    parse_address,
    parse_endpoints,
    run_plan,
    spawn_local_daemon,
)
from .health import EndpointHealth, format_health_table, probe_endpoint, probe_endpoints
from .pool import ChunkPool
from .protocol import PROTOCOL_VERSION, request_from_wire, request_to_wire, result_checksum
from .scheduler import DEFAULT_CHUNK_SIZE, Chunk, FairScheduler, split_requests
from .server import DEFAULT_MAX_ATTEMPTS, DEFAULT_PEER_TIMEOUT, ReproServer, ServiceStats
from .singleflight import Flight, SingleflightTable

__all__ = [
    "ReproServer",
    "ServiceStats",
    "ServiceClient",
    "ServiceEngine",
    "CircuitBreaker",
    "EndpointHealth",
    "probe_endpoint",
    "probe_endpoints",
    "format_health_table",
    "run_plan",
    "parse_address",
    "parse_endpoints",
    "spawn_local_daemon",
    "SingleflightTable",
    "Flight",
    "FairScheduler",
    "Chunk",
    "split_requests",
    "ChunkPool",
    "PROTOCOL_VERSION",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_PEER_TIMEOUT",
    "request_to_wire",
    "request_from_wire",
    "result_checksum",
]
