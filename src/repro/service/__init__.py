"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

A long-lived daemon (:class:`ReproServer`) holds one warm result memo,
persistent :class:`~repro.sim.engine.ResultCache`, on-disk trace store and
process worker pool, and serves simulation plans to any number of
concurrent clients over newline-delimited JSON on a TCP or UNIX socket.
Identical in-flight requests are deduplicated across clients by a
digest-keyed singleflight table — each unique simulation executes exactly
once per daemon lifetime — and a fair scheduler interleaves chunks from
different clients under load.

Start a daemon::

    repro serve --workers 8 --cache ~/.cache/repro-results

and point any driver at it::

    python examples/reproduce_paper.py --service 127.0.0.1:7421

See ``docs/service.md`` for the protocol, lifecycle and failure semantics.
"""

from .client import ServiceClient, ServiceEngine, parse_address, run_plan, spawn_local_daemon
from .pool import ChunkPool
from .protocol import PROTOCOL_VERSION, request_from_wire, request_to_wire
from .scheduler import DEFAULT_CHUNK_SIZE, Chunk, FairScheduler, split_requests
from .server import DEFAULT_MAX_ATTEMPTS, ReproServer, ServiceStats
from .singleflight import Flight, SingleflightTable

__all__ = [
    "ReproServer",
    "ServiceStats",
    "ServiceClient",
    "ServiceEngine",
    "run_plan",
    "parse_address",
    "spawn_local_daemon",
    "SingleflightTable",
    "Flight",
    "FairScheduler",
    "Chunk",
    "split_requests",
    "ChunkPool",
    "PROTOCOL_VERSION",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_MAX_ATTEMPTS",
    "request_to_wire",
    "request_from_wire",
]
