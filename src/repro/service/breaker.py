"""Per-endpoint circuit breaker: quarantine flapping daemons, probe gently.

A :class:`CircuitBreaker` guards one remote endpoint (a service daemon the
client may fail over to, or a replication peer the daemon pulls results
from).  Instead of hammering a dead or flapping endpoint in a hot retry
loop, callers ask :meth:`~CircuitBreaker.allow` before each use and report
the outcome with :meth:`~CircuitBreaker.record_success` /
:meth:`~CircuitBreaker.record_failure`.

The classic three-state machine:

* **closed** — healthy.  Every call is allowed.  Consecutive failures are
  counted; reaching ``failure_threshold`` trips the breaker open.
* **open** — quarantined.  Calls are refused outright (no connection
  attempt, no timeout burned) until ``reset_timeout`` seconds have passed
  on the injected clock.
* **half-open** — probation.  After the cooldown, up to
  ``half_open_probes`` trial calls are allowed through.  One success
  closes the breaker (full health); one failure re-opens it and restarts
  the cooldown.

Transitions happen only inside :meth:`allow`, :meth:`record_success` and
:meth:`record_failure` — never on a background timer — so the machine is a
pure function of its call sequence and clock readings.  The clock is
injectable (``clock=``), which is how the hypothesis property test in
``tests/test_service_properties.py`` drives it against a reference model
without a single sleep.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting quarantine gate for one endpoint.

    Args:
        failure_threshold: Consecutive failures (while closed) that trip
            the breaker open.  ``1`` opens on the first failure — the
            right setting for fast client failover, where retrying the
            same endpoint means re-waiting a connect timeout.
        reset_timeout: Cooldown in seconds an open breaker holds before
            letting probe traffic through (half-open).
        half_open_probes: Trial calls admitted while half-open before
            :meth:`allow` starts refusing again (bounds concurrent probes
            against a maybe-recovered endpoint).
        clock: Monotonic time source; injectable so tests advance time
            explicitly instead of sleeping.
    """

    __slots__ = (
        "failure_threshold",
        "reset_timeout",
        "half_open_probes",
        "_clock",
        "_state",
        "_failures",
        "_opened_at",
        "_probes",
        "opened_count",
    )

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0
        #: Lifetime count of closed/half-open → open transitions.
        self.opened_count = 0

    # ---------------------------------------------------------------- state

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half-open``).

        Purely observational: reading the state never transitions it (an
        open breaker whose cooldown has elapsed still reports ``open``
        until :meth:`allow` admits the first probe).
        """

        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures recorded since the last success."""

        return self._failures

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker starts admitting probes (else 0)."""

        if self._state != OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.reset_timeout - self._clock())

    # ----------------------------------------------------------- the gate

    def allow(self) -> bool:
        """May the caller use the endpoint now?

        Closed: always.  Open: refuse until the cooldown elapses, then
        transition to half-open and admit the first probe.  Half-open:
        admit while fewer than ``half_open_probes`` probes are out.
        """

        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self._clock() - self._opened_at < self.reset_timeout:
                return False
            self._state = HALF_OPEN
            self._probes = 0
        if self._probes >= self.half_open_probes:
            return False
        self._probes += 1
        return True

    # ------------------------------------------------------------ outcomes

    def record_success(self) -> None:
        """A call to the endpoint succeeded: reset to fully closed."""

        self._state = CLOSED
        self._failures = 0
        self._probes = 0

    def record_failure(self) -> None:
        """A call failed: count it, trip or re-open as the state demands.

        While closed, the ``failure_threshold``-th consecutive failure
        opens the breaker.  While half-open, any failure re-opens it
        immediately (the probe disproved recovery).  While open — a late
        failure from a call admitted earlier — the cooldown restarts.
        """

        now = self._clock()
        if self._state == CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip(now)
        else:
            self._failures += 1
            self._trip(now)

    def _trip(self, now: float) -> None:
        if self._state != OPEN:
            self.opened_count += 1
        self._state = OPEN
        self._opened_at = now
        self._probes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self._state}, failures={self._failures}, "
            f"cooldown={self.cooldown_remaining():.3f}s)"
        )
