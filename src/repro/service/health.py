"""Endpoint health probing and the fleet status table.

One probe — :func:`probe_endpoint` — serves three consumers:

* the failover :class:`~repro.service.client.ServiceEngine`, which gates
  endpoint selection and circuit-breaker half-open probing on it;
* ``repro status ADDR[,ADDR...]`` (and ``tools/service_status.py``),
  which renders one :func:`format_health_table` row per endpoint;
* ``tools/service_smoke.py`` / ``tools/ha_smoke.py``, which assert the
  probe round-trip against live daemons.

A probe is one short-lived connection: connect, ``hello``/``welcome``
handshake, and — when the server speaks protocol v3 — one ``health``
request.  Against an older (v2) daemon the probe degrades cleanly: the
endpoint reports reachable with its advertised protocol and no health
detail, never an error.  An unreachable endpoint yields ``ok=False`` with
the failure text; probing never raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import ServiceError

__all__ = ["EndpointHealth", "probe_endpoint", "probe_endpoints", "format_health_table"]


@dataclass
class EndpointHealth:
    """One endpoint's probe outcome (reachable or not)."""

    address: str
    #: Reachable and handshaken.  ``False`` means the connection (or the
    #: handshake) failed; :attr:`error` says why.
    ok: bool
    error: Optional[str] = None
    #: Protocol version the server advertised (``None`` when unreachable).
    protocol: Optional[int] = None
    #: ``"ok"`` / ``"draining"`` from the v3 health payload; ``"legacy"``
    #: for a reachable pre-v3 server that cannot answer ``health``.
    status: Optional[str] = None
    uptime: Optional[float] = None
    workers: Optional[int] = None
    queued_chunks: Optional[int] = None
    running_chunks: Optional[int] = None
    in_flight: Optional[int] = None
    pool_generation: Optional[int] = None
    memo_entries: Optional[int] = None
    peer_hits: Optional[int] = None
    executed: Optional[int] = None
    #: The raw v3 health payload, for consumers that want every field.
    raw: dict[str, Any] = field(default_factory=dict)

    @property
    def ready(self) -> bool:
        """Reachable *and* willing to take new submissions."""

        return self.ok and self.status != "draining"


def probe_endpoint(address: str, *, timeout: float = 5.0) -> EndpointHealth:
    """Probe one endpoint; never raises.

    A *draining* daemon closes its listener, so from a fresh probe it is
    indistinguishable from a dead one (``ok=False``) — which is exactly
    what endpoint selection wants.  The ``"draining"`` status only appears
    when an already-connected client asks
    :meth:`~repro.service.client.ServiceClient.health`.

    Args:
        address: ``host:port`` or ``unix:/path``.
        timeout: Socket timeout for the connect and each reply line.
    """

    from .client import ServiceClient  # local import: client imports health

    try:
        client = ServiceClient(address, timeout=timeout, connect_retries=0)
    except ServiceError as error:
        return EndpointHealth(address=address, ok=False, error=str(error))
    try:
        protocol = client.server_protocol
        if protocol < 3:
            return EndpointHealth(
                address=address, ok=True, protocol=protocol, status="legacy"
            )
        payload = client.health()
    except ServiceError as error:
        return EndpointHealth(address=address, ok=False, error=str(error))
    finally:
        client.close()
    return EndpointHealth(
        address=address,
        ok=True,
        protocol=protocol,
        status=payload.get("status"),
        uptime=payload.get("uptime"),
        workers=payload.get("workers"),
        queued_chunks=payload.get("queued_chunks"),
        running_chunks=payload.get("running_chunks"),
        in_flight=payload.get("in_flight"),
        pool_generation=payload.get("pool_generation"),
        memo_entries=payload.get("memo_entries"),
        peer_hits=payload.get("peer_hits"),
        executed=payload.get("executed"),
        raw=payload,
    )


def probe_endpoints(
    addresses: Sequence[str], *, timeout: float = 5.0
) -> list[EndpointHealth]:
    """Probe every endpoint in order (sequentially; probes are cheap)."""

    return [probe_endpoint(address, timeout=timeout) for address in addresses]


def _cell(value: Any, fmt: str = "{}") -> str:
    return fmt.format(value) if value is not None else "-"


def format_health_table(reports: Sequence[EndpointHealth]) -> str:
    """Render probe results as an aligned text table (one endpoint per row)."""

    headers = (
        "ENDPOINT", "STATUS", "PROTO", "UPTIME", "WORKERS",
        "QUEUED", "RUNNING", "INFLIGHT", "POOLGEN", "MEMO", "PEERHITS",
    )
    rows = [headers]
    for report in reports:
        status = report.status if report.ok else "unreachable"
        rows.append((
            report.address,
            status or "-",
            _cell(report.protocol),
            _cell(report.uptime, "{:.1f}s"),
            _cell(report.workers),
            _cell(report.queued_chunks),
            _cell(report.running_chunks),
            _cell(report.in_flight),
            _cell(report.pool_generation),
            _cell(report.memo_entries),
            _cell(report.peer_hits),
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    for report in reports:
        if not report.ok and report.error:
            lines.append(f"  {report.address}: {report.error}")
    return "\n".join(lines)
