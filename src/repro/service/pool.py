"""The daemon's process worker pool, with worker-crash detection.

Chunks execute in long-lived worker processes through the same
:func:`~repro.sim.engine.runner.execute_group` path the batch runners use,
so service results are bit-identical to direct engine runs.  Long-lived
workers are the point: each worker's compiled-kernel cache and imported
module state stay warm across every chunk it executes, and all workers
share the parent's on-disk trace store, so the steady state of a busy
daemon emits no traces and compiles no kernels.

A worker that dies mid-chunk (OOM kill, segfault in an extension, fault
injection in tests) breaks the whole :class:`~concurrent.futures.process.
ProcessPoolExecutor`; every in-flight future fails with
``BrokenProcessPool``.  :class:`ChunkPool` converts that into
:class:`~repro.errors.WorkerCrashedError` per chunk and transparently
replaces the executor (once per breakage, guarded by a generation
counter), leaving requeue policy to the server.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import stat
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Optional, Sequence

from ..errors import WorkerCrashedError
from ..sim.engine import ExecutedRequest, TraceStoreStats, execute_group
from ..trace_store import TraceStore

#: One executed chunk: the per-request outcomes, the trace-tier counters,
#: and how many requests were satisfied by multi-config vector batches.
ChunkOutcome = tuple[list[ExecutedRequest], TraceStoreStats, int]


def _close_inherited_sockets() -> None:
    """Worker initializer: drop socket fds inherited from the daemon.

    A forked worker inherits every open descriptor, including the daemon's
    accepted client connections.  A worker holding a duplicate of a client
    socket keeps the TCP connection established after the client's own
    ``close()``, so the daemon never reads EOF and cannot cancel that
    client's pending work on disconnect.  Workers never legitimately use
    sockets — the executor's call/result queues are ``os.pipe()``s — so
    close every inherited socket at worker start.
    """

    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except OSError:  # pragma: no cover - no /proc (non-Linux)
        return
    for fd in fds:
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _run_chunk(payload: tuple[Sequence, Optional[str]]) -> ChunkOutcome:
    """Worker entry point (top-level so it is picklable by name)."""

    requests, store_dir = payload
    store = TraceStore(store_dir) if store_dir else None
    return execute_group(requests, store=store)


class ChunkPool:
    """Process pool executing chunks, resilient to worker death."""

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        trace_store_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("ChunkPool needs at least one worker")
        self.trace_store_dir = trace_store_dir
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Bumped each time a broken executor is retired, so several chunks
        #: crashing together replace the pool exactly once.
        self._generation = 0

    @property
    def generation(self) -> int:
        """How many broken executors have been retired (0 = original pool).

        Served on the protocol-v3 ``health`` probe: a climbing generation
        on a quiet daemon is the fingerprint of crashing workers.
        """

        return self._generation

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._context,
                initializer=_close_inherited_sockets,
            )
        return self._executor

    async def run(self, requests: Sequence) -> ChunkOutcome:
        """Execute one chunk; raises :class:`WorkerCrashedError` on a dead worker."""

        loop = asyncio.get_running_loop()
        executor = self._ensure_executor()
        generation = self._generation
        payload = (list(requests), self.trace_store_dir)
        try:
            return await loop.run_in_executor(executor, _run_chunk, payload)
        except BrokenExecutor as error:
            self._retire(generation)
            raise WorkerCrashedError(
                str(error) or "a pool worker process died mid-chunk"
            ) from error

    def _retire(self, generation: int) -> None:
        """Replace a broken executor (idempotent per breakage)."""

        if generation != self._generation or self._executor is None:
            return
        self._generation += 1
        executor, self._executor = self._executor, None
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        if self._executor is not None:
            executor, self._executor = self._executor, None
            executor.shutdown(wait=False, cancel_futures=True)
