"""repro — reproduction of "An Event-Triggered Programmable Prefetcher for
Irregular Workloads" (Ainsworth & Jones, ASPLOS 2018).

The package provides, in Python and from scratch:

* a simulated memory substrate (virtual address space, L1/L2 caches with
  MSHRs, TLB, DRAM) — :mod:`repro.memory`;
* an out-of-order main-core timing model driven by dependence-annotated
  dynamic traces — :mod:`repro.cpu`;
* the baseline prefetchers the paper compares against (stride reference
  prediction table, Markov GHB) — :mod:`repro.prefetch`;
* the event-triggered programmable prefetcher itself (address filter,
  observation queue, scheduler, PPUs with a kernel ISA, EWMA look-ahead,
  prefetch request queue, memory-request tags) — :mod:`repro.programmable`;
* the compiler analogue of the paper's LLVM passes (software-prefetch
  conversion and pragma-driven event generation over a small loop IR) —
  :mod:`repro.compiler`;
* the eight evaluation workloads — :mod:`repro.workloads`;
* the simulation driver and prefetch modes — :mod:`repro.sim`; and
* the experiment harness that regenerates every figure and table of the
  paper's evaluation — :mod:`repro.eval`.

Quickstart::

    from repro.config import SystemConfig
    from repro.sim import PrefetchMode, simulate
    from repro.workloads import build_workload

    workload = build_workload("randacc", scale="tiny")
    baseline = simulate(workload, PrefetchMode.NONE, SystemConfig.scaled())
    manual = simulate(workload, PrefetchMode.MANUAL, SystemConfig.scaled())
    print(baseline.cycles / manual.cycles)   # speedup from programmable prefetching
"""

from .config import SystemConfig
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["SystemConfig", "ReproError", "__version__"]
