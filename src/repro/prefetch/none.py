"""The no-prefetching baseline."""

from __future__ import annotations

from .base import HardwarePrefetcher


class NullPrefetcher(HardwarePrefetcher):
    """A prefetcher that never prefetches.

    Used as the Figure 7 baseline; attaching it is equivalent to leaving the
    hierarchy's snoop hook unset, but having an object keeps the simulation
    driver uniform across modes.
    """

    name = "none"

    def train(self, addr: int, time: float, level: str) -> list[int]:
        return []
