"""Baseline hardware prefetchers the paper compares against.

These implement the comparison points of Figure 7:

* :class:`~repro.prefetch.stride.StridePrefetcher` — a reference-prediction
  table stride prefetcher (Chen & Baer) with degree 8.
* :class:`~repro.prefetch.ghb.GHBPrefetcher` — a Markov global-history-buffer
  (G/AC) prefetcher (Nesbit & Smith), in "regular" (SRAM-sized) and "large"
  (1 GiB of state, zero-cost lookups) configurations.
* :class:`~repro.prefetch.none.NullPrefetcher` — the no-prefetching baseline.

Software prefetching is not a hardware unit; it is expressed directly in the
workload traces as :attr:`~repro.cpu.trace.OpKind.SOFTWARE_PREFETCH` ops plus
their address-generation instruction overhead.
"""

from .base import HardwarePrefetcher
from .ghb import GHBPrefetcher
from .none import NullPrefetcher
from .stride import StridePrefetcher

__all__ = [
    "HardwarePrefetcher",
    "StridePrefetcher",
    "GHBPrefetcher",
    "NullPrefetcher",
]
