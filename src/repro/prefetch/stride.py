"""Reference-prediction-table stride prefetcher.

This follows Chen & Baer's reference prediction table (the "Stride Prefetcher"
row of Table 1): accesses are grouped into streams by the cache-line-aligned
region they fall in, a stride is learned per stream, and once the stride has
repeated ``confidence_threshold`` times, ``degree`` lines ahead are prefetched.

In the absence of per-PC information in the dynamic trace (the trace carries
addresses and dependences, not program counters), streams are keyed by address
region, which is how region-based stride prefetchers in commercial cores
behave.  Strided workloads (the sequential key/index arrays in every
benchmark) train quickly; the irregular indirect accesses never establish a
stable stride, which is exactly the failure mode the paper describes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..config import CACHE_LINE_BYTES, StridePrefetcherConfig
from .base import HardwarePrefetcher

#: Size of the address region used to identify a stream (bytes).
_REGION_BYTES = 1 << 16


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(HardwarePrefetcher):
    """Region-keyed reference-prediction-table stride prefetcher."""

    name = "stride"

    def __init__(self, config: StridePrefetcherConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else StridePrefetcherConfig()
        self._table: OrderedDict[int, _StrideEntry] = OrderedDict()

    def train(self, addr: int, time: float, level: str) -> list[int]:
        del time, level
        region = addr // _REGION_BYTES
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.config.table_entries:
                self._table.popitem(last=False)
            self._table[region] = _StrideEntry(last_addr=addr)
            return []

        self._table.move_to_end(region)
        stride = addr - entry.last_addr
        if stride == 0:
            return []

        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.config.confidence_threshold + 1)
        else:
            entry.stride = stride
            entry.confidence = 1
        entry.last_addr = addr

        if entry.confidence < self.config.confidence_threshold:
            return []

        candidates: list[int] = []
        seen_lines: set[int] = set()
        for distance in range(1, self.config.degree + 1):
            target = addr + distance * entry.stride
            if target <= 0:
                break
            line = target - (target % CACHE_LINE_BYTES)
            if line not in seen_lines:
                seen_lines.add(line)
                candidates.append(line)
        return candidates

    def reset(self) -> None:
        super().reset()
        self._table.clear()
