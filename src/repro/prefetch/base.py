"""Common interface for the baseline hardware prefetchers.

A baseline prefetcher attaches to a :class:`~repro.memory.hierarchy.MemoryHierarchy`
through its demand snoop hook: every demand read is reported to the prefetcher
(with the level that served it), the prefetcher trains its internal state, and
any prefetch candidates it produces are issued straight back into the
hierarchy as L1 prefetches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..memory.hierarchy import MemoryHierarchy


@dataclass
class PrefetcherStats:
    """Counters common to all baseline prefetchers."""

    observations: int = 0
    prefetches_issued: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "observations": self.observations,
            "prefetches_issued": self.prefetches_issued,
        }


class HardwarePrefetcher(ABC):
    """A demand-access-trained prefetcher attached to the L1."""

    name = "base"

    def __init__(self) -> None:
        self.stats = PrefetcherStats()
        self._hierarchy: MemoryHierarchy | None = None

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Attach to a hierarchy's demand snoop hook."""

        self._hierarchy = hierarchy
        hierarchy.set_demand_snoop(self._on_snoop)

    def detach(self) -> None:
        if self._hierarchy is not None:
            self._hierarchy.set_demand_snoop(None)
            self._hierarchy = None

    # ------------------------------------------------------------------ hooks

    def _on_snoop(self, addr: int, time: float, level: str) -> None:
        self.stats.observations += 1
        candidates = self.train(addr, time, level)
        if not candidates or self._hierarchy is None:
            return
        for target in candidates:
            self.stats.prefetches_issued += 1
            self._hierarchy.prefetch_access(target, time)

    @abstractmethod
    def train(self, addr: int, time: float, level: str) -> list[int]:
        """Observe a demand read and return addresses to prefetch (may be empty)."""

    def reset(self) -> None:
        self.stats = PrefetcherStats()
