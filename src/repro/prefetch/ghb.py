"""Markov global-history-buffer (GHB) prefetcher.

Implements the GHB G/AC organisation of Nesbit & Smith used as the history
baseline in the paper: a global history buffer of miss addresses in arrival
order, plus an index table mapping a miss address to its most recent
occurrence (address correlation).  On a miss, the prefetcher follows the chain
of previous occurrences of the same address and prefetches the addresses that
followed each of them — up to ``width`` successors from each of up to
``depth`` occurrences.

Two presets mirror the paper:

* *regular* — 2048-entry index and history buffer, an SRAM-realistic size;
* *large* — 2^26 entries (the paper's 1 GiB experiment), given free lookups.

As in the paper, the large configuration only helps workloads whose miss
footprint both fits in the history and repeats (G500-List, ConjGrad); the
others either touch too much data or never repeat an address.

The history is stored as an append-only list indexed by a monotonically
increasing position; capacity is enforced by treating entries older than
``history_entries`` positions as overwritten.  This is timing-equivalent to a
circular buffer and keeps the linked "previous occurrence" chains simple.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import CACHE_LINE_BYTES, GHBPrefetcherConfig
from .base import HardwarePrefetcher


class GHBPrefetcher(HardwarePrefetcher):
    """Markov (address-correlating) global history buffer prefetcher."""

    name = "ghb"

    def __init__(self, config: GHBPrefetcherConfig | None = None, *, label: str | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else GHBPrefetcherConfig.regular()
        if label is not None:
            self.name = label
        #: position -> (line_address, position of previous occurrence or -1)
        self._history: list[tuple[int, int]] = []
        #: line address -> most recent position in the history buffer
        self._index: OrderedDict[int, int] = OrderedDict()

    # ------------------------------------------------------------------ train

    def train(self, addr: int, time: float, level: str) -> list[int]:
        del time
        line = addr - (addr % CACHE_LINE_BYTES)

        # Markov prefetchers train on L1 misses: hits carry no new
        # correlation information and would pollute the buffer.
        if level == "l1":
            return []

        candidates = self._predict(line)
        self._record(line)
        return candidates

    # ---------------------------------------------------------------- predict

    def _is_live(self, position: int) -> bool:
        """True when the history slot has not been (conceptually) overwritten."""

        if position < 0 or position >= len(self._history):
            return False
        return len(self._history) - position <= self.config.history_entries

    def _predict(self, line: int) -> list[int]:
        position = self._index.get(line)
        candidates: list[int] = []
        seen: set[int] = set()
        depth_remaining = self.config.depth
        while position is not None and depth_remaining > 0 and self._is_live(position):
            stored_line, previous = self._history[position]
            if stored_line != line:
                break
            for offset in range(1, self.config.width + 1):
                successor_pos = position + offset
                if not self._is_live(successor_pos):
                    break
                successor_line, _ = self._history[successor_pos]
                if successor_line != line and successor_line not in seen:
                    seen.add(successor_line)
                    candidates.append(successor_line)
            position = previous if previous >= 0 else None
            depth_remaining -= 1
        return candidates

    # ----------------------------------------------------------------- record

    def _record(self, line: int) -> None:
        previous = self._index.get(line, -1)
        position = len(self._history)
        self._history.append((line, previous))

        if line in self._index:
            self._index.move_to_end(line)
        elif len(self._index) >= self.config.index_entries:
            self._index.popitem(last=False)
        self._index[line] = position

    def reset(self) -> None:
        super().reset()
        self._history.clear()
        self._index.clear()
