"""The ``repro`` console entry point.

Subcommands:

``repro serve``
    Run the long-lived simulation service daemon (see
    :mod:`repro.service.server` and ``docs/service.md``).  All arguments
    after ``serve`` are forwarded to the daemon's own parser::

        repro serve --workers 8 --cache ~/.cache/repro-results --port 7421

``repro version``
    Print package version, protocol version and code fingerprint — the
    fingerprint is the content hash that keys every cached result, so two
    checkouts printing the same value share caches.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional


def main(argv: Optional[list[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    # Forward everything after `serve` verbatim to the daemon's own parser
    # (argparse.REMAINDER cannot: it refuses leading options like --help).
    if arguments and arguments[0] == "serve":
        from .service.server import main as serve_main

        return serve_main(arguments[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programmable-prefetcher reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("serve", help="run the simulation service daemon (repro serve --help)")
    sub.add_parser("version", help="print version and code fingerprint")

    args = parser.parse_args(arguments)
    if args.command == "version":
        from . import __version__
        from .service.protocol import PROTOCOL_VERSION
        from .sim.engine.request import code_fingerprint

        print(f"repro {__version__}")
        print(f"service protocol {PROTOCOL_VERSION}")
        print(f"code fingerprint {code_fingerprint()}")
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
