"""The ``repro`` console entry point.

Subcommands:

``repro serve``
    Run the long-lived simulation service daemon (see
    :mod:`repro.service.server` and ``docs/service.md``).  All arguments
    after ``serve`` are forwarded to the daemon's own parser::

        repro serve --workers 8 --cache ~/.cache/repro-results --port 7421

``repro status ADDR[,ADDR...]``
    Probe each service endpoint and print one health row per daemon
    (reachability, protocol, uptime, queue depth, pool generation, peer
    hits).  Exits nonzero when any endpoint is unreachable, so scripts can
    gate on fleet health.

``repro version``
    Print package version, protocol version and code fingerprint — the
    fingerprint is the content hash that keys every cached result, so two
    checkouts printing the same value share caches.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional


def main(argv: Optional[list[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    # Forward everything after `serve` verbatim to the daemon's own parser
    # (argparse.REMAINDER cannot: it refuses leading options like --help).
    if arguments and arguments[0] == "serve":
        from .service.server import main as serve_main

        return serve_main(arguments[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programmable-prefetcher reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("serve", help="run the simulation service daemon (repro serve --help)")
    status = sub.add_parser(
        "status", help="probe service endpoint health (repro status ADDR[,ADDR...])"
    )
    status.add_argument(
        "endpoints",
        metavar="ADDR[,ADDR...]",
        help="comma-separated service endpoints (host:port or unix:/path)",
    )
    status.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-endpoint probe timeout (default: %(default)s)",
    )
    sub.add_parser("version", help="print version and code fingerprint")

    args = parser.parse_args(arguments)
    if args.command == "status":
        return status_main(args.endpoints, timeout=args.timeout)
    if args.command == "version":
        from . import __version__
        from .service.protocol import PROTOCOL_VERSION
        from .sim.engine.request import code_fingerprint

        print(f"repro {__version__}")
        print(f"service protocol {PROTOCOL_VERSION}")
        print(f"code fingerprint {code_fingerprint()}")
        return 0
    parser.print_help()
    return 2


def status_main(spec: str, *, timeout: float = 5.0) -> int:
    """Probe ``spec`` endpoints, print the health table, return exit code."""

    from .errors import ServiceError
    from .service import format_health_table, parse_endpoints, probe_endpoints

    try:
        endpoints = parse_endpoints(spec)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    reports = probe_endpoints(endpoints, timeout=timeout)
    print(format_health_table(reports))
    return 0 if all(report.ok for report in reports) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
