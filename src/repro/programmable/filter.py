"""Address filter and filter table (Section 4.2).

The filter snoops every demand load from the main core and every prefetch
fill arriving at the L1, and matches the address against the configured
virtual-address ranges.  Matching observations are forwarded to the
observation queue together with the registered kernel entry point (``Load
Ptr`` for demand loads, ``PF Ptr`` for completed prefetches).  Ranges may
overlap; an address inside several ranges produces one observation per range,
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .config_api import PrefetcherConfiguration, RangeConfig


@dataclass(slots=True)
class FilterStats:
    load_snoops: int = 0
    load_matches: int = 0
    prefetch_matches: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "load_snoops": self.load_snoops,
            "load_matches": self.load_matches,
            "prefetch_matches": self.prefetch_matches,
        }


class AddressFilter:
    """Matches addresses against the configured filter-table ranges."""

    def __init__(self, configuration: PrefetcherConfiguration, max_entries: int) -> None:
        ranges = configuration.ranges
        if len(ranges) > max_entries:
            raise ConfigurationError(
                f"configuration declares {len(ranges)} address ranges, but the filter "
                f"table only has {max_entries} entries"
            )
        self._ranges = ranges
        # The kernel/timing predicates are static per entry, so they are
        # evaluated once here; per-access matching then only compares the
        # address against (base, end) bounds.
        self._load_entries = [
            (entry.base, entry.end, entry)
            for entry in ranges
            if entry.load_kernel is not None or entry.time_iterations
        ]
        self._prefetch_entries = [
            (entry.base, entry.end, entry)
            for entry in ranges
            if entry.prefetch_kernel is not None or entry.chain_end or entry.chain_start
        ]
        self.stats = FilterStats()

    @property
    def ranges(self) -> list[RangeConfig]:
        return list(self._ranges)

    def match_load(self, addr: int) -> list[RangeConfig]:
        """Return every range whose load events should fire for ``addr``.

        Ranges that only participate in EWMA timing (``time_iterations`` but
        no kernel) are included so the engine can record the iteration time.
        """

        self.stats.load_snoops += 1
        matches = [
            entry for base, end, entry in self._load_entries if base <= addr < end
        ]
        if matches:
            self.stats.load_matches += 1
        return matches

    def match_prefetch(self, addr: int) -> list[RangeConfig]:
        """Return every range whose prefetch-completion events should fire for ``addr``."""

        matches = [
            entry for base, end, entry in self._prefetch_entries if base <= addr < end
        ]
        if matches:
            self.stats.prefetch_matches += 1
        return matches
