"""PPU kernel ISA.

A *kernel* is the small program a programmable prefetch unit runs in response
to one observation (a snooped demand load or a returned prefetch).  Kernels in
the paper are tiny C-like procedures compiled for the in-order PPU cores
(Figure 4(b)); here they are expressed in a small register-based ISA so that

* manual kernels and compiler-generated kernels share one representation,
* the interpreter can both *execute* them (to compute prefetch addresses from
  real data values) and *time* them (dynamic instruction count scaled by the
  PPU/core clock ratio — the quantity behind the Figure 9 sweeps), and
* the paper's PPU restrictions fall out naturally: there are no loads or
  stores to memory, no stack, no calls — only the forwarded cache line, the
  triggering address, local registers, global prefetcher registers and the
  ``prefetch`` instruction.

Programs are built with :class:`KernelBuilder`, which allocates registers and
resolves branch labels::

    k = KernelBuilder("on_A_prefetch")
    data = k.get_data()                       # value of the observed word
    addr = k.add(k.get_global(BASE_B), k.shl(data, 3))
    k.prefetch(addr, tag=TAG_B)
    program = k.build()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Optional, Union

from ..errors import KernelError

#: Number of local registers available to a kernel (the paper's PPUs are
#: microcontroller-class cores; 16 general-purpose registers matches the
#: Cortex-M0+ register file).
NUM_LOCAL_REGISTERS = 16

#: Encoded size of one kernel instruction in bytes (for instruction-cache
#: footprint accounting only).
INSTRUCTION_BYTES = 4


class Opcode(IntEnum):
    """Kernel instruction opcodes."""

    LI = 0          # dst <- imm
    MOV = 1         # dst <- a
    ADD = 2         # dst <- a + b
    SUB = 3         # dst <- a - b
    MUL = 4         # dst <- a * b
    AND = 5         # dst <- a & b
    OR = 6          # dst <- a | b
    XOR = 7         # dst <- a ^ b
    SHL = 8         # dst <- a << b
    SHR = 9         # dst <- a >> b (logical)
    GET_VADDR = 10  # dst <- triggering virtual address
    GET_DATA = 11   # dst <- word of the forwarded line at the trigger address
    LINE_WORD = 12  # dst <- word `a` (0..7) of the forwarded cache line
    GET_GLOBAL = 13 # dst <- global prefetcher register `a`
    GET_LOOKAHEAD = 14  # dst <- EWMA look-ahead (elements) for stream `a`
    PREFETCH = 15   # issue prefetch to address in `a`, with tag `b` (-1: none)
    BEQ = 16        # if a == b goto target
    BNE = 17        # if a != b goto target
    BLT = 18        # if a < b goto target (signed)
    BGE = 19        # if a >= b goto target (signed)
    JUMP = 20       # goto target
    HALT = 21       # finish the event


#: Opcodes that write a destination register.
_WRITING_OPCODES = frozenset(
    {
        Opcode.LI,
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.GET_VADDR,
        Opcode.GET_DATA,
        Opcode.LINE_WORD,
        Opcode.GET_GLOBAL,
        Opcode.GET_LOOKAHEAD,
    }
)

#: Branch opcodes (their ``target`` field is an instruction index).
BRANCH_OPCODES = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JUMP})


@dataclass(frozen=True)
class Reg:
    """A handle to a local PPU register, returned by :class:`KernelBuilder`."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_LOCAL_REGISTERS:
            raise KernelError(f"register index {self.index} out of range")


@dataclass(frozen=True)
class Operand:
    """Either a register or an immediate."""

    is_immediate: bool
    value: int

    @classmethod
    def reg(cls, reg: Reg) -> "Operand":
        return cls(False, reg.index)

    @classmethod
    def imm(cls, value: int) -> "Operand":
        return cls(True, int(value))


#: Anything a builder method accepts as a source operand.
OperandLike = Union[Reg, int]


def _to_operand(value: OperandLike) -> Operand:
    if isinstance(value, Reg):
        return Operand.reg(value)
    if isinstance(value, int):
        return Operand.imm(value)
    raise KernelError(f"invalid operand: {value!r}")


@dataclass(frozen=True)
class Instruction:
    """One kernel instruction."""

    opcode: Opcode
    dst: int = 0
    a: Operand = field(default_factory=lambda: Operand.imm(0))
    b: Operand = field(default_factory=lambda: Operand.imm(0))
    target: int = 0


@dataclass(frozen=True)
class KernelProgram:
    """An immutable, validated kernel."""

    name: str
    instructions: tuple[Instruction, ...]

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def size_bytes(self) -> int:
        """Encoded size, used for instruction-cache footprint accounting."""

        return len(self.instructions) * INSTRUCTION_BYTES

    def validate(self) -> None:
        if not self.instructions:
            raise KernelError(f"kernel {self.name!r} is empty")
        limit = len(self.instructions)
        for index, instruction in enumerate(self.instructions):
            if instruction.opcode in BRANCH_OPCODES:
                if not 0 <= instruction.target < limit:
                    raise KernelError(
                        f"kernel {self.name!r}: instruction {index} branches to "
                        f"{instruction.target}, outside the program"
                    )
            if instruction.opcode in _WRITING_OPCODES:
                if not 0 <= instruction.dst < NUM_LOCAL_REGISTERS:
                    raise KernelError(
                        f"kernel {self.name!r}: instruction {index} writes register "
                        f"{instruction.dst}, out of range"
                    )
        if self.instructions[-1].opcode not in (Opcode.HALT, Opcode.JUMP):
            raise KernelError(
                f"kernel {self.name!r} must end with HALT (or an unconditional JUMP)"
            )


class KernelBuilder:
    """Builds :class:`KernelProgram` objects with automatic register allocation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._next_register = 0
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []

    # --------------------------------------------------------------- registers

    def _alloc(self) -> Reg:
        if self._next_register >= NUM_LOCAL_REGISTERS:
            raise KernelError(
                f"kernel {self.name!r} needs more than {NUM_LOCAL_REGISTERS} registers; "
                "PPUs have no stack to spill to"
            )
        reg = Reg(self._next_register)
        self._next_register += 1
        return reg

    def _emit(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def _emit_writing(
        self,
        opcode: Opcode,
        a: OperandLike = 0,
        b: OperandLike = 0,
        dst: Optional[Reg] = None,
    ) -> Reg:
        """Emit a register-writing instruction.

        ``dst`` reuses an existing register instead of allocating a fresh one;
        kernels with loops (edge walks, list walks) need this so the loop body
        updates the same registers on every trip.
        """

        if dst is None:
            dst = self._alloc()
        self._emit(Instruction(opcode, dst=dst.index, a=_to_operand(a), b=_to_operand(b)))
        return dst

    # ------------------------------------------------------------ value sources

    def imm(self, value: int, *, dst: Optional[Reg] = None) -> Reg:
        """Load an immediate into a fresh register."""

        return self._emit_writing(Opcode.LI, value, dst=dst)

    def get_vaddr(self, *, dst: Optional[Reg] = None) -> Reg:
        """The virtual address that triggered this event (``get_vaddr()``)."""

        return self._emit_writing(Opcode.GET_VADDR, dst=dst)

    def get_data(self, *, dst: Optional[Reg] = None) -> Reg:
        """The observed 64-bit word at the triggering address (``get_data()``)."""

        return self._emit_writing(Opcode.GET_DATA, dst=dst)

    def line_word(self, index: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        """Word ``index`` (0-7) of the forwarded cache line."""

        return self._emit_writing(Opcode.LINE_WORD, index, dst=dst)

    def get_global(self, index: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        """Global prefetcher register ``index`` (``get_base()`` and friends)."""

        return self._emit_writing(Opcode.GET_GLOBAL, index, dst=dst)

    def get_lookahead(self, stream: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        """The EWMA-derived look-ahead distance (in elements) for ``stream``."""

        return self._emit_writing(Opcode.GET_LOOKAHEAD, stream, dst=dst)

    # ------------------------------------------------------------------- ALU

    def mov(self, a: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.MOV, a, dst=dst)

    def add(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.ADD, a, b, dst=dst)

    def sub(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.SUB, a, b, dst=dst)

    def mul(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.MUL, a, b, dst=dst)

    def and_(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.AND, a, b, dst=dst)

    def or_(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.OR, a, b, dst=dst)

    def xor(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.XOR, a, b, dst=dst)

    def shl(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.SHL, a, b, dst=dst)

    def shr(self, a: OperandLike, b: OperandLike, *, dst: Optional[Reg] = None) -> Reg:
        return self._emit_writing(Opcode.SHR, a, b, dst=dst)

    # -------------------------------------------------------------- prefetch

    def prefetch(self, addr: OperandLike, tag: int = -1) -> None:
        """Issue a prefetch for the address in ``addr``.

        ``tag`` identifies the memory-request tag (Section 4.7) so the
        returned line triggers the registered follow-on kernel; ``-1`` means
        no follow-on event.
        """

        self._emit(
            Instruction(Opcode.PREFETCH, a=_to_operand(addr), b=Operand.imm(tag))
        )

    # ------------------------------------------------------------ control flow

    def label(self, name: str) -> None:
        """Define a branch target at the current position."""

        if name in self._labels:
            raise KernelError(f"kernel {self.name!r}: duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def _emit_branch(self, opcode: Opcode, a: OperandLike, b: OperandLike, label: str) -> None:
        self._fixups.append((len(self._instructions), label))
        self._emit(Instruction(opcode, a=_to_operand(a), b=_to_operand(b), target=-1))

    def branch_eq(self, a: OperandLike, b: OperandLike, label: str) -> None:
        self._emit_branch(Opcode.BEQ, a, b, label)

    def branch_ne(self, a: OperandLike, b: OperandLike, label: str) -> None:
        self._emit_branch(Opcode.BNE, a, b, label)

    def branch_lt(self, a: OperandLike, b: OperandLike, label: str) -> None:
        self._emit_branch(Opcode.BLT, a, b, label)

    def branch_ge(self, a: OperandLike, b: OperandLike, label: str) -> None:
        self._emit_branch(Opcode.BGE, a, b, label)

    def jump(self, label: str) -> None:
        self._fixups.append((len(self._instructions), label))
        self._emit(Instruction(Opcode.JUMP, target=-1))

    def halt(self) -> None:
        self._emit(Instruction(Opcode.HALT))

    # ----------------------------------------------------------------- build

    def build(self) -> KernelProgram:
        """Resolve labels, append a final HALT if needed, and validate."""

        if not self._instructions or self._instructions[-1].opcode not in (
            Opcode.HALT,
            Opcode.JUMP,
        ):
            self.halt()

        instructions = list(self._instructions)
        for position, label in self._fixups:
            if label not in self._labels:
                raise KernelError(f"kernel {self.name!r}: undefined label {label!r}")
            old = instructions[position]
            instructions[position] = Instruction(
                old.opcode, dst=old.dst, a=old.a, b=old.b, target=self._labels[label]
            )

        program = KernelProgram(self.name, tuple(instructions))
        program.validate()
        return program


def total_code_bytes(programs: Iterable[KernelProgram]) -> int:
    """Total encoded size of a set of kernels (instruction-cache footprint)."""

    return sum(program.size_bytes for program in programs)
