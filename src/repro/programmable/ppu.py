"""Programmable prefetch units (Section 4.4).

Each PPU is a tiny in-order core.  The model tracks when each unit is busy and
how much work it has done; kernel execution itself (both its effects and its
dynamic instruction count) is handled by
:func:`repro.programmable.interpreter.execute_kernel`, and the PPU converts
the instruction count into busy time using the PPU/core clock ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fixed per-event overhead, in PPU cycles, covering the scheduler writing the
#: observation into the PPU's registers and setting its program counter.
EVENT_DISPATCH_OVERHEAD_PPU_CYCLES = 2


@dataclass(slots=True)
class PPUStats:
    events_executed: int = 0
    instructions_executed: int = 0
    prefetches_generated: int = 0
    kernel_aborts: int = 0
    busy_cycles: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "events_executed": self.events_executed,
            "instructions_executed": self.instructions_executed,
            "prefetches_generated": self.prefetches_generated,
            "kernel_aborts": self.kernel_aborts,
            "busy_cycles": self.busy_cycles,
        }


@dataclass(slots=True)
class PPU:
    """One programmable prefetch unit."""

    ppu_id: int
    busy_until: float = 0.0
    stats: PPUStats = field(default_factory=PPUStats)

    def is_free(self, time: float) -> bool:
        return self.busy_until <= time

    def assign(self, start_time: float, ppu_instructions: int, cycle_ratio: float) -> float:
        """Occupy the PPU for one event; returns the completion time.

        ``ppu_instructions`` is the dynamic instruction count of the kernel;
        ``cycle_ratio`` is main-core cycles per PPU cycle.
        """

        duration = (ppu_instructions + EVENT_DISPATCH_OVERHEAD_PPU_CYCLES) * cycle_ratio
        self.busy_until = start_time + duration
        self.stats.events_executed += 1
        self.stats.instructions_executed += ppu_instructions
        self.stats.busy_cycles += duration
        return self.busy_until

    def extend(self, until: float) -> None:
        """Keep the PPU busy until ``until`` (used by the blocking ablation)."""

        if until > self.busy_until:
            self.stats.busy_cycles += until - self.busy_until
            self.busy_until = until

    def activity_factor(self, total_cycles: float) -> float:
        """Fraction of the run this PPU spent awake (Figure 10)."""

        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cycles / total_cycles)
