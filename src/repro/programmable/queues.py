"""Observation queue and prefetch request queue (Sections 4.3 and 4.6).

Both are bounded FIFOs.  Because prefetching is only a performance hint,
overflowing entries are dropped rather than exerting back-pressure on the
core or the PPUs; the paper drops the *oldest* entries ("old observations can
be safely dropped with no impact on correctness"), and so do these queues.
Drop counts are recorded so experiments can report how often each queue was
the bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from ..errors import ConfigurationError
from .events import Observation, PrefetchRequest

T = TypeVar("T")


class _DroppableFIFO(Generic[T]):
    """A bounded FIFO that drops its oldest entry when full."""

    __slots__ = ("_capacity", "entries", "pushed", "dropped")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be at least 1")
        self._capacity = capacity
        #: The backing deque, oldest first.  Public so hot paths (the
        #: prefetcher's dispatch/drain loops) can test emptiness and pop
        #: without per-iteration method calls; use :meth:`push` to add.
        self.entries: Deque[T] = deque()
        self.pushed = 0
        self.dropped = 0

    def push(self, entry: T) -> None:
        self.pushed += 1
        if len(self.entries) >= self._capacity:
            self.entries.popleft()
            self.dropped += 1
        self.entries.append(entry)

    def pop(self) -> Optional[T]:
        if not self.entries:
            return None
        return self.entries.popleft()

    def peek(self) -> Optional[T]:
        if not self.entries:
            return None
        return self.entries[0]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def clear(self) -> None:
        self.entries.clear()


class ObservationQueue(_DroppableFIFO[Observation]):
    """FIFO of filtered observations waiting for a free PPU."""

    __slots__ = ()


class PrefetchRequestQueue(_DroppableFIFO[PrefetchRequest]):
    """FIFO of generated prefetch addresses waiting for a free L1 MSHR."""

    __slots__ = ()
