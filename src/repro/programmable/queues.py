"""Observation queue and prefetch request queue (Sections 4.3 and 4.6).

Both are bounded FIFOs.  Because prefetching is only a performance hint,
overflowing entries are dropped rather than exerting back-pressure on the
core or the PPUs; the paper drops the *oldest* entries ("old observations can
be safely dropped with no impact on correctness"), and so do these queues.
Drop counts are recorded so experiments can report how often each queue was
the bottleneck.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

from ..errors import ConfigurationError
from .events import Observation, PrefetchRequest

T = TypeVar("T")


class _DroppableFIFO(Generic[T]):
    """A bounded FIFO that drops its oldest entry when full."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be at least 1")
        self._capacity = capacity
        self._entries: Deque[T] = deque()
        self.pushed = 0
        self.dropped = 0

    def push(self, entry: T) -> None:
        self.pushed += 1
        if len(self._entries) >= self._capacity:
            self._entries.popleft()
            self.dropped += 1
        self._entries.append(entry)

    def pop(self) -> Optional[T]:
        if not self._entries:
            return None
        return self._entries.popleft()

    def peek(self) -> Optional[T]:
        if not self._entries:
            return None
        return self._entries[0]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def clear(self) -> None:
        self._entries.clear()


class ObservationQueue(_DroppableFIFO[Observation]):
    """FIFO of filtered observations waiting for a free PPU."""


class PrefetchRequestQueue(_DroppableFIFO[PrefetchRequest]):
    """FIFO of generated prefetch addresses waiting for a free L1 MSHR."""
