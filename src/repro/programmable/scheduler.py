"""PPU scheduling policies (Section 4.3 / Figure 10).

The paper's scheduler assigns the oldest observation to the free PPU with the
lowest ID, which is what makes the Figure 10 activity-factor analysis
informative (low-ID units do most of the work when there is little prefetch
computation).  A round-robin policy is provided as the ablation the paper
mentions ("other scheduling policies would spread the work out more evenly,
but would not change the overall performance").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from .ppu import PPU


class SchedulingPolicy(ABC):
    """Chooses which free PPU receives the next observation."""

    name = "base"

    @abstractmethod
    def select(self, ppus: Sequence[PPU], time: float) -> Optional[PPU]:
        """Return a PPU that is free at ``time``, or None if all are busy."""


class LowestFreeIdPolicy(SchedulingPolicy):
    """Pick the free PPU with the lowest ID (the paper's policy)."""

    name = "lowest-free-id"

    def select(self, ppus: Sequence[PPU], time: float) -> Optional[PPU]:
        for ppu in ppus:
            if ppu.busy_until <= time:  # is_free(), sans the per-PPU call
                return ppu
        return None


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate across PPUs, spreading work evenly."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, ppus: Sequence[PPU], time: float) -> Optional[PPU]:
        count = len(ppus)
        for offset in range(count):
            candidate = ppus[(self._next + offset) % count]
            if candidate.is_free(time):
                self._next = (candidate.ppu_id + 1) % count
                return candidate
        return None
