"""Exponentially-weighted moving average (EWMA) calculators.

Section 4.5 of the paper: the prefetcher measures, in hardware, (a) the time
between successive observed reads to a configured data structure (the loop
iteration time) and (b) the time a chain of prefetches takes to complete, and
sets the look-ahead distance to their ratio — i.e. it tries to prefetch "the
element which will be accessed immediately after the prefetch is complete".

Both measurements are smoothed with EWMAs so a single slow DRAM access or an
unusually cheap iteration does not swing the distance around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError

#: Bounds on the dynamic look-ahead distance, in elements.  The lower bound
#: keeps the prefetcher at least one element ahead; the upper bound models the
#: finite reach a hardware implementation would allow and prevents the
#: distance from running away when iterations are extremely cheap.
MIN_LOOKAHEAD = 1
MAX_LOOKAHEAD = 64


@dataclass
class EWMA:
    """A single exponentially-weighted moving average."""

    alpha: float = 0.25
    _value: Optional[float] = field(default=None, repr=False)
    samples: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("EWMA alpha must be in (0, 1]")

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""

        if sample < 0:
            raise ConfigurationError("EWMA samples must be non-negative")
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * float(sample) + (1.0 - self.alpha) * self._value
        self.samples += 1
        return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def reset(self) -> None:
        self._value = None
        self.samples = 0


@dataclass
class LookaheadCalculator:
    """Pairs an iteration-time EWMA with a chain-latency EWMA for one stream.

    ``lookahead()`` returns the number of loop iterations (elements) the
    prefetch kernels should run ahead: the chain latency divided by the
    iteration time, clamped to ``[MIN_LOOKAHEAD, MAX_LOOKAHEAD]``.  Until both
    EWMAs have at least one sample, a configurable default distance is used,
    mirroring the warm-up behaviour of the hardware.

    The iteration-time input is smoothed over a small window of observations
    before entering the EWMA.  An out-of-order core issues the independent
    strided loads of several iterations back-to-back and then stalls while the
    window drains, so raw inter-observation deltas alternate between "almost
    zero" and "one full window"; averaging over ``iteration_window``
    observations recovers the true per-iteration rate, which is what the
    hardware's interval timer would measure.
    """

    alpha: float = 0.25
    default_distance: int = 4
    #: Number of observations folded into one iteration-time sample.
    iteration_window: int = 8
    iteration_time: EWMA = field(init=False)
    chain_latency: EWMA = field(init=False)
    _window_start_time: Optional[float] = field(default=None, repr=False)
    _window_count: int = field(default=0, repr=False)
    #: Memoised result of :meth:`lookahead`; kernels query the distance once
    #: per GET_LOOKAHEAD while the EWMAs change far less often, so the
    #: clamp/divide is recomputed only after a new sample arrives.
    _cached_distance: Optional[int] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.iteration_time = EWMA(self.alpha)
        self.chain_latency = EWMA(self.alpha)
        if self.iteration_window < 1:
            raise ConfigurationError("iteration_window must be at least 1")

    # ----------------------------------------------------------------- inputs

    def observe_iteration(self, time: float) -> None:
        """Record an observed read to the stream's trigger structure."""

        if self._window_start_time is None:
            self._window_start_time = time
            self._window_count = 0
            return
        self._window_count += 1
        if self._window_count >= self.iteration_window:
            delta = time - self._window_start_time
            if delta > 0:
                self.iteration_time.update(delta / self._window_count)
                self._cached_distance = None
            self._window_start_time = time
            self._window_count = 0

    def observe_chain(self, start_time: float, end_time: float) -> None:
        """Record the completion of a prefetch chain started at ``start_time``."""

        if end_time >= start_time:
            self.chain_latency.update(end_time - start_time)
            self._cached_distance = None

    # ---------------------------------------------------------------- outputs

    def lookahead(self) -> int:
        cached = self._cached_distance
        if cached is not None:
            return cached
        iteration = self.iteration_time.value
        latency = self.chain_latency.value
        if not iteration or latency is None:
            distance = self.default_distance
        else:
            distance = -(-int(latency) // max(1, int(iteration))) + 1
            distance = max(MIN_LOOKAHEAD, min(MAX_LOOKAHEAD, distance))
        self._cached_distance = distance
        return distance

    def reset(self) -> None:
        self.iteration_time.reset()
        self.chain_latency.reset()
        self._window_start_time = None
        self._window_count = 0
        self._cached_distance = None
