"""Event records flowing through the programmable prefetcher.

An :class:`Observation` is what the address filter emits into the observation
queue: the triggering address, the kernel to run, whether it came from a
snooped demand load or from a returned prefetch, and — for prefetch
observations — the forwarded cache line.  ``chain_start_time`` carries the
timestamp attached at the start of a timed prefetch chain (Section 4.5) so
the chain-latency EWMA can be updated when the chain reaches a range flagged
as its end.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple, Optional


class ObservationKind(Enum):
    """What produced the observation."""

    LOAD = "load"
    PREFETCH = "prefetch"


class Observation(NamedTuple):
    """One entry in the observation queue.

    ``NamedTuple`` rather than a frozen dataclass: thousands are constructed
    per simulation, and tuple construction skips the per-field
    ``object.__setattr__`` a frozen dataclass pays.
    """

    kind: ObservationKind
    addr: int
    time: float
    kernel_name: str
    line_base: int
    line_words: Optional[tuple[int, ...]] = None
    #: EWMA stream whose look-ahead this event's kernel should consult, if any.
    stream: Optional[str] = None
    #: Timestamp attached at the start of a timed prefetch chain.
    chain_start_time: Optional[float] = None


class PrefetchRequest(NamedTuple):
    """One entry in the prefetch request queue."""

    addr: int
    tag: int
    issue_time: float
    stream: Optional[str] = None
    chain_start_time: Optional[float] = None
