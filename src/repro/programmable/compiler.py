"""Ahead-of-time compilation of PPU kernels to native Python closures.

:func:`~repro.programmable.interpreter.execute_kernel` interprets a decoded
kernel one instruction at a time — a tuple unpack plus a chain of opcode
comparisons per *dynamic* instruction, paid on every PPU event.  Manual-mode
simulations run one kernel per observation and one per interesting fill,
which made the interpreter the hottest loop of the whole simulator
(BENCH_1: manual mode 5–8× slower than the no-prefetch baseline).

This module removes the per-event dispatch cost by translating each
:class:`~repro.programmable.kernel.KernelProgram` **once** into specialised
Python source:

* local PPU registers become Python locals (``r0`` … ``r15``),
* opcodes are inlined as masked 64-bit integer expressions (immediates are
  constant-folded into the source),
* branches become real control flow — basic blocks inside a dispatch loop;
  kernels without branches compile to straight-line functions,
* the ``MAX_DYNAMIC_INSTRUCTIONS`` watchdog and the interpreter's
  fault/abort semantics are preserved *exactly*: dynamic instruction counts
  feed PPU busy time, so they must stay bit-identical (pinned by the
  golden-stats suite and the differential harness in
  ``tests/test_kernel_compiler.py``).

The generated source is ``compile()``d once and cached by **program
digest**, so repeated engine constructions — per-point sweeps, warm caches,
multiprocess workers — reuse the compiled closure instead of paying
interpretation per event or compilation per simulation.

Compiled executors use a flat calling convention so the engine does not
allocate a ``KernelContext`` per event::

    executor(vaddr, line_base, line_words, global_registers, lookahead)
        -> (prefetches, instructions_executed, aborted)

Set ``REPRO_KERNEL_COMPILER=off`` to fall back to the interpreter; the CI
matrix runs the golden-stats suite both ways, and the two tiers are
bit-identical by construction.
"""

from __future__ import annotations

import hashlib
import os
import re
from typing import Callable, Optional, Sequence

from ..config import WORD_BYTES
from ..errors import KernelRuntimeError
from .interpreter import (
    MAX_DYNAMIC_INSTRUCTIONS,
    KernelContext,
    KernelExecutionResult,
    execute_kernel,
)
from .kernel import BRANCH_OPCODES, KernelProgram, Opcode, Operand

#: A compiled (or interpreter-wrapping) kernel executor.  Returns
#: ``(prefetches, instructions_executed, aborted)``.
KernelExecutor = Callable[
    [int, int, Optional[Sequence[int]], Sequence[int], Callable[[int], int]],
    tuple,
]

#: Environment variable selecting the execution tier.  Anything in
#: :data:`_OFF_VALUES` routes kernels through the interpreter instead.
COMPILER_ENV_VAR = "REPRO_KERNEL_COMPILER"

_OFF_VALUES = frozenset({"off", "0", "false", "no", "interpreter"})

_U64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_WORDS_PER_LINE = 8

_OP_LI = int(Opcode.LI)
_OP_SHR = int(Opcode.SHR)
_OP_GET_DATA = int(Opcode.GET_DATA)
_OP_LINE_WORD = int(Opcode.LINE_WORD)
_OP_GET_GLOBAL = int(Opcode.GET_GLOBAL)
_OP_GET_LOOKAHEAD = int(Opcode.GET_LOOKAHEAD)
_OP_PREFETCH = int(Opcode.PREFETCH)
_OP_BEQ = int(Opcode.BEQ)
_OP_BNE = int(Opcode.BNE)
_OP_BLT = int(Opcode.BLT)
_OP_BGE = int(Opcode.BGE)
_OP_JUMP = int(Opcode.JUMP)
_OP_HALT = int(Opcode.HALT)

#: Opcodes with no side effect and no fault path: their dynamic-instruction
#: increments can be batched between checkpoints (registers are dead after an
#: abort, so executing a few extra pure ops past the watchdog limit is
#: unobservable as long as the reported count is reconciled to the limit).
_PURE_OPCODES = frozenset(
    {
        int(Opcode.LI), int(Opcode.MOV), int(Opcode.ADD), int(Opcode.SUB),
        int(Opcode.MUL), int(Opcode.AND), int(Opcode.OR), int(Opcode.XOR),
        int(Opcode.SHL), int(Opcode.SHR), int(Opcode.GET_VADDR),
    }
)

_ALU_BINOPS = {
    int(Opcode.ADD): "+",
    int(Opcode.SUB): "-",
    int(Opcode.MUL): "*",
    int(Opcode.AND): "&",
    int(Opcode.OR): "|",
    int(Opcode.XOR): "^",
}

_BRANCH_CMP = {_OP_BEQ: "==", _OP_BNE: "!=", _OP_BLT: "<", _OP_BGE: ">="}


# --------------------------------------------------------------------- digest


def program_digest(program: KernelProgram) -> str:
    """Stable content digest of a kernel (the compiled-closure cache key).

    Covers the name (it appears in the generated source) and every
    instruction field, so two programs share a digest exactly when they
    generate identical code.  Stable across processes, unlike ``id()`` —
    multiprocess workers compile each distinct kernel once.
    """

    hasher = hashlib.sha256()
    hasher.update(program.name.encode("utf-8", "replace"))
    for instruction in program.instructions:
        hasher.update(
            repr(
                (
                    int(instruction.opcode),
                    instruction.a.is_immediate,
                    instruction.a.value,
                    instruction.b.is_immediate,
                    instruction.b.value,
                    instruction.dst,
                    instruction.target,
                )
            ).encode("utf-8")
        )
    return hasher.hexdigest()


# -------------------------------------------------------------------- codegen


def _operand_raw(operand: Operand) -> str:
    """The operand exactly as the interpreter reads it (immediates unmasked)."""

    return repr(operand.value) if operand.is_immediate else f"r{operand.value}"


def _operand_masked(operand: Operand) -> str:
    """The operand masked to 64 bits (register values are invariantly masked)."""

    return repr(operand.value & _U64) if operand.is_immediate else f"r{operand.value}"


def _operand_signed(operand: Operand) -> str:
    """The operand as the signed 64-bit value branch comparisons use."""

    if operand.is_immediate:
        value = operand.value & _U64
        return repr(value - (1 << 64) if value & _SIGN_BIT else value)
    name = f"r{operand.value}"
    return f"({name} - {1 << 64} if {name} & {_SIGN_BIT} else {name})"


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"\W", "_", name)
    return cleaned if cleaned and not cleaned[0].isdigit() else f"k_{cleaned}"


def generate_source(program: KernelProgram) -> str:
    """Code-generate the specialised Python source for ``program``.

    The emitted function preserves the interpreter's observable behaviour
    bit-for-bit: prefetches (addresses and tags, in order), the dynamic
    instruction count (including the instruction that faulted, and exactly
    ``MAX_DYNAMIC_INSTRUCTIONS`` on a watchdog abort) and the abort flag.
    Dynamic-instruction accounting is batched across runs of pure ALU
    instructions and reconciled at every *checkpoint* — a faulting or
    side-effecting instruction, a branch, or HALT — which is exactly the
    granularity at which an abort becomes observable.
    """

    program.validate()
    instructions = program.instructions
    count = len(instructions)
    opcode_ints = [int(instruction.opcode) for instruction in instructions]

    uses_data = _OP_GET_DATA in opcode_ints
    uses_globals = _OP_GET_GLOBAL in opcode_ints
    registers: set[int] = set()
    for instruction, opcode in zip(instructions, opcode_ints):
        if not instruction.a.is_immediate:
            registers.add(instruction.a.value)
        if not instruction.b.is_immediate:
            registers.add(instruction.b.value)
        if opcode <= _OP_GET_LOOKAHEAD:  # every register-writing opcode
            registers.add(instruction.dst)

    # Basic blocks: every branch target and every fall-through successor of a
    # branch starts a block.  A program with no branches is one block and
    # compiles to a straight-line function without the dispatch loop.
    leaders = {0}
    for index, instruction in enumerate(instructions):
        if instruction.opcode in BRANCH_OPCODES:
            leaders.add(instruction.target)
            if index + 1 < count:
                leaders.add(index + 1)
    order = sorted(leaders)
    block_of = {start: block for block, start in enumerate(order)}
    multi = len(order) > 1 or any(
        instruction.opcode in BRANCH_OPCODES for instruction in instructions
    )

    lines: list[str] = []
    fn_name = f"_kernel_{_sanitize(program.name)}"
    lines.append(
        f"def {fn_name}(vaddr, line_base, line_words, global_registers, lookahead):"
    )

    def emit(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    if registers:
        emit(1, " = ".join(f"r{index}" for index in sorted(registers)) + " = 0")
    emit(1, "prefetches = []")
    if _OP_PREFETCH in opcode_ints:
        emit(1, "_append = prefetches.append")
    emit(1, "executed = 0")
    if uses_data:
        # The data word is a pure function of the event; hoist it out of the
        # (possibly repeated) GET_DATA sites.  ``None`` marks both fault
        # cases — no forwarded line, trigger outside the line — which the
        # GET_DATA site re-raises with the interpreter's timing.
        emit(1, "_data = None")
        emit(1, "if line_words is not None:")
        emit(2, f"_off = (vaddr - line_base) // {WORD_BYTES}")
        emit(2, f"if 0 <= _off < {_WORDS_PER_LINE}:")
        emit(3, f"_data = line_words[_off] & {_U64}")
    if uses_globals:
        emit(1, "_ng = len(global_registers)")
    emit(1, "try:")

    base = 2  # statement depth inside ``try`` (single-block programs)
    if multi:
        emit(2, "_b = 0")
        emit(2, "while True:")
        base = 4  # inside ``if _b == k:`` inside ``while`` inside ``try``

    pending = 0  # pure instructions executed since the last checkpoint

    def checkpoint(depth: int) -> None:
        """Reconcile ``executed`` (including the current instruction) and
        apply the watchdog exactly where the interpreter would."""

        nonlocal pending
        emit(depth, f"executed += {pending + 1}")
        emit(depth, f"if executed > {MAX_DYNAMIC_INSTRUCTIONS}:")
        emit(depth + 1, f"return prefetches, {MAX_DYNAMIC_INSTRUCTIONS}, True")
        pending = 0

    for index, (instruction, opcode) in enumerate(zip(instructions, opcode_ints)):
        if multi and index in block_of:
            block = block_of[index]
            if index > 0:
                # Fall-through edge into this block: flush the pure batch so
                # both entry paths agree on ``executed``.
                if pending:
                    emit(base, f"executed += {pending}")
                    pending = 0
                if instructions[index - 1].opcode not in BRANCH_OPCODES and (
                    opcode_ints[index - 1] != _OP_HALT
                ):
                    emit(base, f"_b = {block}")
            emit(3, f"if _b == {block}:")

        a, b, dst = instruction.a, instruction.b, instruction.dst

        if opcode in _PURE_OPCODES:
            pending += 1
            if opcode <= int(Opcode.MOV):  # LI / MOV: dst <- a, masked
                emit(base, f"r{dst} = {_operand_masked(a)}")
            elif opcode in _ALU_BINOPS:
                emit(
                    base,
                    f"r{dst} = ({_operand_raw(a)} {_ALU_BINOPS[opcode]} "
                    f"{_operand_raw(b)}) & {_U64}",
                )
            elif opcode == int(Opcode.SHL):
                shift = repr(b.value & 63) if b.is_immediate else f"(r{b.value} & 63)"
                emit(base, f"r{dst} = ({_operand_raw(a)} << {shift}) & {_U64}")
            elif opcode == _OP_SHR:
                shift = repr(b.value & 63) if b.is_immediate else f"(r{b.value} & 63)"
                emit(base, f"r{dst} = {_operand_masked(a)} >> {shift}")
            else:  # GET_VADDR
                emit(base, f"r{dst} = vaddr & {_U64}")
            continue

        if opcode == _OP_GET_DATA:
            checkpoint(base)
            emit(base, "if _data is None:")
            emit(base + 1, "raise _Fault('no data word for this event')")
            emit(base, f"r{dst} = _data")
            continue

        if opcode == _OP_LINE_WORD:
            checkpoint(base)
            if a.is_immediate:
                if 0 <= a.value < _WORDS_PER_LINE:
                    emit(base, "if line_words is None:")
                    emit(base + 1, "raise _Fault('no cache line was forwarded')")
                    emit(base, f"r{dst} = line_words[{a.value}] & {_U64}")
                else:
                    emit(base, f"raise _Fault('line word index {a.value} out of range')")
            else:
                emit(
                    base,
                    f"if line_words is None or not 0 <= r{a.value} < {_WORDS_PER_LINE}:",
                )
                emit(base + 1, "raise _Fault('bad line word access')")
                emit(base, f"r{dst} = line_words[r{a.value}] & {_U64}")
            continue

        if opcode == _OP_GET_GLOBAL:
            checkpoint(base)
            if a.is_immediate:
                if a.value < 0:
                    emit(base, f"raise _Fault('global register {a.value} out of range')")
                else:
                    emit(base, f"if {a.value} >= _ng:")
                    emit(base + 1, f"raise _Fault('global register {a.value} out of range')")
                    emit(base, f"r{dst} = global_registers[{a.value}] & {_U64}")
            else:
                emit(base, f"if not 0 <= r{a.value} < _ng:")
                emit(base + 1, "raise _Fault('global register out of range')")
                emit(base, f"r{dst} = global_registers[r{a.value}] & {_U64}")
            continue

        if opcode == _OP_GET_LOOKAHEAD:
            checkpoint(base)
            emit(base, f"r{dst} = int(lookahead({_operand_raw(a)})) & {_U64}")
            continue

        if opcode == _OP_PREFETCH:
            checkpoint(base)
            emit(base, f"_append(({_operand_masked(a)}, {_operand_raw(b)}))")
            continue

        if opcode == _OP_HALT:
            checkpoint(base)
            emit(base, "return prefetches, executed, False")
            continue

        # Branches.  Taken edges assign the target block; backward edges
        # re-enter the dispatch loop with ``continue``, forward edges simply
        # fall through the remaining (non-matching) block tests.
        checkpoint(base)
        target_block = block_of[instruction.target]
        backward = target_block <= block_of[max(s for s in order if s <= index)]
        if opcode == _OP_JUMP:
            emit(base, f"_b = {target_block}")
            if backward:
                emit(base, "continue")
            continue
        if opcode in (_OP_BEQ, _OP_BNE):
            condition = f"{_operand_masked(a)} {_BRANCH_CMP[opcode]} {_operand_masked(b)}"
        else:  # BLT / BGE: signed comparison
            condition = f"{_operand_signed(a)} {_BRANCH_CMP[opcode]} {_operand_signed(b)}"
        emit(base, f"if {condition}:")
        emit(base + 1, f"_b = {target_block}")
        if backward:
            emit(base + 1, "continue")
        if index + 1 < count:
            emit(base, "else:")
            emit(base + 1, f"_b = {block_of[index + 1]}")

    emit(1, "except _Fault:")
    emit(2, "return prefetches, executed, True")
    emit(1, "return prefetches, executed, False")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ compiling

#: Compiled executors keyed by program digest.  Bounded like the
#: interpreter's decoded cache: past the cap the whole cache is cleared
#: (kernel sets are tiny; re-compilation is cheap and the clear releases the
#: closures of long-dead sweeps).
_COMPILED_CACHE: dict[str, KernelExecutor] = {}
_COMPILED_CACHE_MAX = 512


def compile_kernel(program: KernelProgram) -> KernelExecutor:
    """Compile ``program`` to a native Python closure (digest-cached)."""

    digest = program_digest(program)
    cached = _COMPILED_CACHE.get(digest)
    if cached is not None:
        return cached
    if len(_COMPILED_CACHE) >= _COMPILED_CACHE_MAX:
        _COMPILED_CACHE.clear()
    source = generate_source(program)
    namespace: dict[str, object] = {"_Fault": KernelRuntimeError}
    code = compile(source, f"<ppu-kernel {program.name}#{digest[:12]}>", "exec")
    exec(code, namespace)
    executor: KernelExecutor = namespace[f"_kernel_{_sanitize(program.name)}"]  # type: ignore[assignment]
    _COMPILED_CACHE[digest] = executor
    return executor


def clear_compiled_cache() -> None:
    """Drop every cached closure (tests, long-lived processes)."""

    _COMPILED_CACHE.clear()


def interpreter_executor(program: KernelProgram) -> KernelExecutor:
    """Wrap :func:`execute_kernel` in the flat executor calling convention."""

    def run(vaddr, line_base, line_words, global_registers, lookahead):
        result = execute_kernel(
            program,
            KernelContext(
                vaddr=vaddr,
                line_base=line_base,
                line_words=line_words,
                global_registers=global_registers,
                lookahead=lookahead,
            ),
        )
        return result.prefetches, result.instructions_executed, result.aborted

    return run


def compiler_enabled() -> bool:
    """Whether the compiled tier is selected (default on; env-switchable)."""

    return os.environ.get(COMPILER_ENV_VAR, "on").strip().lower() not in _OFF_VALUES


def kernel_executor(program: KernelProgram) -> KernelExecutor:
    """The executor the engine should route events through.

    Compiled by default; ``REPRO_KERNEL_COMPILER=off`` selects the
    interpreter fallback (same calling convention, bit-identical results).
    """

    if compiler_enabled():
        return compile_kernel(program)
    return interpreter_executor(program)


def run_compiled(program: KernelProgram, context: KernelContext) -> KernelExecutionResult:
    """Run the compiled tier under the interpreter's API (tests, tools)."""

    prefetches, executed, aborted = compile_kernel(program)(
        context.vaddr,
        context.line_base,
        context.line_words,
        context.global_registers,
        context.lookahead,
    )
    result = KernelExecutionResult(prefetches=prefetches, aborted=aborted)
    result.instructions_executed = executed
    return result
