"""Prefetcher configuration installed by the main program.

Before entering a prefetch-targeted loop, the main program executes a handful
of configuration instructions (emitted by the programmer or by the compiler
passes of Section 6) that tell the prefetcher:

* which **virtual address ranges** to watch, and which kernel to run when a
  demand load or a completed prefetch falls in each range (the filter table,
  Section 4.2);
* which **kernels** exist (their code lives in the PPUs' shared instruction
  cache);
* which **memory-request tags** exist for linked structures that cannot be
  identified by address range (Section 4.7), and which kernel each tag's
  returning prefetch should trigger;
* the values of **global prefetcher registers** (array bases, hash masks,
  element sizes — the ``get_base()`` values of Figure 4); and
* which **EWMA streams** exist for dynamic look-ahead (Section 4.5).

A :class:`PrefetcherConfiguration` is a plain description; the engine in
:mod:`repro.programmable.prefetcher` instantiates the runtime structures from
it.  It is also the unit of state that survives a context switch (Section 5.3:
only the configuration — global registers and the address table — needs to be
preserved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigurationError
from .kernel import KernelProgram


@dataclass(frozen=True)
class StreamConfig:
    """An EWMA look-ahead stream."""

    name: str
    index: int
    default_distance: int = 4


@dataclass(frozen=True)
class RangeConfig:
    """One filter-table entry: an address range plus its event kernels."""

    name: str
    base: int
    end: int
    load_kernel: Optional[str] = None
    prefetch_kernel: Optional[str] = None
    stream: Optional[str] = None
    #: Record the time between successive demand loads in this range
    #: (the iteration-time EWMA input).
    time_iterations: bool = False
    #: Attach the observation time to events generated from this range
    #: (the start of a timed prefetch chain).
    chain_start: bool = False
    #: A prefetch completing in this range ends the timed chain
    #: (the chain-latency EWMA input).
    chain_end: bool = False

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def validate(self) -> None:
        if self.end <= self.base:
            raise ConfigurationError(
                f"range {self.name!r}: end ({self.end:#x}) must be above base ({self.base:#x})"
            )


@dataclass(frozen=True)
class TagConfig:
    """A memory-request tag for linked structures (Section 4.7)."""

    tag: int
    name: str
    kernel: str
    stream: Optional[str] = None
    chain_end: bool = False


class PrefetcherConfiguration:
    """Everything the main program configures before a prefetched loop."""

    def __init__(self) -> None:
        self._kernels: dict[str, KernelProgram] = {}
        self._ranges: list[RangeConfig] = []
        self._tags: dict[int, TagConfig] = {}
        self._tag_names: dict[str, int] = {}
        self._globals: dict[str, int] = {}
        self._global_values: list[int] = []
        self._streams: dict[str, StreamConfig] = {}

    # ----------------------------------------------------------------- kernels

    def add_kernel(self, program: KernelProgram) -> None:
        program.validate()
        if program.name in self._kernels:
            raise ConfigurationError(f"kernel {program.name!r} registered twice")
        self._kernels[program.name] = program

    def kernel(self, name: str) -> KernelProgram:
        if name not in self._kernels:
            raise ConfigurationError(f"kernel {name!r} is not registered")
        return self._kernels[name]

    @property
    def kernels(self) -> dict[str, KernelProgram]:
        return dict(self._kernels)

    # ----------------------------------------------------------------- globals

    def set_global(self, name: str, value: int) -> int:
        """Configure a global prefetcher register; returns its index."""

        if name in self._globals:
            index = self._globals[name]
            self._global_values[index] = int(value)
            return index
        index = len(self._global_values)
        self._globals[name] = index
        self._global_values.append(int(value))
        return index

    def global_index(self, name: str) -> int:
        if name not in self._globals:
            raise ConfigurationError(f"global {name!r} was never configured")
        return self._globals[name]

    def global_values(self) -> list[int]:
        return list(self._global_values)

    @property
    def global_names(self) -> dict[str, int]:
        return dict(self._globals)

    # ----------------------------------------------------------------- streams

    def add_stream(self, name: str, default_distance: int = 4) -> int:
        """Register an EWMA look-ahead stream; returns its index."""

        if name in self._streams:
            return self._streams[name].index
        index = len(self._streams)
        self._streams[name] = StreamConfig(name=name, index=index, default_distance=default_distance)
        return index

    def stream_index(self, name: str) -> int:
        if name not in self._streams:
            raise ConfigurationError(f"stream {name!r} was never configured")
        return self._streams[name].index

    @property
    def streams(self) -> dict[str, StreamConfig]:
        return dict(self._streams)

    # ------------------------------------------------------------------ ranges

    def add_range(
        self,
        name: str,
        base: int,
        end: int,
        *,
        load_kernel: Optional[str] = None,
        prefetch_kernel: Optional[str] = None,
        stream: Optional[str] = None,
        time_iterations: bool = False,
        chain_start: bool = False,
        chain_end: bool = False,
    ) -> RangeConfig:
        """Add a filter-table entry for ``[base, end)``."""

        entry = RangeConfig(
            name=name,
            base=base,
            end=end,
            load_kernel=load_kernel,
            prefetch_kernel=prefetch_kernel,
            stream=stream,
            time_iterations=time_iterations,
            chain_start=chain_start,
            chain_end=chain_end,
        )
        entry.validate()
        self._ranges.append(entry)
        return entry

    @property
    def ranges(self) -> list[RangeConfig]:
        return list(self._ranges)

    # -------------------------------------------------------------------- tags

    def add_tag(
        self,
        name: str,
        kernel: str,
        *,
        stream: Optional[str] = None,
        chain_end: bool = False,
    ) -> int:
        """Register a memory-request tag; returns the integer tag value."""

        if name in self._tag_names:
            return self._tag_names[name]
        tag = len(self._tags)
        config = TagConfig(tag=tag, name=name, kernel=kernel, stream=stream, chain_end=chain_end)
        self._tags[tag] = config
        self._tag_names[name] = tag
        return tag

    def tag(self, tag: int) -> Optional[TagConfig]:
        return self._tags.get(tag)

    def tag_by_name(self, name: str) -> int:
        if name not in self._tag_names:
            raise ConfigurationError(f"tag {name!r} was never configured")
        return self._tag_names[name]

    @property
    def tags(self) -> dict[int, TagConfig]:
        return dict(self._tags)

    # -------------------------------------------------------------- validation

    def validate(self) -> None:
        """Check that every referenced kernel and stream exists."""

        referenced: list[tuple[str, Optional[str]]] = []
        for entry in self._ranges:
            entry.validate()
            referenced.append((f"range {entry.name!r} load kernel", entry.load_kernel))
            referenced.append((f"range {entry.name!r} prefetch kernel", entry.prefetch_kernel))
            if entry.stream is not None and entry.stream not in self._streams:
                raise ConfigurationError(
                    f"range {entry.name!r} references unknown stream {entry.stream!r}"
                )
        for config in self._tags.values():
            referenced.append((f"tag {config.name!r} kernel", config.kernel))
            if config.stream is not None and config.stream not in self._streams:
                raise ConfigurationError(
                    f"tag {config.name!r} references unknown stream {config.stream!r}"
                )
        for what, kernel_name in referenced:
            if kernel_name is not None and kernel_name not in self._kernels:
                raise ConfigurationError(f"{what} references unknown kernel {kernel_name!r}")

    # ------------------------------------------------------------- accounting

    def config_instruction_count(self) -> int:
        """Number of configuration instructions executed by the main core.

        Each address range takes two instructions (base and bound), each
        global register, tag and stream one; kernels are loaded out of band
        (their code is fetched by the PPUs' instruction cache).  Workloads add
        this as compute overhead before the prefetched loop so the (small)
        cost of configuration is represented in the main-core trace.
        """

        return 2 * len(self._ranges) + len(self._global_values) + len(self._tags) + len(self._streams)

    def code_footprint_bytes(self) -> int:
        """Total kernel code size (the shared PPU instruction-cache footprint)."""

        return sum(program.size_bytes for program in self._kernels.values())
