"""Functional + timing interpreter for PPU kernels.

The interpreter serves two purposes at once:

* *functional*: it computes the prefetch addresses a kernel generates from the
  observation it was handed (triggering address, forwarded cache line, global
  registers, EWMA look-ahead), so the simulation actually chases real indices
  and pointers; and
* *timing*: it counts the dynamic instructions executed, which the PPU model
  converts into busy time at the configured PPU clock.

Faults (unmapped line word, register overflow, runaway loops) terminate the
event silently, exactly as the paper specifies for traps on the PPUs
(Section 5.1).  The caller receives ``aborted=True`` and no prefetches beyond
those already generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..config import WORD_BYTES
from ..errors import KernelRuntimeError
from .kernel import NUM_LOCAL_REGISTERS, Instruction, KernelProgram, Opcode, Operand

#: Hard bound on dynamically executed instructions per event.  Prefetch
#: kernels are "typically only a few lines of code" (Section 4.4); the bound
#: exists to terminate buggy kernels the way a watchdog would.
MAX_DYNAMIC_INSTRUCTIONS = 4096

_WORDS_PER_LINE = 8
_U64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def _to_signed(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value & _SIGN_BIT else value


@dataclass(frozen=True)
class KernelContext:
    """Everything a kernel can read while it runs."""

    vaddr: int
    line_base: int
    line_words: Optional[Sequence[int]]
    global_registers: Sequence[int]
    lookahead: Callable[[int], int] = lambda stream: 1

    def data_word(self) -> int:
        """The word at the triggering address within the forwarded line."""

        if self.line_words is None:
            raise KernelRuntimeError("no cache line was forwarded with this event")
        offset = (self.vaddr - self.line_base) // WORD_BYTES
        if not 0 <= offset < _WORDS_PER_LINE:
            raise KernelRuntimeError("triggering address lies outside the forwarded line")
        return self.line_words[offset]

    def word(self, index: int) -> int:
        if self.line_words is None:
            raise KernelRuntimeError("no cache line was forwarded with this event")
        if not 0 <= index < _WORDS_PER_LINE:
            raise KernelRuntimeError(f"line word index {index} out of range")
        return self.line_words[index]


@dataclass
class KernelExecutionResult:
    """Outcome of running one kernel for one observation."""

    prefetches: list[tuple[int, int]] = field(default_factory=list)
    instructions_executed: int = 0
    aborted: bool = False

    @property
    def prefetch_addresses(self) -> list[int]:
        return [addr for addr, _tag in self.prefetches]


def _read(operand: Operand, registers: list[int]) -> int:
    if operand.is_immediate:
        return operand.value
    return registers[operand.value]


def execute_kernel(program: KernelProgram, context: KernelContext) -> KernelExecutionResult:
    """Run ``program`` against ``context`` and return its prefetches and cost."""

    registers = [0] * NUM_LOCAL_REGISTERS
    result = KernelExecutionResult()
    pc = 0
    instructions: tuple[Instruction, ...] = program.instructions

    try:
        while pc < len(instructions):
            if result.instructions_executed >= MAX_DYNAMIC_INSTRUCTIONS:
                raise KernelRuntimeError(
                    f"kernel {program.name!r} exceeded {MAX_DYNAMIC_INSTRUCTIONS} instructions"
                )
            instruction = instructions[pc]
            result.instructions_executed += 1
            opcode = instruction.opcode

            if opcode == Opcode.HALT:
                break

            if opcode == Opcode.PREFETCH:
                addr = _read(instruction.a, registers) & _U64
                tag = instruction.b.value if instruction.b.is_immediate else registers[instruction.b.value]
                result.prefetches.append((addr, tag))
                pc += 1
                continue

            if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JUMP):
                taken = True
                if opcode != Opcode.JUMP:
                    a = _to_signed(_read(instruction.a, registers))
                    b = _to_signed(_read(instruction.b, registers))
                    if opcode == Opcode.BEQ:
                        taken = a == b
                    elif opcode == Opcode.BNE:
                        taken = a != b
                    elif opcode == Opcode.BLT:
                        taken = a < b
                    else:  # BGE
                        taken = a >= b
                pc = instruction.target if taken else pc + 1
                continue

            # Register-writing instructions.
            a = _read(instruction.a, registers)
            b = _read(instruction.b, registers)
            if opcode == Opcode.LI or opcode == Opcode.MOV:
                value = a
            elif opcode == Opcode.ADD:
                value = a + b
            elif opcode == Opcode.SUB:
                value = a - b
            elif opcode == Opcode.MUL:
                value = a * b
            elif opcode == Opcode.AND:
                value = a & b
            elif opcode == Opcode.OR:
                value = a | b
            elif opcode == Opcode.XOR:
                value = a ^ b
            elif opcode == Opcode.SHL:
                value = a << (b & 63)
            elif opcode == Opcode.SHR:
                value = (a & _U64) >> (b & 63)
            elif opcode == Opcode.GET_VADDR:
                value = context.vaddr
            elif opcode == Opcode.GET_DATA:
                value = context.data_word()
            elif opcode == Opcode.LINE_WORD:
                value = context.word(a)
            elif opcode == Opcode.GET_GLOBAL:
                if not 0 <= a < len(context.global_registers):
                    raise KernelRuntimeError(f"global register {a} out of range")
                value = context.global_registers[a]
            elif opcode == Opcode.GET_LOOKAHEAD:
                value = int(context.lookahead(a))
            else:  # pragma: no cover - exhaustive over the ISA
                raise KernelRuntimeError(f"unknown opcode {opcode!r}")

            registers[instruction.dst] = value & _U64
            pc += 1
    except KernelRuntimeError:
        result.aborted = True

    return result
