"""Functional + timing interpreter for PPU kernels.

The interpreter serves two purposes at once:

* *functional*: it computes the prefetch addresses a kernel generates from the
  observation it was handed (triggering address, forwarded cache line, global
  registers, EWMA look-ahead), so the simulation actually chases real indices
  and pointers; and
* *timing*: it counts the dynamic instructions executed, which the PPU model
  converts into busy time at the configured PPU clock.

Faults (unmapped line word, register overflow, runaway loops) terminate the
event silently, exactly as the paper specifies for traps on the PPUs
(Section 5.1).  The caller receives ``aborted=True`` and no prefetches beyond
those already generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional, Sequence

from ..config import WORD_BYTES
from ..errors import KernelRuntimeError
from .kernel import NUM_LOCAL_REGISTERS, KernelProgram, Opcode, Operand

#: Hard bound on dynamically executed instructions per event.  Prefetch
#: kernels are "typically only a few lines of code" (Section 4.4); the bound
#: exists to terminate buggy kernels the way a watchdog would.
MAX_DYNAMIC_INSTRUCTIONS = 4096

_WORDS_PER_LINE = 8
_U64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63


def _to_signed(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value & _SIGN_BIT else value


def default_lookahead(stream: int) -> int:
    """Default look-ahead when no EWMA stream is wired up: one element ahead.

    A module-level named function rather than a lambda default so that
    contexts pickle cleanly (multiprocess paths) and tracebacks through the
    look-ahead callback name something greppable.
    """

    del stream
    return 1


class KernelContext(NamedTuple):
    """Everything a kernel can read while it runs.

    A ``NamedTuple``: one context is built per prefetcher event, and tuple
    construction is markedly cheaper than a frozen dataclass's.
    """

    vaddr: int
    line_base: int
    line_words: Optional[Sequence[int]]
    global_registers: Sequence[int]
    lookahead: Callable[[int], int] = default_lookahead

    def data_word(self) -> int:
        """The word at the triggering address within the forwarded line."""

        if self.line_words is None:
            raise KernelRuntimeError("no cache line was forwarded with this event")
        offset = (self.vaddr - self.line_base) // WORD_BYTES
        if not 0 <= offset < _WORDS_PER_LINE:
            raise KernelRuntimeError("triggering address lies outside the forwarded line")
        return self.line_words[offset]

    def word(self, index: int) -> int:
        if self.line_words is None:
            raise KernelRuntimeError("no cache line was forwarded with this event")
        if not 0 <= index < _WORDS_PER_LINE:
            raise KernelRuntimeError(f"line word index {index} out of range")
        return self.line_words[index]


@dataclass
class KernelExecutionResult:
    """Outcome of running one kernel for one observation."""

    prefetches: list[tuple[int, int]] = field(default_factory=list)
    instructions_executed: int = 0
    aborted: bool = False

    @property
    def prefetch_addresses(self) -> list[int]:
        return [addr for addr, _tag in self.prefetches]


def _read(operand: Operand, registers: list[int]) -> int:
    if operand.is_immediate:
        return operand.value
    return registers[operand.value]


# Plain-int opcode constants: the interpreter loop compares against these
# instead of ``Opcode`` members (IntEnum equality costs a method call).
_OP_LI = int(Opcode.LI)
_OP_MOV = int(Opcode.MOV)
_OP_ADD = int(Opcode.ADD)
_OP_SUB = int(Opcode.SUB)
_OP_MUL = int(Opcode.MUL)
_OP_AND = int(Opcode.AND)
_OP_OR = int(Opcode.OR)
_OP_XOR = int(Opcode.XOR)
_OP_SHL = int(Opcode.SHL)
_OP_SHR = int(Opcode.SHR)
_OP_GET_VADDR = int(Opcode.GET_VADDR)
_OP_GET_DATA = int(Opcode.GET_DATA)
_OP_LINE_WORD = int(Opcode.LINE_WORD)
_OP_GET_GLOBAL = int(Opcode.GET_GLOBAL)
_OP_GET_LOOKAHEAD = int(Opcode.GET_LOOKAHEAD)
_OP_PREFETCH = int(Opcode.PREFETCH)
_OP_BEQ = int(Opcode.BEQ)
_OP_JUMP = int(Opcode.JUMP)
_OP_HALT = int(Opcode.HALT)

#: One decoded instruction: ``(opcode, a_imm, a_val, b_imm, b_val, dst, target)``.
_Decoded = tuple[int, bool, int, bool, int, int, int]

#: Decoded programs, keyed by ``id``; the program reference is kept so ids
#: can never be recycled.  Kernel sets are tiny (a handful per workload), but
#: long sweeps rebuild workloads — and thus programs — per point, so the
#: cache is bounded: past the cap it is simply cleared (entries are cheap to
#: re-derive and the clear also releases the pinned program references).
_DECODED_CACHE: dict[int, tuple[KernelProgram, list[_Decoded]]] = {}
_DECODED_CACHE_MAX = 256


def _decode(program: KernelProgram) -> list[_Decoded]:
    """Flatten a program into tuples the execution loop can unpack cheaply."""

    cached = _DECODED_CACHE.get(id(program))
    if cached is not None and cached[0] is program:
        return cached[1]
    if len(_DECODED_CACHE) >= _DECODED_CACHE_MAX:
        _DECODED_CACHE.clear()
    decoded = [
        (
            int(instruction.opcode),
            instruction.a.is_immediate,
            instruction.a.value,
            instruction.b.is_immediate,
            instruction.b.value,
            instruction.dst,
            instruction.target,
        )
        for instruction in program.instructions
    ]
    _DECODED_CACHE[id(program)] = (program, decoded)
    return decoded


def execute_kernel(program: KernelProgram, context: KernelContext) -> KernelExecutionResult:
    """Run ``program`` against ``context`` and return its prefetches and cost.

    The loop runs on a decoded (flat-tuple) form of the program with all hot
    state in locals; it is executed once per prefetcher event, which makes it
    one of the simulator's innermost loops.  Semantics — instruction costs,
    abort behaviour, masking — are identical to the original interpreter and
    are pinned by the golden-stats suite.
    """

    registers = [0] * NUM_LOCAL_REGISTERS
    result = KernelExecutionResult()
    prefetches = result.prefetches
    executed = 0
    pc = 0
    decoded = _decode(program)
    length = len(decoded)
    global_registers = context.global_registers
    num_globals = len(global_registers)

    try:
        while pc < length:
            if executed >= MAX_DYNAMIC_INSTRUCTIONS:
                raise KernelRuntimeError(
                    f"kernel {program.name!r} exceeded {MAX_DYNAMIC_INSTRUCTIONS} instructions"
                )
            opcode, a_imm, a_val, b_imm, b_val, dst, target = decoded[pc]
            executed += 1

            if opcode < _OP_GET_VADDR:  # plain ALU: LI..SHR
                a = a_val if a_imm else registers[a_val]
                if opcode <= _OP_MOV:  # LI / MOV
                    value = a
                else:
                    b = b_val if b_imm else registers[b_val]
                    if opcode == _OP_ADD:
                        value = a + b
                    elif opcode == _OP_SUB:
                        value = a - b
                    elif opcode == _OP_MUL:
                        value = a * b
                    elif opcode == _OP_AND:
                        value = a & b
                    elif opcode == _OP_OR:
                        value = a | b
                    elif opcode == _OP_XOR:
                        value = a ^ b
                    elif opcode == _OP_SHL:
                        value = a << (b & 63)
                    else:  # SHR
                        value = (a & _U64) >> (b & 63)
                registers[dst] = value & _U64
                pc += 1
                continue

            if opcode == _OP_HALT:
                break

            if opcode == _OP_PREFETCH:
                addr = (a_val if a_imm else registers[a_val]) & _U64
                tag = b_val if b_imm else registers[b_val]
                prefetches.append((addr, tag))
                pc += 1
                continue

            if opcode >= _OP_BEQ:  # BEQ / BNE / BLT / BGE / JUMP
                taken = True
                if opcode != _OP_JUMP:
                    a = (a_val if a_imm else registers[a_val]) & _U64
                    if a & _SIGN_BIT:
                        a -= 1 << 64
                    b = (b_val if b_imm else registers[b_val]) & _U64
                    if b & _SIGN_BIT:
                        b -= 1 << 64
                    branch = opcode - _OP_BEQ
                    if branch == 0:  # BEQ
                        taken = a == b
                    elif branch == 1:  # BNE
                        taken = a != b
                    elif branch == 2:  # BLT
                        taken = a < b
                    else:  # BGE
                        taken = a >= b
                pc = target if taken else pc + 1
                continue

            # Context reads: GET_VADDR .. GET_LOOKAHEAD.
            a = a_val if a_imm else registers[a_val]
            if opcode == _OP_GET_VADDR:
                value = context.vaddr
            elif opcode == _OP_GET_DATA:
                value = context.data_word()
            elif opcode == _OP_LINE_WORD:
                value = context.word(a)
            elif opcode == _OP_GET_GLOBAL:
                if not 0 <= a < num_globals:
                    raise KernelRuntimeError(f"global register {a} out of range")
                value = global_registers[a]
            elif opcode == _OP_GET_LOOKAHEAD:
                value = int(context.lookahead(a))
            else:  # pragma: no cover - exhaustive over the ISA
                raise KernelRuntimeError(f"unknown opcode {opcode!r}")

            registers[dst] = value & _U64
            pc += 1
    except KernelRuntimeError:
        result.aborted = True

    result.instructions_executed = executed
    return result
