"""Global prefetcher registers.

The main program's configuration instructions write loop-invariant values
(array base addresses, element sizes, hash masks, hash-table sizes, ...) into
these registers before entering the loop; kernels read them with
``GET_GLOBAL``.  Symbolic names are resolved to indices at configuration time
so the kernels themselves only ever use small integer indices, as the hardware
would.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class GlobalRegisterFile:
    """A fixed-size file of 64-bit global registers with symbolic naming."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError("global register file needs at least one register")
        self._values = [0] * size
        self._names: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._values)

    # -------------------------------------------------------------- symbolic

    def define(self, name: str, value: int) -> int:
        """Assign ``value`` to the next free register under ``name``; return its index."""

        if name in self._names:
            index = self._names[name]
            self._values[index] = int(value)
            return index
        index = len(self._names)
        if index >= len(self._values):
            raise ConfigurationError(
                f"out of global prefetcher registers (capacity {len(self._values)})"
            )
        self._names[name] = index
        self._values[index] = int(value)
        return index

    def index_of(self, name: str) -> int:
        if name not in self._names:
            raise ConfigurationError(f"global register {name!r} was never configured")
        return self._names[name]

    # --------------------------------------------------------------- numeric

    def read(self, index: int) -> int:
        if not 0 <= index < len(self._values):
            raise ConfigurationError(f"global register index {index} out of range")
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < len(self._values):
            raise ConfigurationError(f"global register index {index} out of range")
        self._values[index] = int(value)

    def snapshot(self) -> list[int]:
        """Return the raw register values (what a context switch must save)."""

        return list(self._values)

    def values_view(self) -> list[int]:
        """The *live* register list, for read-only hot-path consumers.

        Kernels have no opcode that writes a global register, so the
        prefetcher engine hands this list to every kernel context instead of
        copying it per event.  Callers must not mutate it.
        """

        return self._values

    @property
    def names(self) -> dict[str, int]:
        return dict(self._names)
