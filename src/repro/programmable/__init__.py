"""The event-triggered programmable prefetcher (the paper's contribution).

The subpackage models every structure in Figure 3 of the paper:

* :mod:`~repro.programmable.kernel` / :mod:`~repro.programmable.interpreter` —
  the PPU kernel ISA and its functional+timing interpreter.
* :mod:`~repro.programmable.compiler` — ahead-of-time compilation of kernels
  to specialised Python closures (the default execution tier; digest-cached,
  bit-identical to the interpreter, ``REPRO_KERNEL_COMPILER=off`` to disable).
* :mod:`~repro.programmable.filter` — the address filter and filter table.
* :mod:`~repro.programmable.queues` — the observation queue and the prefetch
  request queue (droppable FIFOs).
* :mod:`~repro.programmable.ppu` / :mod:`~repro.programmable.scheduler` — the
  programmable prefetch units and the observation scheduler.
* :mod:`~repro.programmable.ewma` — the EWMA calculators that derive dynamic
  look-ahead distances.
* :mod:`~repro.programmable.registers` — the global prefetcher registers.
* :mod:`~repro.programmable.config_api` — the configuration the main program
  installs before a loop (address bounds, kernels, tags, globals).
* :mod:`~repro.programmable.prefetcher` — the engine that ties it together and
  plugs into the memory hierarchy.
"""

from .compiler import (
    compile_kernel,
    compiler_enabled,
    generate_source,
    kernel_executor,
    program_digest,
    run_compiled,
)
from .config_api import PrefetcherConfiguration, RangeConfig
from .ewma import EWMA, LookaheadCalculator
from .interpreter import KernelExecutionResult, default_lookahead, execute_kernel
from .kernel import KernelBuilder, KernelProgram, Opcode, Reg
from .ppu import PPU
from .prefetcher import EventTriggeredPrefetcher
from .queues import ObservationQueue, PrefetchRequestQueue
from .registers import GlobalRegisterFile
from .scheduler import LowestFreeIdPolicy, RoundRobinPolicy

__all__ = [
    "KernelBuilder",
    "KernelProgram",
    "Opcode",
    "Reg",
    "KernelExecutionResult",
    "execute_kernel",
    "default_lookahead",
    "compile_kernel",
    "compiler_enabled",
    "generate_source",
    "kernel_executor",
    "program_digest",
    "run_compiled",
    "PrefetcherConfiguration",
    "RangeConfig",
    "EWMA",
    "LookaheadCalculator",
    "PPU",
    "ObservationQueue",
    "PrefetchRequestQueue",
    "GlobalRegisterFile",
    "EventTriggeredPrefetcher",
    "LowestFreeIdPolicy",
    "RoundRobinPolicy",
]
