"""The event-triggered programmable prefetcher engine.

This module ties together every structure of Figure 3: the address filter
snoops demand loads, observations queue up for the scheduler, free PPUs run
kernels that generate prefetch requests, the request queue drains into the L1
when MSHRs are free, and returned prefetches trigger further events (via the
memory-request tags of Section 4.7 or the filter table's ``PF Ptr`` entries).
EWMA calculators (Section 4.5) turn observed iteration times and prefetch
chain latencies into dynamic look-ahead distances that kernels can read.

The engine is a discrete-event model sharing the simulation's global clock
(main-core cycles).  It is driven lazily: the memory hierarchy calls
:meth:`EventTriggeredPrefetcher.advance_to` with the current time before every
demand access, so the prefetcher's state (including lines it has filled into
the cache model) is up to date whenever the core looks.

A *blocking* variant (``ProgrammablePrefetcherConfig.blocking_mode``) models
the Figure 11 ablation: instead of scheduling a fresh event when a prefetch
returns, the PPU that issued it stalls until the data arrives and continues
the chain itself, exactly like a helper thread that must wait on intermediate
loads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import CACHE_LINE_BYTES, SystemConfig
from ..errors import ConfigurationError
from ..memory.hierarchy import MemoryHierarchy
from ..memory.layout import line_address
from .compiler import kernel_executor
from .config_api import PrefetcherConfiguration, RangeConfig, TagConfig
from .ewma import LookaheadCalculator
from .events import Observation, ObservationKind, PrefetchRequest
from .filter import AddressFilter
from .ppu import EVENT_DISPATCH_OVERHEAD_PPU_CYCLES, PPU
from .queues import ObservationQueue, PrefetchRequestQueue
from .registers import GlobalRegisterFile
from .scheduler import LowestFreeIdPolicy, SchedulingPolicy

# Internal event kinds on the engine's heap.
_EV_OBSERVATION = 0
_EV_PPU_DONE = 1
_EV_DRAIN = 2
_EV_FILL = 3

# Enum members hoisted for the hot observation constructors.
_OBS_LOAD = ObservationKind.LOAD
_OBS_PREFETCH = ObservationKind.PREFETCH


@dataclass(slots=True)
class EngineStats:
    """Aggregate statistics of one run of the programmable prefetcher."""

    loads_snooped: int = 0
    observations_created: int = 0
    observations_dropped: int = 0
    events_executed: int = 0
    kernel_aborts: int = 0
    ppu_instructions: int = 0
    prefetches_generated: int = 0
    prefetches_dropped: int = 0
    prefetches_issued: int = 0
    prefetches_discarded: int = 0
    fills_observed: int = 0
    activity_factors: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "loads_snooped": self.loads_snooped,
            "observations_created": self.observations_created,
            "observations_dropped": self.observations_dropped,
            "events_executed": self.events_executed,
            "kernel_aborts": self.kernel_aborts,
            "ppu_instructions": self.ppu_instructions,
            "prefetches_generated": self.prefetches_generated,
            "prefetches_dropped": self.prefetches_dropped,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_discarded": self.prefetches_discarded,
            "fills_observed": self.fills_observed,
            "activity_factors": list(self.activity_factors),
        }


class EventTriggeredPrefetcher:
    """The paper's programmable prefetcher, attached to a memory hierarchy."""

    name = "programmable"

    def __init__(
        self,
        system_config: SystemConfig,
        configuration: PrefetcherConfiguration,
        *,
        policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        configuration.validate()
        self.system_config = system_config
        self.config = system_config.prefetcher
        self.configuration = configuration
        self.cycle_ratio = system_config.ppu_cycle_ratio
        self.blocking = self.config.blocking_mode

        self.filter = AddressFilter(configuration, self.config.filter_table_entries)
        self.observation_queue = ObservationQueue(self.config.observation_queue_entries)
        self.request_queue = PrefetchRequestQueue(self.config.prefetch_queue_entries)
        self.ppus = [PPU(index) for index in range(self.config.num_ppus)]
        self.policy = policy if policy is not None else LowestFreeIdPolicy()

        self.globals = GlobalRegisterFile(self.config.global_registers)
        for name, index in sorted(configuration.global_names.items(), key=lambda item: item[1]):
            assigned = self.globals.define(name, configuration.global_values()[index])
            if assigned != index:
                raise ConfigurationError(
                    f"global register {name!r} assigned index {assigned}, expected {index}"
                )

        self._streams = configuration.streams
        self._lookaheads: dict[str, LookaheadCalculator] = {
            name: LookaheadCalculator(
                alpha=self.config.ewma_alpha, default_distance=stream.default_distance
            )
            for name, stream in self._streams.items()
        }
        # Kernels are resolved to executors once, here — compiled closures by
        # default (cached process-wide by program digest), or interpreter
        # wrappers under ``REPRO_KERNEL_COMPILER=off``.  Event handling then
        # pays a single dict lookup and one call per event instead of
        # re-dispatching every kernel instruction.
        self._executors = {
            name: kernel_executor(program)
            for name, program in configuration.kernels.items()
        }
        # The *live* register list (kernels cannot write globals) and the
        # bound look-ahead resolver, hoisted so no per-event context object
        # needs to be built.
        self._globals_view = self.globals.values_view()
        # Per-event hot-path state, resolved once: the tag table as a plain
        # dict, look-ahead calculators by stream index, the default distance
        # for unconfigured streams, and whether the scheduling policy is the
        # paper's lowest-free-id policy (inlined in _dispatch).
        self._tag_configs = configuration.tags
        # Package-private peek at the filter's pre-partitioned load entries:
        # _on_snoop runs for every demand read, and inlining the match saves
        # a call per load (the filter's counters are still kept exactly).
        self._load_entries = self.filter._load_entries
        self._prefetch_entries = self.filter._prefetch_entries
        self._filter_stats = self.filter.stats
        # Convex hull of the load-watched ranges: a snooped address outside
        # [lo, hi) cannot match any entry, so the per-load match scan is
        # skipped entirely (counters are still kept exactly).
        if self._load_entries:
            self._load_lo = min(base for base, _end, _entry in self._load_entries)
            self._load_hi = max(end for _base, end, _entry in self._load_entries)
        else:
            self._load_lo = self._load_hi = 0
        # With exactly one watched range the hull test IS the match test, so
        # the snoop path can reuse a pre-built single-entry match list.
        self._single_load_match = (
            [self._load_entries[0][2]] if len(self._load_entries) == 1 else None
        )
        # Upper bound on observations one fill can create (one for its tag
        # plus one per matching prefetch range): when the observation queue
        # has at least this much headroom, the fill fast path can batch its
        # pushes without changing drop accounting.
        self._max_fill_observations = 1 + len(self._prefetch_entries)
        self._calc_by_index = {
            stream.index: self._lookaheads[name]
            for name, stream in self._streams.items()
        }
        self._unconfigured_distance = LookaheadCalculator().default_distance
        self._fast_policy = type(self.policy) is LowestFreeIdPolicy

        self.stats = EngineStats()
        self._hierarchy: Optional[MemoryHierarchy] = None
        self._heap: list[tuple[float, int, int, object]] = []
        self._sequence = 0

    # ------------------------------------------------------------- attachment

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Attach to ``hierarchy``: snoop demand loads and advance with the clock."""

        self._hierarchy = hierarchy
        hierarchy.set_demand_snoop(self._on_snoop)
        hierarchy.set_advance_hook(self.advance_to)

    def detach(self) -> None:
        if self._hierarchy is not None:
            self._hierarchy.set_demand_snoop(None)
            self._hierarchy.set_advance_hook(None)
            self._hierarchy = None

    # ------------------------------------------------------------------ snoop

    def _on_snoop(self, addr: int, time: float, level: str) -> None:
        del level  # The address filter watches every demand load.
        self.stats.loads_snooped += 1
        # AddressFilter.match_load, inlined (it runs per demand read).
        filter_stats = self._filter_stats
        filter_stats.load_snoops += 1
        if not self._load_lo <= addr < self._load_hi:
            return
        matches = self._single_load_match
        if matches is None:
            matches = [
                entry for base, end, entry in self._load_entries if base <= addr < end
            ]
            if not matches:
                return
        filter_stats.load_matches += 1
        hierarchy = self._hierarchy
        assert hierarchy is not None
        line_words: Optional[tuple[int, ...]] = None
        line_base = 0
        for entry in matches:
            if entry.time_iterations and entry.stream is not None:
                # Streams referenced by ranges are checked by validate(), so
                # the plain dict access cannot miss.  observe_iteration is
                # inlined: it runs per matched load on timing ranges, and
                # the common case only bumps the window counter.
                calculator = self._lookaheads[entry.stream]
                start = calculator._window_start_time
                if start is None:
                    calculator._window_start_time = time
                    calculator._window_count = 0
                else:
                    calculator._window_count = count = calculator._window_count + 1
                    if count >= calculator.iteration_window:
                        delta = time - start
                        if delta > 0:
                            calculator.iteration_time.update(delta / count)
                            calculator._cached_distance = None
                        calculator._window_start_time = time
                        calculator._window_count = 0
            if entry.load_kernel is None:
                continue
            if line_words is None:  # read the snooped line once, not per match
                line_base = addr - (addr % CACHE_LINE_BYTES)
                line_words = hierarchy._line_words_cache.get(line_base)
                if line_words is None:
                    line_words = hierarchy.read_line_words(addr)
            # Positional construction: keyword NamedTuple construction costs
            # measurably more, and this runs per matching demand load.
            observation = Observation(
                _OBS_LOAD,
                addr,
                time,
                entry.load_kernel,
                line_base,
                line_words,
                entry.stream,
                time if entry.chain_start else None,
            )
            self.stats.observations_created += 1
            self._sequence = sequence = self._sequence + 1
            heapq.heappush(self._heap, (time, sequence, _EV_OBSERVATION, observation))

    # ------------------------------------------------------------------ clock

    def _push(self, time: float, kind: int, payload: object) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, kind, payload))

    def advance_to(self, time: float) -> None:
        """Process every internal event scheduled at or before ``time``.

        This is the engine's main loop, called before every demand access.
        The per-event handlers (queue pushes with drop accounting, PPU
        dispatch, kernel execution, request enqueueing) are inlined here:
        with compiled kernels the interpreter is no longer the bottleneck,
        and the call fan-out per event — handler → queue.push → dispatch →
        policy.select → run_event → ppu.assign — was the next largest cost.
        Semantics (event ordering, drop accounting, statistics) are
        unchanged and pinned by the golden-stats suite; the blocking
        ablation and custom scheduling policies take the original
        method-per-step path.
        """

        heap = self._heap
        if not heap or heap[0][0] > time:
            return
        stats = self.stats
        hierarchy = self._hierarchy
        tag_configs = self._tag_configs
        prefetch_entries = self._prefetch_entries
        filter_stats = self._filter_stats
        lookaheads = self._lookaheads
        observation_queue = self.observation_queue
        obs_entries = observation_queue.entries
        obs_capacity = observation_queue.capacity
        request_queue = self.request_queue
        req_entries = request_queue.entries
        req_capacity = request_queue.capacity
        ppus = self.ppus
        fast = self._fast_policy and not self.blocking
        executors = self._executors
        globals_view = self._globals_view
        lookahead = self._lookahead_by_index
        cycle_ratio = self.cycle_ratio
        heappop = heapq.heappop
        heappush = heapq.heappush
        if hierarchy is not None:
            prefetch_access = hierarchy.prefetch_access
            next_free = hierarchy.l1_mshrs.next_free_time

        while heap and heap[0][0] <= time:
            event_time, _seq, kind, payload = heappop(heap)
            drain_after = False

            if kind == _EV_OBSERVATION:
                observation_queue.pushed += 1
                if len(obs_entries) >= obs_capacity:
                    obs_entries.popleft()
                    observation_queue.dropped += 1
                    stats.observations_dropped += 1
                obs_entries.append(payload)

            elif kind == _EV_PPU_DONE:
                prefetches, observation = payload
                stream = observation.stream
                chain_start_time = observation.chain_start_time
                for addr, tag in prefetches:
                    request_queue.pushed += 1
                    if len(req_entries) >= req_capacity:
                        req_entries.popleft()
                        request_queue.dropped += 1
                        stats.prefetches_dropped += 1
                    req_entries.append(
                        PrefetchRequest(addr, tag, event_time, stream, chain_start_time)
                    )
                # The PPU that finished is free again; fall through to
                # dispatch waiting observations, then drain the requests
                # (the drain must order after the dispatch's PPU-done
                # pushes, so it runs below).
                drain_after = bool(req_entries)

            elif kind == _EV_DRAIN:
                self._handle_drain(event_time)
                continue

            else:  # _EV_FILL
                # _fill_observations, inlined: EWMA chain updates and the
                # follow-on observations push straight into the queue in the
                # same order the list-building version produced them.
                stats.fills_observed += 1
                request = payload
                if len(obs_entries) + self._max_fill_observations > obs_capacity:
                    # Near-saturated observation queue: batching the pushes
                    # could drop entries a dispatch between them would have
                    # freed room for, so replicate the original
                    # per-observation push→dispatch interleaving exactly.
                    for observation in self._fill_observations(request, event_time):
                        stats.observations_created += 1
                        dropped_before = observation_queue.dropped
                        observation_queue.push(observation)
                        stats.observations_dropped += (
                            observation_queue.dropped - dropped_before
                        )
                        self._dispatch(event_time)
                    continue
                addr = request.addr
                line_base = addr - (addr % CACHE_LINE_BYTES)
                line_words = hierarchy._line_words_cache.get(line_base)
                if line_words is None:
                    line_words = hierarchy.read_line_words(addr)
                tag = request.tag
                created = 0
                tag_config = tag_configs.get(tag) if tag >= 0 else None
                if tag_config is not None:
                    stream = tag_config.stream or request.stream
                    chain = request.chain_start_time
                    if tag_config.chain_end and chain is not None and stream is not None:
                        lookaheads[stream].observe_chain(chain, event_time)
                        chain = None
                    observation = Observation(
                        _OBS_PREFETCH,
                        addr,
                        event_time,
                        tag_config.kernel,
                        line_base,
                        line_words,
                        stream,
                        chain,
                    )
                    stats.observations_created += 1
                    observation_queue.pushed += 1
                    if len(obs_entries) >= obs_capacity:
                        obs_entries.popleft()
                        observation_queue.dropped += 1
                        stats.observations_dropped += 1
                    obs_entries.append(observation)
                    created += 1
                matched = False
                for base, end, entry in prefetch_entries:
                    if not base <= addr < end:
                        continue
                    if not matched:
                        matched = True
                        filter_stats.prefetch_matches += 1
                    stream = entry.stream or request.stream
                    chain = request.chain_start_time
                    if entry.chain_end and chain is not None and stream is not None:
                        lookaheads[stream].observe_chain(chain, event_time)
                        chain = None
                    if entry.chain_start:
                        chain = event_time
                    if entry.prefetch_kernel is None:
                        continue
                    observation = Observation(
                        _OBS_PREFETCH,
                        addr,
                        event_time,
                        entry.prefetch_kernel,
                        line_base,
                        line_words,
                        stream,
                        chain,
                    )
                    stats.observations_created += 1
                    observation_queue.pushed += 1
                    if len(obs_entries) >= obs_capacity:
                        obs_entries.popleft()
                        observation_queue.dropped += 1
                        stats.observations_dropped += 1
                    obs_entries.append(observation)
                    created += 1
                if not created:
                    continue

            # Dispatch: oldest waiting observation onto the lowest free PPU.
            if obs_entries and not fast:
                self._dispatch(event_time)
            while obs_entries and fast:
                # Lowest-free-id scan; PPU 0 free is the common case, so it
                # is tested before paying for the loop.
                free = ppus[0]
                if free.busy_until > event_time:
                    free = None
                    for ppu in ppus:
                        if ppu.busy_until <= event_time:
                            free = ppu
                            break
                    if free is None:
                        break
                observation = obs_entries.popleft()
                # _run_event, inlined.
                prefetches, instructions, aborted = executors[observation.kernel_name](
                    observation.addr,
                    observation.line_base,
                    observation.line_words,
                    globals_view,
                    lookahead,
                )
                ppu_stats = free.stats
                stats.events_executed += 1
                stats.ppu_instructions += instructions
                if aborted:
                    stats.kernel_aborts += 1
                    ppu_stats.kernel_aborts += 1
                duration = (
                    instructions + EVENT_DISPATCH_OVERHEAD_PPU_CYCLES
                ) * cycle_ratio
                finish = event_time + duration
                free.busy_until = finish
                ppu_stats.events_executed += 1
                ppu_stats.instructions_executed += instructions
                ppu_stats.busy_cycles += duration
                generated = len(prefetches)
                ppu_stats.prefetches_generated += generated
                stats.prefetches_generated += generated
                self._sequence = sequence = self._sequence + 1
                heappush(
                    heap, (finish, sequence, _EV_PPU_DONE, (prefetches, observation))
                )

            if not drain_after:
                continue
            if heap and heap[0][0] <= event_time:
                # Another event at this timestamp must process before the
                # drain (its sequence number precedes the drain's), so the
                # drain stays a heap event.  Pushing it here, after the
                # dispatch, assigns the same relative order the original
                # pre-dispatch push produced: every event already in the
                # heap has a smaller sequence number either way.
                self._sequence = sequence = self._sequence + 1
                heappush(heap, (event_time, sequence, _EV_DRAIN, None))
                continue
            # No pending event precedes the drain, so pushing it would only
            # make it the very next pop with nothing running in between —
            # inline it instead (_handle_drain's loop with the locals
            # already hoisted; sequence-relative order is unchanged).
            while req_entries:
                free_at = next_free(event_time)
                if free_at > event_time:
                    self._sequence = sequence = self._sequence + 1
                    heappush(heap, (free_at, sequence, _EV_DRAIN, None))
                    break
                request = req_entries.popleft()
                stats.prefetches_issued += 1
                addr = request.addr
                fill_time = prefetch_access(addr, event_time)
                if fill_time is None:
                    stats.prefetches_discarded += 1
                    continue
                request_tag = request.tag
                if request_tag >= 0 and request_tag in tag_configs:
                    interesting = True
                else:
                    for base, end, _entry in prefetch_entries:
                        if base <= addr < end:
                            filter_stats.prefetch_matches += 1
                            interesting = True
                            break
                    else:
                        interesting = request.chain_start_time is not None
                if interesting:
                    self._sequence = sequence = self._sequence + 1
                    heappush(heap, (fill_time, sequence, _EV_FILL, request))

    def drain(self, until: float) -> None:
        """Run the engine past the end of the core trace (end-of-run cleanup)."""

        self.advance_to(until)

    # ------------------------------------------------------------ observation

    def _dispatch(self, time: float) -> None:
        pending = self.observation_queue.entries
        if not pending:
            return
        ppus = self.ppus
        blocking = self.blocking
        if self._fast_policy:
            # The paper's lowest-free-id policy, inlined: one scan instead of
            # a policy-object call per dispatched observation.
            while pending:
                for ppu in ppus:
                    if ppu.busy_until <= time:
                        break
                else:
                    return
                observation = pending.popleft()
                if blocking:
                    self._run_blocking(ppu, observation, time)
                else:
                    self._run_event(ppu, observation, time)
            return
        select = self.policy.select
        while pending:
            ppu = select(ppus, time)
            if ppu is None:
                return
            observation = pending.popleft()
            if blocking:
                self._run_blocking(ppu, observation, time)
            else:
                self._run_event(ppu, observation, time)

    def _run_event(self, ppu: PPU, observation: Observation, start: float) -> None:
        prefetches, instructions, aborted = self._executors[observation.kernel_name](
            observation.addr,
            observation.line_base,
            observation.line_words,
            self._globals_view,
            self._lookahead_by_index,
        )
        stats = self.stats
        ppu_stats = ppu.stats
        stats.events_executed += 1
        stats.ppu_instructions += instructions
        if aborted:
            stats.kernel_aborts += 1
            ppu_stats.kernel_aborts += 1
        # PPU.assign, inlined (one method call per event was measurable).
        duration = (instructions + EVENT_DISPATCH_OVERHEAD_PPU_CYCLES) * self.cycle_ratio
        finish = start + duration
        ppu.busy_until = finish
        ppu_stats.events_executed += 1
        ppu_stats.instructions_executed += instructions
        ppu_stats.busy_cycles += duration
        generated = len(prefetches)
        ppu_stats.prefetches_generated += generated
        stats.prefetches_generated += generated
        self._sequence = sequence = self._sequence + 1
        heapq.heappush(self._heap, (finish, sequence, _EV_PPU_DONE, (prefetches, observation)))

    # ------------------------------------------------------------------ drain

    def _handle_drain(self, time: float) -> None:
        hierarchy = self._hierarchy
        assert hierarchy is not None
        pending = self.request_queue.entries
        stats = self.stats
        next_free = hierarchy.l1_mshrs.next_free_time
        prefetch_access = hierarchy.prefetch_access
        tag_configs = self._tag_configs
        prefetch_entries = self._prefetch_entries
        filter_stats = self._filter_stats
        heap = self._heap
        while pending:
            free_at = next_free(time)
            if free_at > time:
                self._sequence = sequence = self._sequence + 1
                heapq.heappush(heap, (free_at, sequence, _EV_DRAIN, None))
                return
            # _issue and _fill_is_interesting, inlined into the drain loop
            # (two calls per issued prefetch otherwise).
            request = pending.popleft()
            stats.prefetches_issued += 1
            addr = request.addr
            fill_time = prefetch_access(addr, time)
            if fill_time is None:
                stats.prefetches_discarded += 1
                continue
            if request.tag >= 0 and request.tag in tag_configs:
                interesting = True
            else:
                for base, end, _entry in prefetch_entries:
                    if base <= addr < end:
                        filter_stats.prefetch_matches += 1
                        interesting = True
                        break
                else:
                    interesting = request.chain_start_time is not None
            if interesting:
                self._sequence = sequence = self._sequence + 1
                heapq.heappush(heap, (fill_time, sequence, _EV_FILL, request))

    def _fill_is_interesting(self, request: PrefetchRequest) -> bool:
        if request.tag >= 0 and self._tag_configs.get(request.tag) is not None:
            return True
        # AddressFilter.match_prefetch, inlined (runs per issued prefetch).
        addr = request.addr
        for base, end, _entry in self._prefetch_entries:
            if base <= addr < end:
                self._filter_stats.prefetch_matches += 1
                return True
        return request.chain_start_time is not None

    # ------------------------------------------------------------------- fill

    def _fill_observations(self, request: PrefetchRequest, time: float) -> list[Observation]:
        """Apply EWMA chain updates and build the follow-on observations for a fill."""

        hierarchy = self._hierarchy
        assert hierarchy is not None
        observations: list[Observation] = []
        line_words = hierarchy.read_line_words(request.addr)
        line_base = line_address(request.addr)

        tag_config: Optional[TagConfig] = (
            self._tag_configs.get(request.tag) if request.tag >= 0 else None
        )
        if tag_config is not None:
            stream = tag_config.stream or request.stream
            chain = request.chain_start_time
            if tag_config.chain_end and chain is not None and stream is not None:
                self._lookaheads[stream].observe_chain(chain, time)
                chain = None
            observations.append(
                Observation(
                    _OBS_PREFETCH,
                    request.addr,
                    time,
                    tag_config.kernel,
                    line_base,
                    line_words,
                    stream,
                    chain,
                )
            )

        # AddressFilter.match_prefetch, inlined (runs per interesting fill).
        addr = request.addr
        matches = [
            entry for base, end, entry in self._prefetch_entries if base <= addr < end
        ]
        if matches:
            self._filter_stats.prefetch_matches += 1
        for entry in matches:
            stream = entry.stream or request.stream
            chain = request.chain_start_time
            if entry.chain_end and chain is not None and stream is not None:
                self._lookaheads[stream].observe_chain(chain, time)
                chain = None
            if entry.chain_start:
                chain = time
            if entry.prefetch_kernel is None:
                continue
            observations.append(
                Observation(
                    _OBS_PREFETCH,
                    request.addr,
                    time,
                    entry.prefetch_kernel,
                    line_base,
                    line_words,
                    stream,
                    chain,
                )
            )
        return observations

    # --------------------------------------------------------------- blocking

    def _run_blocking(self, ppu: PPU, observation: Observation, start: float) -> None:
        """Figure 11 ablation: the PPU stalls on every intermediate load."""

        hierarchy = self._hierarchy
        assert hierarchy is not None
        time = start
        instructions = 0
        pending: list[Observation] = [observation]
        events = 0

        while pending:
            current = pending.pop(0)
            prefetches, executed, aborted = self._executors[current.kernel_name](
                current.addr,
                current.line_base,
                current.line_words,
                self._globals_view,
                self._lookahead_by_index,
            )
            events += 1
            instructions += executed
            if aborted:
                self.stats.kernel_aborts += 1
                ppu.stats.kernel_aborts += 1
            time += (
                executed + EVENT_DISPATCH_OVERHEAD_PPU_CYCLES
            ) * self.cycle_ratio
            self.stats.prefetches_generated += len(prefetches)
            ppu.stats.prefetches_generated += len(prefetches)

            for addr, tag in prefetches:
                self.stats.prefetches_issued += 1
                fill_time = hierarchy.prefetch_access(addr, time)
                if fill_time is None:
                    self.stats.prefetches_discarded += 1
                    continue
                request = PrefetchRequest(
                    addr, tag, time, current.stream, current.chain_start_time
                )
                if not self._fill_is_interesting(request):
                    continue
                # Blocking: wait for the data before running the next kernel.
                time = max(time, fill_time)
                pending.extend(self._fill_observations(request, fill_time))
                self.stats.fills_observed += 1

        self.stats.events_executed += events
        self.stats.ppu_instructions += instructions
        ppu.stats.events_executed += events
        ppu.stats.instructions_executed += instructions
        ppu.stats.busy_cycles += time - start
        ppu.busy_until = time

    # ------------------------------------------------------------------ EWMAs

    def _lookahead_for(self, stream: str) -> LookaheadCalculator:
        calculator = self._lookaheads.get(stream)
        if calculator is None:
            raise ConfigurationError(f"stream {stream!r} was never configured")
        return calculator

    def _lookahead_by_index(self, index: int) -> int:
        calculator = self._calc_by_index.get(index)
        if calculator is None:
            return self._unconfigured_distance
        return calculator.lookahead()

    def lookahead_distance(self, stream: str) -> int:
        """Current look-ahead distance for ``stream`` (exposed for analysis/tests)."""

        return self._lookahead_for(stream).lookahead()

    # -------------------------------------------------------------- finalising

    def finalize(self, end_time: float) -> None:
        """Process trailing events and compute per-PPU activity factors."""

        self.drain(end_time + 1.0)
        self.stats.activity_factors = [
            ppu.activity_factor(end_time) for ppu in self.ppus
        ]

    def collect_stats(self) -> dict[str, object]:
        stats = self.stats.as_dict()
        stats["observation_queue_dropped"] = self.observation_queue.dropped
        stats["request_queue_dropped"] = self.request_queue.dropped
        stats["filter"] = self.filter.stats.as_dict()
        stats["per_ppu"] = [ppu.stats.as_dict() for ppu in self.ppus]
        stats["kernel_code_bytes"] = self.configuration.code_footprint_bytes()
        stats["lookahead"] = {
            name: calculator.lookahead() for name, calculator in self._lookaheads.items()
        }
        return stats
