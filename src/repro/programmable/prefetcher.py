"""The event-triggered programmable prefetcher engine.

This module ties together every structure of Figure 3: the address filter
snoops demand loads, observations queue up for the scheduler, free PPUs run
kernels that generate prefetch requests, the request queue drains into the L1
when MSHRs are free, and returned prefetches trigger further events (via the
memory-request tags of Section 4.7 or the filter table's ``PF Ptr`` entries).
EWMA calculators (Section 4.5) turn observed iteration times and prefetch
chain latencies into dynamic look-ahead distances that kernels can read.

The engine is a discrete-event model sharing the simulation's global clock
(main-core cycles).  It is driven lazily: the memory hierarchy calls
:meth:`EventTriggeredPrefetcher.advance_to` with the current time before every
demand access, so the prefetcher's state (including lines it has filled into
the cache model) is up to date whenever the core looks.

A *blocking* variant (``ProgrammablePrefetcherConfig.blocking_mode``) models
the Figure 11 ablation: instead of scheduling a fresh event when a prefetch
returns, the PPU that issued it stalls until the data arrives and continues
the chain itself, exactly like a helper thread that must wait on intermediate
loads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..memory.hierarchy import MemoryHierarchy
from ..memory.layout import line_address
from .config_api import PrefetcherConfiguration, RangeConfig, TagConfig
from .ewma import LookaheadCalculator
from .events import Observation, ObservationKind, PrefetchRequest
from .filter import AddressFilter
from .interpreter import KernelContext, execute_kernel
from .ppu import EVENT_DISPATCH_OVERHEAD_PPU_CYCLES, PPU
from .queues import ObservationQueue, PrefetchRequestQueue
from .registers import GlobalRegisterFile
from .scheduler import LowestFreeIdPolicy, SchedulingPolicy

# Internal event kinds on the engine's heap.
_EV_OBSERVATION = 0
_EV_PPU_DONE = 1
_EV_DRAIN = 2
_EV_FILL = 3


@dataclass
class EngineStats:
    """Aggregate statistics of one run of the programmable prefetcher."""

    loads_snooped: int = 0
    observations_created: int = 0
    observations_dropped: int = 0
    events_executed: int = 0
    kernel_aborts: int = 0
    ppu_instructions: int = 0
    prefetches_generated: int = 0
    prefetches_dropped: int = 0
    prefetches_issued: int = 0
    prefetches_discarded: int = 0
    fills_observed: int = 0
    activity_factors: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "loads_snooped": self.loads_snooped,
            "observations_created": self.observations_created,
            "observations_dropped": self.observations_dropped,
            "events_executed": self.events_executed,
            "kernel_aborts": self.kernel_aborts,
            "ppu_instructions": self.ppu_instructions,
            "prefetches_generated": self.prefetches_generated,
            "prefetches_dropped": self.prefetches_dropped,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_discarded": self.prefetches_discarded,
            "fills_observed": self.fills_observed,
            "activity_factors": list(self.activity_factors),
        }


class EventTriggeredPrefetcher:
    """The paper's programmable prefetcher, attached to a memory hierarchy."""

    name = "programmable"

    def __init__(
        self,
        system_config: SystemConfig,
        configuration: PrefetcherConfiguration,
        *,
        policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        configuration.validate()
        self.system_config = system_config
        self.config = system_config.prefetcher
        self.configuration = configuration
        self.cycle_ratio = system_config.ppu_cycle_ratio
        self.blocking = self.config.blocking_mode

        self.filter = AddressFilter(configuration, self.config.filter_table_entries)
        self.observation_queue = ObservationQueue(self.config.observation_queue_entries)
        self.request_queue = PrefetchRequestQueue(self.config.prefetch_queue_entries)
        self.ppus = [PPU(index) for index in range(self.config.num_ppus)]
        self.policy = policy if policy is not None else LowestFreeIdPolicy()

        self.globals = GlobalRegisterFile(self.config.global_registers)
        for name, index in sorted(configuration.global_names.items(), key=lambda item: item[1]):
            assigned = self.globals.define(name, configuration.global_values()[index])
            if assigned != index:
                raise ConfigurationError(
                    f"global register {name!r} assigned index {assigned}, expected {index}"
                )

        self._streams = configuration.streams
        self._lookaheads: dict[str, LookaheadCalculator] = {
            name: LookaheadCalculator(
                alpha=self.config.ewma_alpha, default_distance=stream.default_distance
            )
            for name, stream in self._streams.items()
        }
        self._stream_by_index = {stream.index: name for name, stream in self._streams.items()}

        self.stats = EngineStats()
        self._hierarchy: Optional[MemoryHierarchy] = None
        self._heap: list[tuple[float, int, int, object]] = []
        self._sequence = 0

    # ------------------------------------------------------------- attachment

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Attach to ``hierarchy``: snoop demand loads and advance with the clock."""

        self._hierarchy = hierarchy
        hierarchy.set_demand_snoop(self._on_snoop)
        hierarchy.set_advance_hook(self.advance_to)

    def detach(self) -> None:
        if self._hierarchy is not None:
            self._hierarchy.set_demand_snoop(None)
            self._hierarchy.set_advance_hook(None)
            self._hierarchy = None

    # ------------------------------------------------------------------ snoop

    def _on_snoop(self, addr: int, time: float, level: str) -> None:
        del level  # The address filter watches every demand load.
        self.stats.loads_snooped += 1
        matches = self.filter.match_load(addr)
        if not matches:
            return
        hierarchy = self._hierarchy
        assert hierarchy is not None
        line_words: Optional[tuple[int, ...]] = None
        line_base = 0
        for entry in matches:
            if entry.time_iterations and entry.stream is not None:
                self._lookahead_for(entry.stream).observe_iteration(time)
            if entry.load_kernel is None:
                continue
            if line_words is None:  # read the snooped line once, not per match
                line_base = line_address(addr)
                line_words = tuple(hierarchy.read_line(addr))
            observation = Observation(
                kind=ObservationKind.LOAD,
                addr=addr,
                time=time,
                kernel_name=entry.load_kernel,
                line_base=line_base,
                line_words=line_words,
                stream=entry.stream,
                chain_start_time=time if entry.chain_start else None,
            )
            self.stats.observations_created += 1
            self._push(time, _EV_OBSERVATION, observation)

    # ------------------------------------------------------------------ clock

    def _push(self, time: float, kind: int, payload: object) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, kind, payload))

    def advance_to(self, time: float) -> None:
        """Process every internal event scheduled at or before ``time``."""

        heap = self._heap
        while heap and heap[0][0] <= time:
            event_time, _seq, kind, payload = heapq.heappop(heap)
            if kind == _EV_OBSERVATION:
                self._handle_observation(event_time, payload)  # type: ignore[arg-type]
            elif kind == _EV_PPU_DONE:
                self._handle_ppu_done(event_time, payload)  # type: ignore[arg-type]
            elif kind == _EV_DRAIN:
                self._handle_drain(event_time)
            else:
                self._handle_fill(event_time, payload)  # type: ignore[arg-type]

    def drain(self, until: float) -> None:
        """Run the engine past the end of the core trace (end-of-run cleanup)."""

        self.advance_to(until)

    # ------------------------------------------------------------ observation

    def _handle_observation(self, time: float, observation: Observation) -> None:
        before = self.observation_queue.dropped
        self.observation_queue.push(observation)
        self.stats.observations_dropped += self.observation_queue.dropped - before
        self._dispatch(time)

    def _dispatch(self, time: float) -> None:
        pending = self.observation_queue.entries
        if not pending:
            return
        ppus = self.ppus
        select = self.policy.select
        blocking = self.blocking
        while pending:
            ppu = select(ppus, time)
            if ppu is None:
                return
            observation = pending.popleft()
            if blocking:
                self._run_blocking(ppu, observation, time)
            else:
                self._run_event(ppu, observation, time)

    def _context_for(self, observation: Observation) -> KernelContext:
        return KernelContext(
            vaddr=observation.addr,
            line_base=observation.line_base,
            line_words=observation.line_words,
            # The live list, not a snapshot: kernels cannot write globals,
            # and one context is built per event — copying 32 registers per
            # event was measurable on the hot path.
            global_registers=self.globals.values_view(),
            lookahead=self._lookahead_by_index,
        )

    def _run_event(self, ppu: PPU, observation: Observation, start: float) -> None:
        program = self.configuration.kernel(observation.kernel_name)
        result = execute_kernel(program, self._context_for(observation))
        self.stats.events_executed += 1
        self.stats.ppu_instructions += result.instructions_executed
        if result.aborted:
            self.stats.kernel_aborts += 1
            ppu.stats.kernel_aborts += 1
        finish = ppu.assign(start, result.instructions_executed, self.cycle_ratio)
        ppu.stats.prefetches_generated += len(result.prefetches)
        self.stats.prefetches_generated += len(result.prefetches)
        self._push(finish, _EV_PPU_DONE, (result.prefetches, observation))

    # ---------------------------------------------------------------- PPU done

    def _handle_ppu_done(self, time: float, payload: object) -> None:
        prefetches, observation = payload  # type: ignore[misc]
        request_queue = self.request_queue
        before = request_queue.dropped
        stream = observation.stream
        chain_start_time = observation.chain_start_time
        for addr, tag in prefetches:
            request_queue.push(
                PrefetchRequest(
                    addr=addr,
                    tag=tag,
                    issue_time=time,
                    stream=stream,
                    chain_start_time=chain_start_time,
                )
            )
        self.stats.prefetches_dropped += request_queue.dropped - before
        if request_queue.entries:
            self._push(time, _EV_DRAIN, None)
        # The PPU that finished is free again; waiting observations can run.
        self._dispatch(time)

    # ------------------------------------------------------------------ drain

    def _handle_drain(self, time: float) -> None:
        hierarchy = self._hierarchy
        assert hierarchy is not None
        pending = self.request_queue.entries
        while pending:
            free_at = hierarchy.l1_mshr_next_free(time)
            if free_at > time:
                self._push(free_at, _EV_DRAIN, None)
                return
            self._issue(pending.popleft(), time)

    def _issue(self, request: PrefetchRequest, time: float) -> None:
        hierarchy = self._hierarchy
        assert hierarchy is not None
        self.stats.prefetches_issued += 1
        fill_time = hierarchy.prefetch_access(request.addr, time)
        if fill_time is None:
            self.stats.prefetches_discarded += 1
            return
        if self._fill_is_interesting(request):
            self._push(fill_time, _EV_FILL, request)

    def _fill_is_interesting(self, request: PrefetchRequest) -> bool:
        if request.tag >= 0 and self.configuration.tag(request.tag) is not None:
            return True
        if self.filter.match_prefetch(request.addr):
            return True
        return request.chain_start_time is not None

    # ------------------------------------------------------------------- fill

    def _handle_fill(self, time: float, request: PrefetchRequest) -> None:
        self.stats.fills_observed += 1
        for observation in self._fill_observations(request, time):
            self.stats.observations_created += 1
            self._handle_observation(time, observation)

    def _fill_observations(self, request: PrefetchRequest, time: float) -> list[Observation]:
        """Apply EWMA chain updates and build the follow-on observations for a fill."""

        hierarchy = self._hierarchy
        assert hierarchy is not None
        observations: list[Observation] = []
        line_words = tuple(hierarchy.read_line(request.addr))
        line_base = line_address(request.addr)

        tag_config: Optional[TagConfig] = (
            self.configuration.tag(request.tag) if request.tag >= 0 else None
        )
        if tag_config is not None:
            stream = tag_config.stream or request.stream
            chain = request.chain_start_time
            if tag_config.chain_end and chain is not None and stream is not None:
                self._lookahead_for(stream).observe_chain(chain, time)
                chain = None
            observations.append(
                Observation(
                    kind=ObservationKind.PREFETCH,
                    addr=request.addr,
                    time=time,
                    kernel_name=tag_config.kernel,
                    line_base=line_base,
                    line_words=line_words,
                    stream=stream,
                    chain_start_time=chain,
                )
            )

        for entry in self.filter.match_prefetch(request.addr):
            stream = entry.stream or request.stream
            chain = request.chain_start_time
            if entry.chain_end and chain is not None and stream is not None:
                self._lookahead_for(stream).observe_chain(chain, time)
                chain = None
            if entry.chain_start:
                chain = time
            if entry.prefetch_kernel is None:
                continue
            observations.append(
                Observation(
                    kind=ObservationKind.PREFETCH,
                    addr=request.addr,
                    time=time,
                    kernel_name=entry.prefetch_kernel,
                    line_base=line_base,
                    line_words=line_words,
                    stream=stream,
                    chain_start_time=chain,
                )
            )
        return observations

    # --------------------------------------------------------------- blocking

    def _run_blocking(self, ppu: PPU, observation: Observation, start: float) -> None:
        """Figure 11 ablation: the PPU stalls on every intermediate load."""

        hierarchy = self._hierarchy
        assert hierarchy is not None
        time = start
        instructions = 0
        pending: list[Observation] = [observation]
        events = 0

        while pending:
            current = pending.pop(0)
            program = self.configuration.kernel(current.kernel_name)
            result = execute_kernel(program, self._context_for(current))
            events += 1
            instructions += result.instructions_executed
            if result.aborted:
                self.stats.kernel_aborts += 1
                ppu.stats.kernel_aborts += 1
            time += (
                result.instructions_executed + EVENT_DISPATCH_OVERHEAD_PPU_CYCLES
            ) * self.cycle_ratio
            self.stats.prefetches_generated += len(result.prefetches)
            ppu.stats.prefetches_generated += len(result.prefetches)

            for addr, tag in result.prefetches:
                self.stats.prefetches_issued += 1
                fill_time = hierarchy.prefetch_access(addr, time)
                if fill_time is None:
                    self.stats.prefetches_discarded += 1
                    continue
                request = PrefetchRequest(
                    addr=addr,
                    tag=tag,
                    issue_time=time,
                    stream=current.stream,
                    chain_start_time=current.chain_start_time,
                )
                if not self._fill_is_interesting(request):
                    continue
                # Blocking: wait for the data before running the next kernel.
                time = max(time, fill_time)
                pending.extend(self._fill_observations(request, fill_time))
                self.stats.fills_observed += 1

        self.stats.events_executed += events
        self.stats.ppu_instructions += instructions
        ppu.stats.events_executed += events
        ppu.stats.instructions_executed += instructions
        ppu.stats.busy_cycles += time - start
        ppu.busy_until = time

    # ------------------------------------------------------------------ EWMAs

    def _lookahead_for(self, stream: str) -> LookaheadCalculator:
        calculator = self._lookaheads.get(stream)
        if calculator is None:
            raise ConfigurationError(f"stream {stream!r} was never configured")
        return calculator

    def _lookahead_by_index(self, index: int) -> int:
        name = self._stream_by_index.get(index)
        if name is None:
            return LookaheadCalculator().default_distance
        return self._lookaheads[name].lookahead()

    def lookahead_distance(self, stream: str) -> int:
        """Current look-ahead distance for ``stream`` (exposed for analysis/tests)."""

        return self._lookahead_for(stream).lookahead()

    # -------------------------------------------------------------- finalising

    def finalize(self, end_time: float) -> None:
        """Process trailing events and compute per-PPU activity factors."""

        self.drain(end_time + 1.0)
        self.stats.activity_factors = [
            ppu.activity_factor(end_time) for ppu in self.ppus
        ]

    def collect_stats(self) -> dict[str, object]:
        stats = self.stats.as_dict()
        stats["observation_queue_dropped"] = self.observation_queue.dropped
        stats["request_queue_dropped"] = self.request_queue.dropped
        stats["filter"] = self.filter.stats.as_dict()
        stats["per_ppu"] = [ppu.stats.as_dict() for ppu in self.ppus]
        stats["kernel_code_bytes"] = self.configuration.code_footprint_bytes()
        stats["lookahead"] = {
            name: calculator.lookahead() for name, calculator in self._lookaheads.items()
        }
        return stats
