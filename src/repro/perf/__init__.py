"""Performance tracking: wall-clock benchmark snapshots and trajectory diffs.

See :mod:`repro.perf.track` for the snapshot/diff machinery and
``tools/perf_track.py`` for the command-line entry point that appends
``BENCH_<n>.json`` points to the repository's performance trajectory.
"""

from .track import (
    DEFAULT_MODES,
    FIGURE7_REPRESENTATIVE,
    BenchRecord,
    BenchSnapshot,
    RecordDiff,
    SnapshotDiff,
    append_trajectory_point,
    diff_snapshots,
    environment_matches,
    format_diff,
    format_snapshot,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    run_benchmarks,
    save_snapshot,
    snapshot_paths,
)

__all__ = [
    "DEFAULT_MODES",
    "FIGURE7_REPRESENTATIVE",
    "BenchRecord",
    "BenchSnapshot",
    "RecordDiff",
    "SnapshotDiff",
    "append_trajectory_point",
    "diff_snapshots",
    "environment_matches",
    "format_diff",
    "format_snapshot",
    "latest_snapshot_path",
    "load_snapshot",
    "next_snapshot_path",
    "run_benchmarks",
    "save_snapshot",
    "snapshot_paths",
]
