"""Wall-clock performance tracking for the simulation hot path.

Every PR that touches the simulator needs a measured trajectory: how fast is
the per-op/per-access path *now*, and did this change regress it?  This
module provides the pieces behind ``tools/perf_track.py``:

* :func:`run_benchmarks` times :func:`repro.sim.system.simulate` for every
  requested ``(workload, mode)`` pair (workloads built once, outside the
  timed region) and returns a :class:`BenchSnapshot`;
* snapshots serialise to ``BENCH_<n>.json`` files — an append-only numbered
  trajectory at the repository root, so ``BENCH_0.json`` is the pre-overhaul
  baseline and every later snapshot is one measured point after it;
* :func:`diff_snapshots` compares two snapshots record-by-record and reports
  per-point and total speedups, which is how a PR proves an optimisation
  (or how CI catches a regression).

Each record carries two phases, separately measured:

* ``wall_seconds`` — wall time of the ``simulate()`` call only, measured
  ``repeats`` times with the minimum kept (the usual best-of-N noise filter
  for micro-benchmarks).  The CI regression gate keys off the total of this
  phase, exactly as before the trace-artifact tier existed.
* ``build_seconds`` — the *incremental* cost of preparing that record's
  inputs before the timed simulations: trace-store decode on a warm store,
  or workload data build + trace emission (+ artifact persist) on a miss.
  Preparation is shared within a workload, so each record pays only what
  its mode added — summing ``build_seconds`` over a snapshot gives the
  suite's total preparation cost.

The split is what lets a diff say *which phase moved*: a trace-tier PR
shifts ``build``, a hot-path PR shifts ``sim``, and the
``format_diff`` breakdown reports both (plus their combined suite total).
"""

from __future__ import annotations

import json
import platform
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..config import SystemConfig
from ..sim.modes import PrefetchMode, mode_available
from ..sim.system import simulate
from ..trace_store import GroupResolver, default_trace_store, variant_for_mode
from ..workloads import registry

#: Snapshot schema version; bump when the JSON layout changes.  Version 2
#: added the per-record ``build_seconds`` phase (absent fields load as 0.0,
#: so version-1 snapshots remain diffable).
SCHEMA_VERSION = 2

#: Sentinel: resolve the trace store from the environment.
_DEFAULT_STORE = object()

#: File-name pattern of trajectory snapshots.
_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: The (workload, mode) pair timed by ``benchmarks/bench_figure7.py`` —
#: the headline number of the perf trajectory.
FIGURE7_REPRESENTATIVE = ("randacc", "manual")

#: Modes timed by default: the no-prefetch baseline (pure core + hierarchy
#: path), a conventional hardware prefetcher, and the programmable engine.
DEFAULT_MODES = (PrefetchMode.NONE, PrefetchMode.STRIDE, PrefetchMode.MANUAL)


@dataclass
class BenchRecord:
    """Timing of one simulated ``(workload, mode)`` point."""

    workload: str
    mode: str
    wall_seconds: float
    ops: int
    instructions: int
    cycles: float
    #: Incremental preparation cost (trace decode / workload build + trace
    #: emission) paid before this record's timed simulations.  0.0 in
    #: schema-1 snapshots, which predate the phase split.
    build_seconds: float = 0.0

    @property
    def ops_per_second(self) -> float:
        """Trace ops replayed per wall-clock second (the hot-path rate)."""

        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "build_seconds": self.build_seconds,
            "ops": self.ops,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ops_per_second": self.ops_per_second,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "BenchRecord":
        return cls(
            workload=str(data["workload"]),
            mode=str(data["mode"]),
            wall_seconds=float(data["wall_seconds"]),
            ops=int(data["ops"]),
            instructions=int(data["instructions"]),
            cycles=float(data["cycles"]),
            build_seconds=float(data.get("build_seconds", 0.0)),
        )


@dataclass
class BenchSnapshot:
    """One point of the performance trajectory (the contents of a BENCH file)."""

    scale: str
    repeats: int
    records: list[BenchRecord] = field(default_factory=list)
    label: str = ""
    python: str = field(default_factory=platform.python_version)
    machine: str = field(default_factory=platform.machine)
    schema: int = SCHEMA_VERSION

    @property
    def total_wall_seconds(self) -> float:
        return sum(record.wall_seconds for record in self.records)

    @property
    def total_build_seconds(self) -> float:
        return sum(record.build_seconds for record in self.records)

    @property
    def suite_seconds(self) -> float:
        """Total build + simulation time — what running the suite costs."""

        return self.total_wall_seconds + self.total_build_seconds

    def record_for(self, workload: str, mode: str) -> Optional[BenchRecord]:
        for record in self.records:
            if record.workload == workload and record.mode == mode:
                return record
        return None

    @property
    def figure7_representative(self) -> Optional[BenchRecord]:
        """The record matching the Figure 7 benchmark's timed body."""

        return self.record_for(*FIGURE7_REPRESENTATIVE)

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": self.schema,
            "scale": self.scale,
            "repeats": self.repeats,
            "label": self.label,
            "python": self.python,
            "machine": self.machine,
            "total_wall_seconds": self.total_wall_seconds,
            "total_build_seconds": self.total_build_seconds,
            "records": [record.as_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "BenchSnapshot":
        return cls(
            scale=str(data["scale"]),
            repeats=int(data["repeats"]),
            records=[BenchRecord.from_dict(r) for r in data.get("records", [])],
            label=str(data.get("label", "")),
            python=str(data.get("python", "")),
            machine=str(data.get("machine", "")),
            schema=int(data.get("schema", SCHEMA_VERSION)),
        )


@dataclass
class RecordDiff:
    """Old-vs-new comparison of one benchmark point."""

    workload: str
    mode: str
    old_wall: float
    new_wall: float
    old_build: float = 0.0
    new_build: float = 0.0

    @property
    def speedup(self) -> float:
        """Wall-clock (sim-phase) speedup (> 1 means the new snapshot is faster)."""

        return self.old_wall / self.new_wall if self.new_wall > 0 else 0.0

    @property
    def build_speedup(self) -> float:
        """Build-phase speedup (0.0 when the new build phase is free)."""

        return self.old_build / self.new_build if self.new_build > 0 else 0.0


@dataclass
class SnapshotDiff:
    """Record-by-record comparison of two snapshots."""

    old_label: str
    new_label: str
    diffs: list[RecordDiff] = field(default_factory=list)
    #: Non-empty when the snapshots are not directly comparable (different
    #: scales); the diff is then empty by construction.
    note: str = ""

    @property
    def total_old(self) -> float:
        return sum(diff.old_wall for diff in self.diffs)

    @property
    def total_new(self) -> float:
        return sum(diff.new_wall for diff in self.diffs)

    @property
    def total_speedup(self) -> float:
        return self.total_old / self.total_new if self.total_new > 0 else 0.0

    @property
    def total_old_build(self) -> float:
        return sum(diff.old_build for diff in self.diffs)

    @property
    def total_new_build(self) -> float:
        return sum(diff.new_build for diff in self.diffs)

    @property
    def has_build_phase(self) -> bool:
        """Whether either snapshot recorded a build phase (schema ≥ 2)."""

        return any(diff.old_build or diff.new_build for diff in self.diffs)

    @property
    def suite_speedup(self) -> float:
        """Combined build + sim speedup — the cost of running the suite."""

        old = self.total_old + self.total_old_build
        new = self.total_new + self.total_new_build
        return old / new if new > 0 else 0.0

    @property
    def figure7_speedup(self) -> Optional[float]:
        workload, mode = FIGURE7_REPRESENTATIVE
        for diff in self.diffs:
            if diff.workload == workload and diff.mode == mode:
                return diff.speedup
        return None

    def worst_regression(self) -> float:
        """Largest fractional slowdown across records (0.0 when none regressed)."""

        worst = 0.0
        for diff in self.diffs:
            if diff.old_wall > 0:
                worst = max(worst, diff.new_wall / diff.old_wall - 1.0)
        return worst

    def mode_speedups(self) -> dict[str, RecordDiff]:
        """Aggregate old/new wall time per prefetch mode, in record order.

        A mode-targeted optimisation (e.g. compiling the PPU kernels used by
        ``manual``) is invisible in the total when the other modes dominate
        the suite, so diffs are also reported per mode.  Each value is a
        synthetic :class:`RecordDiff` summing every workload's wall time for
        that mode (its ``speedup`` property then reports the mode speedup).
        """

        totals: dict[str, RecordDiff] = {}
        for diff in self.diffs:
            entry = totals.get(diff.mode)
            if entry is None:
                totals[diff.mode] = RecordDiff(
                    workload="(all)", mode=diff.mode,
                    old_wall=diff.old_wall, new_wall=diff.new_wall,
                )
            else:
                entry.old_wall += diff.old_wall
                entry.new_wall += diff.new_wall
        return totals


# ------------------------------------------------------------------ running


def run_benchmarks(
    *,
    workloads: Optional[Iterable[str]] = None,
    modes: Sequence[PrefetchMode] = DEFAULT_MODES,
    scale: str = "tiny",
    seed: int = 42,
    repeats: int = 3,
    config: Optional[SystemConfig] = None,
    label: str = "",
    trace_store=_DEFAULT_STORE,
) -> BenchSnapshot:
    """Time every available ``(workload, mode)`` point, build and sim apart.

    Each point's inputs are resolved through the trace-artifact tier
    (:class:`~repro.trace_store.GroupResolver`) exactly the way the batch
    engine resolves them: warm store → decode, miss → build + emit +
    persist.  The *incremental* preparation cost lands in that record's
    ``build_seconds`` (preparation is shared within a workload, so later
    modes of the same workload pay ~nothing); ``wall_seconds`` then times
    ``simulate()`` alone, ``repeats`` times with the fastest kept.
    Unavailable modes (e.g. software prefetching on PageRank) are skipped,
    mirroring the figure drivers.  ``trace_store`` defaults to the
    environment-selected store; pass ``None`` to measure the tier-disabled
    (always build) reality.
    """

    names = list(workloads) if workloads is not None else registry.paper_names()
    system_config = config if config is not None else SystemConfig.scaled()
    snapshot = BenchSnapshot(scale=scale, repeats=max(1, repeats), label=label)
    store = default_trace_store() if trace_store is _DEFAULT_STORE else trace_store

    for name in names:
        resolver = GroupResolver(name, scale, seed, store=store)
        for mode in modes:
            # Preparation phase: resolve the workload object and make sure
            # the trace this mode replays is materialised (decoded from the
            # store, or emitted and persisted), so the timed region below
            # measures simulation only.
            start = time.perf_counter()
            workload = resolver.workload_for_mode(mode)
            available = mode_available(workload, mode)
            if available:
                variant = variant_for_mode(mode)
                workload.trace(variant)
                resolver.persist([variant])
            build_elapsed = time.perf_counter() - start
            if not available:
                continue
            best: Optional[float] = None
            result = None
            for _ in range(snapshot.repeats):
                start = time.perf_counter()
                result = simulate(workload, mode, system_config)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
            assert result is not None and best is not None
            snapshot.records.append(
                BenchRecord(
                    workload=name,
                    mode=mode.value,
                    wall_seconds=best,
                    ops=int(result.core.get("ops", 0)),
                    instructions=result.instructions,
                    cycles=result.cycles,
                    build_seconds=build_elapsed,
                )
            )
    return snapshot


# ------------------------------------------------------------ trajectory IO


def snapshot_paths(directory: Union[str, Path]) -> list[Path]:
    """Return the trajectory's BENCH files in ascending numeric order."""

    directory = Path(directory)
    numbered = []
    for path in directory.glob("BENCH_*.json"):
        match = _SNAPSHOT_RE.match(path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    return [path for _, path in sorted(numbered)]


def latest_snapshot_path(
    directory: Union[str, Path], *, scale: Optional[str] = None
) -> Optional[Path]:
    """Newest trajectory snapshot, optionally the newest at a given scale.

    With ``scale`` set, snapshots taken at other scales (e.g. a ``small``
    point appended between ``tiny`` CI points) are skipped so diffs and
    regression gates always compare like with like.
    """

    paths = snapshot_paths(directory)
    if scale is None:
        return paths[-1] if paths else None
    for path in reversed(paths):
        try:
            if load_snapshot(path).scale == scale:
                return path
        except (OSError, ValueError, KeyError):
            continue
    return None


def next_snapshot_path(directory: Union[str, Path]) -> Path:
    """The next unused ``BENCH_<n>.json`` name in ``directory``."""

    paths = snapshot_paths(directory)
    if not paths:
        return Path(directory) / "BENCH_0.json"
    last = int(_SNAPSHOT_RE.match(paths[-1].name).group(1))
    return Path(directory) / f"BENCH_{last + 1}.json"


def load_snapshot(path: Union[str, Path]) -> BenchSnapshot:
    with open(path, "r", encoding="utf-8") as handle:
        return BenchSnapshot.from_dict(json.load(handle))


def save_snapshot(snapshot: BenchSnapshot, path: Union[str, Path]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot.as_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------- diffing


def diff_snapshots(old: BenchSnapshot, new: BenchSnapshot) -> SnapshotDiff:
    """Compare the points present in both snapshots.

    Snapshots taken at different workload scales are not comparable — the
    records match by ``(workload, mode)`` but time different trace lengths —
    so the diff comes back empty with an explanatory :attr:`SnapshotDiff.note`.
    """

    diff = SnapshotDiff(old_label=old.label, new_label=new.label)
    if old.scale != new.scale:
        diff.note = (
            f"snapshots are not comparable: scale {old.scale!r} vs {new.scale!r}"
        )
        return diff
    for record in new.records:
        previous = old.record_for(record.workload, record.mode)
        if previous is None:
            continue
        diff.diffs.append(
            RecordDiff(
                workload=record.workload,
                mode=record.mode,
                old_wall=previous.wall_seconds,
                new_wall=record.wall_seconds,
                old_build=previous.build_seconds,
                new_build=record.build_seconds,
            )
        )
    return diff


def format_snapshot(snapshot: BenchSnapshot) -> str:
    """Render one snapshot as an aligned console table."""

    lines = [
        f"Perf snapshot: scale={snapshot.scale} repeats={snapshot.repeats} "
        f"python={snapshot.python}"
        + (f"  [{snapshot.label}]" if snapshot.label else ""),
        f"{'workload':<12} {'mode':<10} {'build (ms)':>10} {'wall (ms)':>10} "
        f"{'ops':>9} {'ops/s':>12}",
    ]
    for record in snapshot.records:
        lines.append(
            f"{record.workload:<12} {record.mode:<10} "
            f"{record.build_seconds * 1e3:>10.2f} {record.wall_seconds * 1e3:>10.2f} "
            f"{record.ops:>9} {record.ops_per_second:>12,.0f}"
        )
    lines.append(
        f"total wall: {snapshot.total_wall_seconds * 1e3:.1f} ms  "
        f"(build {snapshot.total_build_seconds * 1e3:.1f} ms, "
        f"suite {snapshot.suite_seconds * 1e3:.1f} ms)"
    )
    return "\n".join(lines)


def environment_matches(old: BenchSnapshot, new: BenchSnapshot) -> bool:
    """Whether two snapshots were measured on comparable environments.

    Wall-clock comparisons across different machines or interpreter versions
    measure the hardware delta, not a code change, so regression gates treat
    a mismatched baseline as advisory.  Python versions compare on
    major.minor — micro releases do not shift performance the way a new
    minor version (with interpreter optimisations) does.
    """

    def minor(version: str) -> str:
        return ".".join(version.split(".")[:2])

    return old.machine == new.machine and minor(old.python) == minor(new.python)


def append_trajectory_point(
    directory: Union[str, Path],
    *,
    scale: str = "tiny",
    workloads: Optional[Iterable[str]] = None,
    modes: Sequence[PrefetchMode] = DEFAULT_MODES,
    repeats: int = 3,
    seed: int = 42,
    label: str = "",
) -> tuple[BenchSnapshot, Optional[SnapshotDiff], Path]:
    """Measure, diff against the newest same-scale snapshot, and append.

    The shared orchestration behind ``tools/perf_track.py`` and
    ``examples/reproduce_paper.py --perf-track``: returns the new snapshot,
    the diff against the previous same-scale trajectory point (``None`` when
    there is no such point), and the ``BENCH_<n>.json`` path written.
    """

    snapshot = run_benchmarks(
        workloads=workloads, modes=modes, scale=scale, seed=seed,
        repeats=repeats, label=label,
    )
    previous = latest_snapshot_path(directory, scale=scale)
    diff = diff_snapshots(load_snapshot(previous), snapshot) if previous else None
    path = next_snapshot_path(directory)
    save_snapshot(snapshot, path)
    return snapshot, diff, path


def format_diff(diff: SnapshotDiff) -> str:
    """Render a snapshot comparison as an aligned console table."""

    if diff.note:
        return diff.note
    if not diff.diffs:
        return "no overlapping benchmark points to compare"
    lines = [
        f"{'workload':<12} {'mode':<10} {'old (ms)':>10} {'new (ms)':>10} {'speedup':>9}",
    ]
    for record in diff.diffs:
        lines.append(
            f"{record.workload:<12} {record.mode:<10} "
            f"{record.old_wall * 1e3:>10.2f} {record.new_wall * 1e3:>10.2f} "
            f"{record.speedup:>8.2f}×"
        )
    for mode_diff in diff.mode_speedups().values():
        lines.append(
            f"mode {mode_diff.mode:<10} {mode_diff.old_wall * 1e3:>10.2f} ms → "
            f"{mode_diff.new_wall * 1e3:>8.2f} ms  ({mode_diff.speedup:.2f}×)"
        )
    if diff.has_build_phase:
        # Which phase moved?  ``build`` is trace/workload preparation,
        # ``sim`` is the simulate() hot path; ``suite`` combines them.
        # (A 0.0 old build means the baseline predates the phase split.)
        lines.append(
            f"phase build: {diff.total_old_build * 1e3:>10.2f} ms → "
            f"{diff.total_new_build * 1e3:>8.2f} ms   "
            f"sim: {diff.total_old * 1e3:.2f} ms → {diff.total_new * 1e3:.2f} ms   "
            f"suite: {diff.suite_speedup:.2f}×"
        )
    lines.append(
        f"total: {diff.total_old * 1e3:.1f} ms → {diff.total_new * 1e3:.1f} ms "
        f"({diff.total_speedup:.2f}×)"
    )
    figure7 = diff.figure7_speedup
    if figure7 is not None:
        workload, mode = FIGURE7_REPRESENTATIVE
        lines.append(f"figure7 representative ({workload}/{mode}): {figure7:.2f}×")
    return "\n".join(lines)
