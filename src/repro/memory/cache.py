"""Set-associative cache model with LRU replacement and prefetch bookkeeping.

The cache is a *timing-and-occupancy* model: it tracks which lines are
resident, when each line's fill completes, whether the line was brought in by
a prefetch, and whether a prefetched line was used by a demand access before
eviction.  These are exactly the quantities behind Figure 8 of the paper
(prefetch utilisation and L1 read hit rates).

The cache does not store data — data lives in the
:class:`~repro.memory.address_space.AddressSpace` — so fills never copy bytes;
they only update the tag state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import CacheConfig
from .layout import line_address


@dataclass
class CacheStats:
    """Per-cache counters."""

    demand_read_accesses: int = 0
    demand_read_hits: int = 0
    demand_write_accesses: int = 0
    demand_write_hits: int = 0
    inflight_merges: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_requests: int = 0
    prefetch_fills: int = 0
    prefetch_redundant: int = 0
    prefetch_merged: int = 0
    prefetch_used: int = 0
    prefetch_evicted_unused: int = 0
    prefetch_unused_at_end: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_read_accesses + self.demand_write_accesses

    @property
    def demand_hits(self) -> int:
        return self.demand_read_hits + self.demand_write_hits

    @property
    def demand_read_hit_rate(self) -> float:
        if self.demand_read_accesses == 0:
            return 0.0
        return self.demand_read_hits / self.demand_read_accesses

    @property
    def prefetch_utilisation(self) -> float:
        """Fraction of completed prefetch fills used by a demand access."""

        if self.prefetch_fills == 0:
            return 0.0
        return self.prefetch_used / self.prefetch_fills

    def as_dict(self) -> dict[str, float]:
        return {
            "demand_read_accesses": self.demand_read_accesses,
            "demand_read_hits": self.demand_read_hits,
            "demand_write_accesses": self.demand_write_accesses,
            "demand_write_hits": self.demand_write_hits,
            "demand_read_hit_rate": self.demand_read_hit_rate,
            "inflight_merges": self.inflight_merges,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "prefetch_requests": self.prefetch_requests,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_redundant": self.prefetch_redundant,
            "prefetch_merged": self.prefetch_merged,
            "prefetch_used": self.prefetch_used,
            "prefetch_evicted_unused": self.prefetch_evicted_unused,
            "prefetch_unused_at_end": self.prefetch_unused_at_end,
            "prefetch_utilisation": self.prefetch_utilisation,
        }


@dataclass
class CacheLine:
    """Tag-array state for one resident (or in-flight) line."""

    tag: int
    fill_time: float
    prefetched: bool = False
    used: bool = False
    dirty: bool = False
    lru_stamp: int = 0


class Cache:
    """A single level of set-associative cache."""

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._num_sets = config.num_sets
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(self._num_sets)]
        self._lru_counter = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------- addressing

    def _set_and_tag(self, addr: int) -> tuple[int, int]:
        line = line_address(addr, self.config.line_bytes) // self.config.line_bytes
        return line % self._num_sets, line // self._num_sets

    # ----------------------------------------------------------------- lookup

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the line containing ``addr`` if resident or in flight."""

        set_index, tag = self._set_and_tag(addr)
        return self._sets[set_index].get(tag)

    def contains(self, addr: int, time: float) -> bool:
        """Return True when the line is resident and filled by ``time``."""

        line = self.lookup(addr)
        return line is not None and line.fill_time <= time

    def touch(self, addr: int, *, write: bool = False) -> None:
        """Update LRU state (and dirtiness) for a hit on ``addr``."""

        line = self.lookup(addr)
        if line is None:
            return
        self._lru_counter += 1
        line.lru_stamp = self._lru_counter
        if write:
            line.dirty = True
        if line.prefetched and not line.used:
            line.used = True
            self.stats.prefetch_used += 1

    # ------------------------------------------------------------------ fills

    def insert(
        self,
        addr: int,
        fill_time: float,
        *,
        prefetched: bool = False,
        write: bool = False,
    ) -> Optional[CacheLine]:
        """Insert the line containing ``addr``; return the evicted line, if any.

        The line is inserted immediately but only becomes usable (a "hit") at
        ``fill_time``; accesses between now and then merge with the in-flight
        fill.
        """

        set_index, tag = self._set_and_tag(addr)
        cache_set = self._sets[set_index]
        victim: Optional[CacheLine] = None
        if tag not in cache_set and len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].lru_stamp)
            victim = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            if victim.prefetched and not victim.used:
                self.stats.prefetch_evicted_unused += 1
        self._lru_counter += 1
        cache_set[tag] = CacheLine(
            tag=tag,
            fill_time=fill_time,
            prefetched=prefetched,
            dirty=write,
            lru_stamp=self._lru_counter,
        )
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim

    # ------------------------------------------------------------------ wrap-up

    def finalize(self) -> None:
        """Count prefetched lines never used by the end of the simulation."""

        for cache_set in self._sets:
            for line in cache_set.values():
                if line.prefetched and not line.used:
                    self.stats.prefetch_unused_at_end += 1

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self._num_sets)]
        self._lru_counter = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------ info

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.config.name}, {self.config.size_bytes // 1024}KB, "
            f"{self.config.associativity}-way, {self.resident_lines} lines resident)"
        )
