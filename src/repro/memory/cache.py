"""Set-associative cache model with LRU replacement and prefetch bookkeeping.

The cache is a *timing-and-occupancy* model: it tracks which lines are
resident, when each line's fill completes, whether the line was brought in by
a prefetch, and whether a prefetched line was used by a demand access before
eviction.  These are exactly the quantities behind Figure 8 of the paper
(prefetch utilisation and L1 read hit rates).

The cache does not store data — data lives in the
:class:`~repro.memory.address_space.AddressSpace` — so fills never copy bytes;
they only update the tag state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import CacheConfig


@dataclass(slots=True)
class CacheStats:
    """Per-cache counters."""

    demand_read_accesses: int = 0
    demand_read_hits: int = 0
    demand_write_accesses: int = 0
    demand_write_hits: int = 0
    inflight_merges: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_requests: int = 0
    prefetch_fills: int = 0
    prefetch_redundant: int = 0
    prefetch_merged: int = 0
    prefetch_used: int = 0
    prefetch_evicted_unused: int = 0
    prefetch_unused_at_end: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_read_accesses + self.demand_write_accesses

    @property
    def demand_hits(self) -> int:
        return self.demand_read_hits + self.demand_write_hits

    @property
    def demand_read_hit_rate(self) -> float:
        if self.demand_read_accesses == 0:
            return 0.0
        return self.demand_read_hits / self.demand_read_accesses

    @property
    def prefetch_utilisation(self) -> float:
        """Fraction of completed prefetch fills used by a demand access."""

        if self.prefetch_fills == 0:
            return 0.0
        return self.prefetch_used / self.prefetch_fills

    def as_dict(self) -> dict[str, float]:
        return {
            "demand_read_accesses": self.demand_read_accesses,
            "demand_read_hits": self.demand_read_hits,
            "demand_write_accesses": self.demand_write_accesses,
            "demand_write_hits": self.demand_write_hits,
            "demand_read_hit_rate": self.demand_read_hit_rate,
            "inflight_merges": self.inflight_merges,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "prefetch_requests": self.prefetch_requests,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_redundant": self.prefetch_redundant,
            "prefetch_merged": self.prefetch_merged,
            "prefetch_used": self.prefetch_used,
            "prefetch_evicted_unused": self.prefetch_evicted_unused,
            "prefetch_unused_at_end": self.prefetch_unused_at_end,
            "prefetch_utilisation": self.prefetch_utilisation,
        }


@dataclass(slots=True)
class CacheLine:
    """Tag-array state for one resident (or in-flight) line.

    ``slots=True``: one is allocated per cache fill, and the slotted layout
    makes both construction and the per-hit field accesses cheaper.
    """

    tag: int
    fill_time: float
    prefetched: bool = False
    used: bool = False
    dirty: bool = False
    lru_stamp: int = 0


class Cache:
    """A single level of set-associative cache.

    Hot-path layout: each set is a plain dict ordered by recency (oldest
    entry first), so a hit is one dict probe, an LRU update is a delete +
    re-insert, and the eviction victim is ``next(iter(set))`` — no per-miss
    scan.  Set index and tag come from precomputed shifts/masks instead of
    re-deriving ``line_address(...) // line_bytes`` on every access.
    """

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._num_sets = config.num_sets
        line_bytes = config.line_bytes
        # num_sets is validated to be a power of two; line_bytes normally is
        # (64), but fall back to division for exotic configurations.
        self._line_shift = (
            line_bytes.bit_length() - 1 if line_bytes & (line_bytes - 1) == 0 else None
        )
        self._line_bytes = line_bytes
        self._set_mask = self._num_sets - 1
        self._set_shift = self._num_sets.bit_length() - 1
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(self._num_sets)]
        self._associativity = config.associativity
        self._lru_counter = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------- addressing

    def probe(self, addr: int) -> tuple[dict[int, CacheLine], int]:
        """Return ``(cache_set, tag)`` for ``addr`` — the one-probe hot path.

        The caller may read ``cache_set.get(tag)`` and, for a hit, pass the
        results straight to :meth:`touch_entry` / :meth:`fill_entry` without
        recomputing the set and tag.
        """

        line_shift = self._line_shift
        line = addr >> line_shift if line_shift is not None else addr // self._line_bytes
        return self._sets[line & self._set_mask], line >> self._set_shift

    # ----------------------------------------------------------------- lookup

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the line containing ``addr`` if resident or in flight."""

        cache_set, tag = self.probe(addr)
        return cache_set.get(tag)

    def contains(self, addr: int, time: float) -> bool:
        """Return True when the line is resident and filled by ``time``."""

        line = self.lookup(addr)
        return line is not None and line.fill_time <= time

    def touch(self, addr: int, *, write: bool = False) -> None:
        """Update LRU state (and dirtiness) for a hit on ``addr``."""

        cache_set, tag = self.probe(addr)
        line = cache_set.get(tag)
        if line is not None:
            self.touch_entry(cache_set, tag, line, write=write)

    def touch_entry(
        self, cache_set: dict[int, CacheLine], tag: int, line: CacheLine, *, write: bool = False
    ) -> None:
        """LRU/dirty/prefetch-used update for a line already probed via :meth:`probe`."""

        self._lru_counter += 1
        line.lru_stamp = self._lru_counter
        # Intrusive LRU: each set's dict is kept in recency order (oldest
        # first), so eviction is O(1) instead of a per-miss stamp scan.
        del cache_set[tag]
        cache_set[tag] = line
        if write:
            line.dirty = True
        if line.prefetched and not line.used:
            line.used = True
            self.stats.prefetch_used += 1

    # ------------------------------------------------------------------ fills

    def insert(
        self,
        addr: int,
        fill_time: float,
        *,
        prefetched: bool = False,
        write: bool = False,
    ) -> Optional[CacheLine]:
        """Insert the line containing ``addr``; return the evicted line, if any.

        The line is inserted immediately but only becomes usable (a "hit") at
        ``fill_time``; accesses between now and then merge with the in-flight
        fill.

        Inserting a tag that is already resident (or in flight) *merges* with
        the existing line rather than replacing it: ``dirty`` and ``used``
        state is preserved (so ``dirty_evictions`` and ``prefetch_used`` stay
        correct), the line becomes available at the earlier of the two fill
        times, and a prefetch landing on a line it did not originally bring
        in does not count an extra ``prefetch_fills``.
        """

        cache_set, tag = self.probe(addr)
        return self.fill_entry(cache_set, tag, fill_time, prefetched=prefetched, write=write)

    def fill_entry(
        self,
        cache_set: dict[int, CacheLine],
        tag: int,
        fill_time: float,
        *,
        prefetched: bool = False,
        write: bool = False,
    ) -> Optional[CacheLine]:
        """:meth:`insert` for a set/tag already probed via :meth:`probe`."""

        self._lru_counter += 1
        existing = cache_set.get(tag)
        if existing is not None:
            # Merge: never drop dirty/used state or double-count fills.
            if fill_time < existing.fill_time:
                existing.fill_time = fill_time
            if write:
                existing.dirty = True
            existing.lru_stamp = self._lru_counter
            del cache_set[tag]  # refresh intrusive LRU order (oldest first)
            cache_set[tag] = existing
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self._associativity:
            victim_tag = next(iter(cache_set))
            victim = cache_set.pop(victim_tag)
            stats = self.stats
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
            if victim.prefetched and not victim.used:
                stats.prefetch_evicted_unused += 1
        # Positional construction (this runs once per fill).
        cache_set[tag] = CacheLine(tag, fill_time, prefetched, False, write, self._lru_counter)
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim

    # ------------------------------------------------------------------ wrap-up

    def finalize(self) -> None:
        """Count prefetched lines never used by the end of the simulation."""

        for cache_set in self._sets:
            for line in cache_set.values():
                if line.prefetched and not line.used:
                    self.stats.prefetch_unused_at_end += 1

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self._num_sets)]
        self._lru_counter = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------ info

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.config.name}, {self.config.size_bytes // 1024}KB, "
            f"{self.config.associativity}-way, {self.resident_lines} lines resident)"
        )
