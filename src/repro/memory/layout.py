"""Cache-line and page arithmetic helpers.

Addresses in the simulator are plain Python integers (64-bit virtual
addresses).  These helpers keep the line/page arithmetic in one place so the
line size and page size constants in :mod:`repro.config` are the single source
of truth.
"""

from __future__ import annotations

from ..config import CACHE_LINE_BYTES, PAGE_BYTES, WORD_BYTES

WORDS_PER_LINE = CACHE_LINE_BYTES // WORD_BYTES


def line_address(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Return the base address of the cache line containing ``addr``."""

    return addr - (addr % line_bytes)


def line_index(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Return the line number (address divided by the line size)."""

    return addr // line_bytes

def line_offset_bytes(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Return the byte offset of ``addr`` within its cache line."""

    return addr % line_bytes


def line_offset_words(addr: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Return the word offset of ``addr`` within its cache line."""

    return (addr % line_bytes) // WORD_BYTES


def page_number(addr: int, page_bytes: int = PAGE_BYTES) -> int:
    """Return the virtual page number containing ``addr``."""

    return addr // page_bytes


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""

    if alignment <= 0:
        raise ValueError("alignment must be positive")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


def lines_covering(addr: int, size_bytes: int, line_bytes: int = CACHE_LINE_BYTES) -> list[int]:
    """Return the base addresses of every line touched by ``[addr, addr+size)``."""

    if size_bytes <= 0:
        return []
    first = line_address(addr, line_bytes)
    last = line_address(addr + size_bytes - 1, line_bytes)
    return list(range(first, last + line_bytes, line_bytes))
