"""Statistics containers shared by the memory hierarchy components.

The per-cache :class:`~repro.memory.cache.CacheStats` lives next to the cache
implementation; this module holds the aggregate view used by simulation
results and the evaluation scripts (Figure 8 and the extra-memory-traffic
analysis in Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class HierarchyStats:
    """Aggregated statistics of a full simulation's memory behaviour."""

    l1: dict[str, float] = field(default_factory=dict)
    l2: dict[str, float] = field(default_factory=dict)
    tlb: dict[str, float] = field(default_factory=dict)
    dram: dict[str, float] = field(default_factory=dict)
    dropped_prefetches: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "l1": dict(self.l1),
            "l2": dict(self.l2),
            "tlb": dict(self.tlb),
            "dram": dict(self.dram),
            "dropped_prefetches": self.dropped_prefetches,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "HierarchyStats":
        """Rebuild stats from :meth:`as_dict` output (e.g. a cached result)."""

        return cls(
            l1=dict(data.get("l1") or {}),
            l2=dict(data.get("l2") or {}),
            tlb=dict(data.get("tlb") or {}),
            dram=dict(data.get("dram") or {}),
            dropped_prefetches=data.get("dropped_prefetches", 0),
        )

    @property
    def l1_read_hit_rate(self) -> float:
        return float(self.l1.get("demand_read_hit_rate", 0.0))

    @property
    def l2_read_hit_rate(self) -> float:
        return float(self.l2.get("demand_read_hit_rate", 0.0))

    @property
    def l1_prefetch_utilisation(self) -> float:
        return float(self.l1.get("prefetch_utilisation", 0.0))

    @property
    def dram_total_accesses(self) -> float:
        return float(self.dram.get("total_accesses", 0.0))
