"""DDR3-like main memory timing model.

The model captures the two DRAM properties the prefetcher evaluation depends
on: a long access latency that the prefetcher hides, and finite bandwidth that
over-fetching (e.g. pointer prefetchers, or G500-List's early edge prefetches)
wastes.  Requests are served by a small number of channels; each channel is
busy for :attr:`~repro.config.DRAMConfig.line_service_cycles` per 64-byte line
and every request additionally pays the access latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DRAMConfig


@dataclass(slots=True)
class DRAMStats:
    """Counters for main-memory traffic."""

    demand_accesses: int = 0
    prefetch_accesses: int = 0
    writebacks: int = 0
    busy_cycles: float = 0.0

    @property
    def total_accesses(self) -> int:
        return self.demand_accesses + self.prefetch_accesses + self.writebacks

    def as_dict(self) -> dict[str, float]:
        return {
            "demand_accesses": self.demand_accesses,
            "prefetch_accesses": self.prefetch_accesses,
            "writebacks": self.writebacks,
            "total_accesses": self.total_accesses,
            "busy_cycles": self.busy_cycles,
        }


@dataclass
class DRAMModel:
    """Channel-based DRAM timing model."""

    config: DRAMConfig
    _channel_free: list[float] = field(default_factory=list)
    stats: DRAMStats = field(default_factory=DRAMStats)

    def __post_init__(self) -> None:
        self._channel_free = [0.0] * self.config.channels
        # Hot-path constants (access() runs once per L2 miss).
        self._access_latency = self.config.access_latency_cycles
        self._service_cycles = self.config.line_service_cycles

    def access(self, time: float, *, is_prefetch: bool = False, is_writeback: bool = False) -> float:
        """Serve one line-sized request arriving at ``time``.

        Returns the completion time of the request.  The least-loaded channel
        is used, which approximates address interleaving across channels.
        """

        # First least-loaded channel (min() with a key built a range object
        # and paid a key call per channel on every DRAM access).
        channel_free = self._channel_free
        channel = 0
        earliest = channel_free[0]
        for index in range(1, len(channel_free)):
            free = channel_free[index]
            if free < earliest:
                earliest = free
                channel = index
        start = time if time > earliest else earliest
        completion = start + self._access_latency
        channel_free[channel] = start + self._service_cycles
        self.stats.busy_cycles += self._service_cycles
        if is_writeback:
            self.stats.writebacks += 1
        elif is_prefetch:
            self.stats.prefetch_accesses += 1
        else:
            self.stats.demand_accesses += 1
        return completion

    def reset(self) -> None:
        self._channel_free = [0.0] * self.config.channels
        self.stats = DRAMStats()
