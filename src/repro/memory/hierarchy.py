"""Assembly of the simulated memory hierarchy.

:class:`MemoryHierarchy` wires together the L1 and L2 caches, their MSHR
files, the TLB and the DRAM model, and exposes the two entry points used by
the rest of the simulator:

``demand_access``
    called by the core timing model for every load and store in the dynamic
    trace; returns the completion time of the access.

``prefetch_access``
    called by a prefetcher (the programmable engine, the stride prefetcher,
    the GHB prefetcher, or a software-prefetch trace op); brings a line into
    the L1/L2 and optionally invokes a fill callback, which is how the
    event-triggered prefetcher reacts to its own prefetches.

Two hooks let a prefetch engine observe the hierarchy the way the paper's
address filter snoops the L1: ``demand_snoop`` is invoked for every demand
*read* (Section 4.2: "the address filter snoops all loads coming from the
main core"), and ``advance_hook`` is invoked with the current time before
each demand access so an event-driven engine can catch up with simulated
time before the core looks at the cache state.
"""

from __future__ import annotations

import heapq
from typing import Callable, NamedTuple, Optional

from ..config import CACHE_LINE_BYTES, SystemConfig
from ..errors import SimulationError
from .address_space import AddressSpace
from .cache import Cache
from .dram import DRAMModel
from .mshr import MSHRFile
from .stats import HierarchyStats
from .tlb import TLB

#: Signature of the demand-read snoop callback: ``(address, time, level)``,
#: where ``level`` is the level that served the access ("l1", "l1_inflight",
#: "l2", "l2_inflight" or "dram").  The programmable prefetcher's address
#: filter ignores the level (it snoops all loads); the stride and GHB
#: baselines use it to train on hits/misses as their original designs do.
SnoopHook = Callable[[int, float, str], None]

#: Signature of the time-advance callback: ``(time)``.
AdvanceHook = Callable[[float], None]

#: Signature of a prefetch-fill callback: ``(address, fill_time)``.
FillCallback = Callable[[int, float], None]


class AccessResult(NamedTuple):
    """Outcome of a single demand access.

    A ``NamedTuple`` rather than a dataclass: one is constructed per demand
    access, and tuple construction is markedly cheaper on the hot path.
    """

    completion_time: float
    level: str
    translation_latency: float

    @property
    def l1_hit(self) -> bool:
        return self.level == "l1"


class MemoryHierarchy:
    """L1 + L2 + TLB + DRAM with prefetch support."""

    def __init__(self, config: SystemConfig, address_space: Optional[AddressSpace] = None) -> None:
        config.validate()
        self.config = config
        self.address_space = address_space if address_space is not None else AddressSpace()
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.l1_mshrs = MSHRFile(config.l1.mshrs)
        self.l2_mshrs = MSHRFile(config.l2.mshrs)
        self.tlb = TLB(config.tlb)
        self.dram = DRAMModel(config.dram)
        self.dropped_prefetches = 0
        self._demand_snoop: Optional[SnoopHook] = None
        self._advance_hook: Optional[AdvanceHook] = None
        # Level/translation of the most recent demand access, for the
        # AccessResult-building demand_access wrapper.
        self._last_level = "l1"
        self._last_translation = 0.0
        # Hot-path constants, hoisted out of the per-access attribute chain.
        self._l1_hit_latency = config.l1.hit_latency
        self._l2_hit_latency = config.l2.hit_latency
        self._rebind_hot_refs()
        # Memoised line reads for the prefetcher (see read_line_words):
        # trace replay never writes the address space, so the 8-word tuple of
        # a line is invariant for the lifetime of one simulation.
        self._line_words_cache: dict[int, tuple[int, ...]] = {}
        # Memoised is_mapped() verdicts for prefetch targets (the address
        # space's region map is likewise fixed during a simulation).
        self._mapped_cache: dict[int, bool] = {}

    def _rebind_hot_refs(self) -> None:
        """Re-resolve references the access paths use inline.

        Cache.probe and the TLB's L1-hit path are inlined into
        demand_access/prefetch_access (one shift/mask or dict probe instead
        of a method call per access).  The backing structures are rebound by
        ``Cache.reset``/``TLB.reset``, so :meth:`reset` calls this again.
        A ``None`` line shift (non-power-of-two line size) makes the access
        paths fall back to ``Cache.probe``.
        """

        self._l1_sets = self.l1._sets
        self._l1_line_shift = self.l1._line_shift
        self._l1_set_mask = self.l1._set_mask
        self._l1_set_shift = self.l1._set_shift
        self._l2_sets = self.l2._sets
        self._l2_line_shift = self.l2._line_shift
        self._l2_set_mask = self.l2._set_mask
        self._l2_set_shift = self.l2._set_shift
        self._tlb_page_bytes = self.tlb._page_bytes
        self._tlb_l1_entries = self.tlb._l1._entries
        self._tlb_stats = self.tlb.stats

    # ----------------------------------------------------------------- hooks

    def set_demand_snoop(self, hook: Optional[SnoopHook]) -> None:
        """Register the address-filter snoop for demand reads."""

        self._demand_snoop = hook

    def set_advance_hook(self, hook: Optional[AdvanceHook]) -> None:
        """Register a callback run before each demand access with the access time."""

        self._advance_hook = hook

    # ---------------------------------------------------------------- demand

    def demand_access(self, addr: int, time: float, *, write: bool = False) -> AccessResult:
        """Perform a demand load or store issued by the core at ``time``.

        Compatibility wrapper around :meth:`demand_access_time` that also
        reports the serving level and translation latency.  The core's replay
        loop calls :meth:`demand_access_time` directly — it only needs the
        completion time, and skipping the ``AccessResult`` construction is
        measurable at one op per dynamic instruction.
        """

        completion = self.demand_access_time(addr, time, write=write)
        return AccessResult(completion, self._last_level, self._last_translation)

    def demand_access_time(self, addr: int, time: float, *, write: bool = False) -> float:
        """Like :meth:`demand_access`, returning only the completion time."""

        if time < 0:
            raise SimulationError("access time must be non-negative")
        advance = self._advance_hook
        if advance is not None:
            advance(time)

        # The lookup body is inlined here (it used to be _demand_lookup):
        # this method runs once per dynamic memory op, and the extra call
        # was measurable once the lookup itself had been slimmed down.
        # TLB.translate's L1-hit path is inlined the same way.
        page = addr // self._tlb_page_bytes
        tlb_stats = self._tlb_stats
        tlb_stats.accesses += 1
        tlb_l1 = self._tlb_l1_entries
        if page in tlb_l1:
            del tlb_l1[page]
            tlb_l1[page] = None
            tlb_stats.l1_hits += 1
            translation_latency = 0.0
        else:
            translation_latency = self.tlb.miss(page)
        t = time + translation_latency

        l1 = self.l1
        l1_stats = l1.stats
        if write:
            l1_stats.demand_write_accesses += 1
        else:
            l1_stats.demand_read_accesses += 1

        # One probe serves the hit, the in-flight merge and the miss fill
        # (Cache.probe, inlined).
        line_shift = self._l1_line_shift
        if line_shift is not None:
            line_index = addr >> line_shift
            cache_set = self._l1_sets[line_index & self._l1_set_mask]
            tag = line_index >> self._l1_set_shift
        else:
            cache_set, tag = l1.probe(addr)
        line = cache_set.get(tag)
        hit_latency = self._l1_hit_latency
        if line is not None:
            fill_time = line.fill_time
            if fill_time <= t:
                if write:
                    l1_stats.demand_write_hits += 1
                else:
                    l1_stats.demand_read_hits += 1
                completion = t + hit_latency
                level = "l1"
            else:
                # The line is already being filled (by a prefetch or an
                # earlier miss); this access merges with the outstanding fill.
                l1_stats.inflight_merges += 1
                earliest = t + hit_latency
                completion = fill_time if fill_time > earliest else earliest
                level = "l1_inflight"
            # Cache.touch_entry, inlined (runs once per L1 hit/merge).
            l1._lru_counter = stamp = l1._lru_counter + 1
            line.lru_stamp = stamp
            del cache_set[tag]
            cache_set[tag] = line
            if write:
                line.dirty = True
            if line.prefetched and not line.used:
                line.used = True
                l1_stats.prefetch_used += 1
        else:
            # L1 miss.
            l1_stats.misses += 1
            grant = self.l1_mshrs.allocate(t)
            completion, level = self._access_l2(
                addr, grant + hit_latency, is_prefetch=False
            )
            l1.fill_entry(cache_set, tag, completion, prefetched=False, write=write)
            self.l1_mshrs.register_fill(completion)

        if not write:
            snoop = self._demand_snoop
            if snoop is not None:
                snoop(addr, t, level)
        self._last_level = level
        self._last_translation = translation_latency
        return completion

    # -------------------------------------------------------------- prefetch

    def prefetch_access(
        self,
        addr: int,
        time: float,
        *,
        on_fill: Optional[FillCallback] = None,
    ) -> Optional[float]:
        """Bring the line containing ``addr`` into the L1 as a prefetch.

        Returns the time the data is available in the L1, or ``None`` when
        the prefetch was discarded (unmapped address, i.e. what would have
        been a page fault — Section 5.3).
        """

        mapped_cache = self._mapped_cache
        mapped = mapped_cache.get(addr)
        if mapped is None:
            if len(mapped_cache) >= 65536:
                mapped_cache.clear()
            mapped = self.address_space.is_mapped(addr)
            mapped_cache[addr] = mapped
        if not mapped:
            self.dropped_prefetches += 1
            return None

        l1 = self.l1
        l1_stats = l1.stats
        l1_stats.prefetch_requests += 1
        # TLB.translate's L1-hit path, inlined (as in demand_access).
        page = addr // self._tlb_page_bytes
        tlb_stats = self._tlb_stats
        tlb_stats.accesses += 1
        tlb_l1 = self._tlb_l1_entries
        if page in tlb_l1:
            del tlb_l1[page]
            tlb_l1[page] = None
            tlb_stats.l1_hits += 1
            translation_latency = 0.0
        else:
            translation_latency = self.tlb.miss(page)
        t = time + translation_latency

        # Cache.probe, inlined (as in demand_access).
        line_shift = self._l1_line_shift
        if line_shift is not None:
            line_index = addr >> line_shift
            cache_set = self._l1_sets[line_index & self._l1_set_mask]
            tag = line_index >> self._l1_set_shift
        else:
            cache_set, tag = l1.probe(addr)
        line = cache_set.get(tag)
        if line is not None:
            fill_time = line.fill_time
            if fill_time <= t:
                l1_stats.prefetch_redundant += 1
                available = t + self._l1_hit_latency
                if on_fill is not None:
                    on_fill(addr, available)
                return available
            l1_stats.prefetch_merged += 1
            if on_fill is not None:
                on_fill(addr, fill_time)
            return fill_time

        # MSHRFile.allocate + register_fill, inlined (one L1 fill per issued
        # prefetch is the common case on the event-engine hot path).
        mshrs = self.l1_mshrs
        completions = mshrs._completions
        heappop = heapq.heappop
        while completions and completions[0] <= t:
            heappop(completions)
        if len(completions) < mshrs._capacity:
            grant = t
        else:
            grant = completions[0]
            mshrs.total_stall_cycles += grant - t
            while completions and completions[0] <= grant:
                heappop(completions)
        mshrs.total_allocations += 1
        data_time, _level = self._access_l2(addr, grant + self._l1_hit_latency, is_prefetch=True)
        l1.fill_entry(cache_set, tag, data_time, prefetched=True)
        heapq.heappush(completions, data_time)
        if on_fill is not None:
            on_fill(addr, data_time)
        return data_time

    def l1_mshr_next_free(self, time: float) -> float:
        """Earliest time at or after ``time`` when the L1 can accept a prefetch."""

        return self.l1_mshrs.next_free_time(time)

    # ------------------------------------------------------------------- L2

    def _access_l2(self, addr: int, time: float, *, is_prefetch: bool) -> tuple[float, str]:
        l2 = self.l2
        l2_stats = l2.stats
        if is_prefetch:
            l2_stats.prefetch_requests += 1
        else:
            l2_stats.demand_read_accesses += 1

        # Cache.probe, inlined (as in demand_access).
        line_shift = self._l2_line_shift
        if line_shift is not None:
            line_index = addr >> line_shift
            cache_set = self._l2_sets[line_index & self._l2_set_mask]
            tag = line_index >> self._l2_set_shift
        else:
            cache_set, tag = l2.probe(addr)
        line = cache_set.get(tag)
        hit_latency = self._l2_hit_latency
        if line is not None:
            # Cache.touch_entry, inlined (the L2 has no demand-write path).
            l2._lru_counter = stamp = l2._lru_counter + 1
            line.lru_stamp = stamp
            del cache_set[tag]
            cache_set[tag] = line
            if line.prefetched and not line.used:
                line.used = True
                l2_stats.prefetch_used += 1
            fill_time = line.fill_time
            if fill_time <= time:
                if not is_prefetch:
                    l2_stats.demand_read_hits += 1
                return time + hit_latency, "l2"
            l2_stats.inflight_merges += 1
            earliest = time + hit_latency
            return (fill_time if fill_time > earliest else earliest), "l2_inflight"

        l2_stats.misses += 1
        grant = self.l2_mshrs.allocate(time)
        dram_completion = self.dram.access(grant + hit_latency, is_prefetch=is_prefetch)
        victim = l2.fill_entry(cache_set, tag, dram_completion, prefetched=is_prefetch)
        if victim is not None and victim.dirty:
            self.dram.stats.writebacks += 1
        self.l2_mshrs.register_fill(dram_completion)
        return dram_completion, "dram"

    # ------------------------------------------------------------------ misc

    def read_line(self, addr: int) -> list[int]:
        """Return the 8 data words of the cache line containing ``addr``."""

        return self.address_space.read_line(addr)

    def read_line_words(self, addr: int) -> tuple[int, ...]:
        """The words of the line containing ``addr``, as a memoised tuple.

        The prefetcher reads one line per observation and one per
        interesting fill, and trace replay never writes the address space,
        so line contents are invariant for the lifetime of a simulation.
        The cache is bounded (cleared wholesale past the cap) so large-scale
        runs cannot grow it past a few megabytes.
        """

        base = addr - (addr % CACHE_LINE_BYTES)
        cache = self._line_words_cache
        words = cache.get(base)
        if words is None:
            if len(cache) >= 65536:
                cache.clear()
            words = tuple(self.address_space.read_line(base))
            cache[base] = words
        return words

    def finalize(self) -> None:
        """Close out end-of-run statistics (unused prefetched lines)."""

        self.l1.finalize()
        self.l2.finalize()

    def collect_stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1=self.l1.stats.as_dict(),
            l2=self.l2.stats.as_dict(),
            tlb=self.tlb.stats.as_dict(),
            dram=self.dram.stats.as_dict(),
            dropped_prefetches=self.dropped_prefetches,
        )

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        self.l1_mshrs.reset()
        self.l2_mshrs.reset()
        self.tlb.reset()
        self.dram.reset()
        self.dropped_prefetches = 0
        self._line_words_cache.clear()
        self._mapped_cache.clear()
        self._rebind_hot_refs()
