"""Simulated memory substrate.

This subpackage provides everything below the core: a simulated virtual
address space holding the workloads' data structures, a two-level
set-associative cache hierarchy with MSHRs, a DDR3-like DRAM model, and a
two-level TLB.  The :class:`~repro.memory.hierarchy.MemoryHierarchy` class
assembles them and exposes the two entry points the rest of the simulator
uses: demand accesses from the core and prefetch requests from a prefetcher.
"""

from .address_space import AddressSpace, TypedArray
from .cache import Cache, CacheStats
from .dram import DRAMModel
from .hierarchy import AccessResult, MemoryHierarchy
from .layout import line_address, line_offset_words, page_number
from .mshr import MSHRFile
from .tlb import TLB

__all__ = [
    "AddressSpace",
    "TypedArray",
    "Cache",
    "CacheStats",
    "DRAMModel",
    "MemoryHierarchy",
    "AccessResult",
    "MSHRFile",
    "TLB",
    "line_address",
    "line_offset_words",
    "page_number",
]
