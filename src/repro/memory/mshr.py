"""Miss-status-holding-register (MSHR) file model.

MSHRs bound the number of outstanding misses a cache can sustain.  The model
tracks the completion times of in-flight fills; a new miss that arrives when
all MSHRs are busy is delayed until the earliest outstanding fill completes.
The prefetch request queue drains into the L1 only when an MSHR is free
(Section 4.6 of the paper), which this model also provides via
:meth:`next_free_time`.
"""

from __future__ import annotations

import heapq

from ..errors import ConfigurationError


class MSHRFile:
    """A fixed-capacity set of miss-status holding registers."""

    __slots__ = ("_capacity", "_completions", "total_allocations", "total_stall_cycles")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("MSHR capacity must be at least 1")
        self._capacity = capacity
        self._completions: list[float] = []
        self.total_allocations = 0
        self.total_stall_cycles = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_flight(self) -> int:
        return len(self._completions)

    def _reclaim(self, now: float) -> None:
        while self._completions and self._completions[0] <= now:
            heapq.heappop(self._completions)

    def next_free_time(self, now: float) -> float:
        """Earliest time at or after ``now`` when an MSHR can be allocated."""

        self._reclaim(now)
        if len(self._completions) < self._capacity:
            return now
        return self._completions[0]

    def allocate(self, now: float) -> float:
        """Allocate an MSHR, returning the time the allocation takes effect.

        If the file is full the allocation is delayed until the earliest
        outstanding fill completes; the delay is accounted as a stall.
        (Inlined reclaim: this runs once per cache miss, so it avoids the
        double ``next_free_time``/``_reclaim`` call chain.)
        """

        completions = self._completions
        while completions and completions[0] <= now:
            heapq.heappop(completions)
        if len(completions) < self._capacity:
            grant = now
        else:
            grant = completions[0]
            self.total_stall_cycles += grant - now
            while completions and completions[0] <= grant:
                heapq.heappop(completions)
        self.total_allocations += 1
        return grant

    def register_fill(self, completion_time: float) -> None:
        """Record the completion time of the fill occupying the MSHR."""

        heapq.heappush(self._completions, completion_time)

    def reset(self) -> None:
        self._completions.clear()
        self.total_allocations = 0
        self.total_stall_cycles = 0.0
