"""Simulated virtual address space.

Workloads build their data structures (graphs, hash tables, sort buffers) in
an :class:`AddressSpace` so that the dynamic traces they emit contain real
virtual addresses, and so that the programmable prefetcher can read the
*values* of prefetched cache lines — which is what lets it chase indices and
pointers the way the paper's hardware does.

Storage is word-granular: every allocation is backed by a NumPy ``uint64``
buffer, and all reads/writes happen at 8-byte word granularity.  This matches
the paper's model (the PPUs "operate on the same word size as the main core"),
keeps the implementation simple, and is sufficient for every benchmark in the
evaluation — all of them index and point with 64-bit quantities.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..config import CACHE_LINE_BYTES, WORD_BYTES
from ..errors import AccessError, AllocationError
from .layout import WORDS_PER_LINE, align_up, line_address

#: Default base of the simulated heap.  Arbitrary but non-zero so that null
#: pointers (0) never alias a real allocation.
DEFAULT_HEAP_BASE = 0x1000_0000

_U64_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class Region:
    """A single mapped allocation."""

    name: str
    base: int
    size_bytes: int

    @property
    def end(self) -> int:
        """One past the last mapped byte."""

        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class TypedArray:
    """A 64-bit-element array living in the simulated address space.

    The wrapper provides Pythonic indexing over the backing store while
    exposing the simulated base address, element size and bounds needed to
    configure the prefetcher's address filter.
    """

    def __init__(self, space: "AddressSpace", region: Region, length: int) -> None:
        self._space = space
        self._region = region
        self._length = length

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        return self._region.name

    @property
    def base_addr(self) -> int:
        return self._region.base

    @property
    def end_addr(self) -> int:
        return self._region.base + self._length * WORD_BYTES

    @property
    def element_bytes(self) -> int:
        return WORD_BYTES

    def __len__(self) -> int:
        return self._length

    # -------------------------------------------------------------- accessors

    def addr_of(self, index: int) -> int:
        """Return the simulated address of element ``index``."""

        self._check_index(index)
        return self._region.base + index * WORD_BYTES

    def __getitem__(self, index: int) -> int:
        self._check_index(index)
        return self._space.read_word(self.addr_of(index))

    def __setitem__(self, index: int, value: int) -> None:
        self._check_index(index)
        self._space.write_word(self.addr_of(index), value)

    def fill(self, values: Iterable[int]) -> None:
        """Bulk-initialise the array from an iterable of integers."""

        data = np.asarray(list(values), dtype=np.int64).astype(np.uint64)
        if data.size > self._length:
            raise AllocationError(
                f"{self.name}: cannot fill {data.size} elements into length {self._length}"
            )
        self._space.write_words(self._region.base, data)

    def to_list(self) -> list[int]:
        """Return the array contents as a list of Python ints (signed 64-bit)."""

        words = self._space.read_words(self._region.base, self._length)
        return [int(w) for w in words.astype(np.int64)]

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_list())

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._length:
            raise AccessError(
                f"{self.name}: index {index} out of bounds for length {self._length}"
            )


class AddressSpace:
    """A simple bump-allocated simulated virtual address space."""

    def __init__(self, heap_base: int = DEFAULT_HEAP_BASE) -> None:
        if heap_base <= 0:
            raise AllocationError("heap base must be positive")
        self._next_addr = align_up(heap_base, CACHE_LINE_BYTES)
        self._region_bases: list[int] = []
        self._regions: list[Region] = []
        self._buffers: list[np.ndarray] = []

    # ------------------------------------------------------------- allocation

    def allocate(self, name: str, size_bytes: int, alignment: int = CACHE_LINE_BYTES) -> Region:
        """Map a new region of ``size_bytes`` bytes and return it."""

        if size_bytes <= 0:
            raise AllocationError(f"{name}: allocation size must be positive")
        base = align_up(self._next_addr, alignment)
        padded = align_up(size_bytes, WORD_BYTES)
        region = Region(name=name, base=base, size_bytes=padded)
        self._next_addr = base + padded
        index = bisect.bisect_right(self._region_bases, base)
        self._region_bases.insert(index, base)
        self._regions.insert(index, region)
        self._buffers.insert(index, np.zeros(padded // WORD_BYTES, dtype=np.uint64))
        return region

    def allocate_array(
        self,
        name: str,
        length: int,
        values: Sequence[int] | None = None,
        alignment: int = CACHE_LINE_BYTES,
    ) -> TypedArray:
        """Allocate an array of ``length`` 64-bit elements, optionally initialised."""

        if length <= 0:
            raise AllocationError(f"{name}: array length must be positive")
        region = self.allocate(name, length * WORD_BYTES, alignment=alignment)
        array = TypedArray(self, region, length)
        if values is not None:
            array.fill(values)
        return array

    def map_region(self, name: str, base: int, size_bytes: int) -> Region:
        """Map a zero-filled region at an *explicit* base address.

        This is the trace-artifact replay path: a stored trace carries the
        region table of the address space it was emitted against, and a
        replay workload reconstructs an identically-shaped space from it —
        same bases, same extents — without re-running the workload's data
        build.  Values read as zero, which is sufficient for every
        non-programmable mode (the hierarchy only asks ``is_mapped`` for
        prefetch drops; only PPU kernels read line *contents*).

        Raises:
            AllocationError: On unaligned/overlapping placement or a
                non-positive size.
        """

        if base <= 0 or base % WORD_BYTES != 0:
            raise AllocationError(f"{name}: region base {base:#x} is not word aligned")
        if size_bytes <= 0 or size_bytes % WORD_BYTES != 0:
            raise AllocationError(
                f"{name}: region size {size_bytes} is not a positive word multiple"
            )
        region = Region(name=name, base=base, size_bytes=size_bytes)
        index = bisect.bisect_right(self._region_bases, base)
        before = self._regions[index - 1] if index > 0 else None
        after = self._regions[index] if index < len(self._regions) else None
        if (before is not None and before.end > base) or (
            after is not None and region.end > after.base
        ):
            raise AllocationError(f"{name}: region at {base:#x} overlaps an existing region")
        self._region_bases.insert(index, base)
        self._regions.insert(index, region)
        self._buffers.insert(index, np.zeros(size_bytes // WORD_BYTES, dtype=np.uint64))
        if region.end > self._next_addr:
            self._next_addr = region.end
        return region

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    @property
    def mapped_bytes(self) -> int:
        return sum(region.size_bytes for region in self._regions)

    # ----------------------------------------------------------------- access

    def _locate(self, addr: int) -> tuple[Region, np.ndarray]:
        index = bisect.bisect_right(self._region_bases, addr) - 1
        if index >= 0:
            region = self._regions[index]
            if region.contains(addr):
                return region, self._buffers[index]
        raise AccessError(f"address {addr:#x} is not mapped")

    def is_mapped(self, addr: int) -> bool:
        """Return True when ``addr`` falls inside an allocated region."""

        index = bisect.bisect_right(self._region_bases, addr) - 1
        return index >= 0 and self._regions[index].contains(addr)

    def read_word(self, addr: int) -> int:
        """Read the signed 64-bit word at ``addr`` (must be word aligned)."""

        self._check_aligned(addr)
        region, buffer = self._locate(addr)
        return int(np.int64(buffer[(addr - region.base) // WORD_BYTES]))

    def write_word(self, addr: int, value: int) -> None:
        """Write a 64-bit word at ``addr`` (must be word aligned)."""

        self._check_aligned(addr)
        region, buffer = self._locate(addr)
        buffer[(addr - region.base) // WORD_BYTES] = value & _U64_MASK

    def read_words(self, addr: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive words starting at ``addr``."""

        self._check_aligned(addr)
        if count < 0:
            raise AccessError("word count must be non-negative")
        region, buffer = self._locate(addr)
        start = (addr - region.base) // WORD_BYTES
        if start + count > buffer.size:
            raise AccessError(
                f"read of {count} words at {addr:#x} crosses the end of region {region.name}"
            )
        return buffer[start : start + count].copy()

    def write_words(self, addr: int, values: np.ndarray) -> None:
        """Write consecutive words starting at ``addr``."""

        self._check_aligned(addr)
        region, buffer = self._locate(addr)
        start = (addr - region.base) // WORD_BYTES
        if start + values.size > buffer.size:
            raise AccessError(
                f"write of {values.size} words at {addr:#x} crosses the end of region {region.name}"
            )
        buffer[start : start + values.size] = values.astype(np.uint64)

    def read_line(self, addr: int) -> list[int]:
        """Return the 8 words of the cache line containing ``addr``.

        Words that fall outside any mapped region read as zero, mirroring how
        a real prefetcher would simply see whatever bytes the line contains.
        """

        base = line_address(addr)
        # Fast path (the prefetcher reads one line per observation/fill):
        # when the whole line sits inside a single region, slice its buffer
        # once instead of paying a bisect + bounds check per word.
        index = bisect.bisect_right(self._region_bases, base) - 1
        if index >= 0:
            region = self._regions[index]
            if base + WORDS_PER_LINE * WORD_BYTES <= region.end:
                start = (base - region.base) // WORD_BYTES
                return self._buffers[index][start : start + WORDS_PER_LINE].astype(
                    np.int64
                ).tolist()
        words: list[int] = []
        for offset in range(WORDS_PER_LINE):
            word_addr = base + offset * WORD_BYTES
            if self.is_mapped(word_addr):
                words.append(self.read_word(word_addr))
            else:
                words.append(0)
        return words

    @staticmethod
    def _check_aligned(addr: int) -> None:
        if addr % WORD_BYTES != 0:
            raise AccessError(f"address {addr:#x} is not word aligned")
