"""Two-level TLB and page-table-walker cost model.

Translation cost is added to every demand access and to every prefetch issued
from the prefetch request queue (the paper's prefetcher translates through the
shared TLB).  Page faults never occur for workload data because every workload
address is mapped; prefetches to unmapped addresses (e.g. a speculative
pointer that turns out to be garbage) are discarded by the hierarchy, matching
Section 5.3 ("the prefetcher ... cannot handle page faults, so in this case we
discard the prefetch").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import TLBConfig


@dataclass(slots=True)
class TLBStats:
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "walks": self.walks,
            "l1_hit_rate": self.l1_hit_rate,
        }


class _LRUSet:
    """A small fully-associative LRU structure keyed by virtual page number.

    A plain dict in recency order (oldest first): delete + re-insert moves a
    key to the end, ``next(iter(...))`` is the LRU victim.  Equivalent to an
    ``OrderedDict`` with ``move_to_end``/``popitem(last=False)`` but faster —
    this sits on the per-access translation path.
    """

    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._entries: dict[int, None] = {}

    def lookup(self, page: int) -> bool:
        entries = self._entries
        if page in entries:
            del entries[page]
            entries[page] = None
            return True
        return False

    def insert(self, page: int) -> None:
        entries = self._entries
        if page in entries:
            del entries[page]
            entries[page] = None
            return
        if len(entries) >= self._capacity:
            del entries[next(iter(entries))]
        entries[page] = None

    def __len__(self) -> int:
        return len(self._entries)


class TLB:
    """Two-level TLB returning the extra latency of address translation."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._l1 = _LRUSet(config.l1_entries)
        self._l2 = _LRUSet(config.l2_entries)
        self.stats = TLBStats()
        # Hot-path constants: translate() runs once per demand access and
        # once per issued prefetch, so the config chain and latency floats
        # are resolved here instead of per call.
        self._page_bytes = config.page_bytes
        self._l2_latency = float(config.l2_hit_latency)
        self._walk_latency = float(config.l2_hit_latency + config.walk_latency)

    def translate(self, addr: int, time: float) -> float:
        """Return the translation latency (in cycles) for ``addr``.

        ``time`` is accepted for interface symmetry with the caches; the TLB
        model itself is stateless in time.  The L1 hit path (the vast
        majority of translations) is inlined: one dict probe plus the
        delete/re-insert recency update.
        """

        del time  # latency-only model
        page = addr // self._page_bytes
        stats = self.stats
        stats.accesses += 1
        l1_entries = self._l1._entries
        if page in l1_entries:
            del l1_entries[page]
            l1_entries[page] = None
            stats.l1_hits += 1
            return 0.0
        return self.miss(page)

    def miss(self, page: int) -> float:
        """L1-TLB-miss continuation of :meth:`translate`.

        Split out so the memory hierarchy can inline the L1-hit fast path
        (one dict membership test) and only pay a call on the miss path.
        The access has already been counted by the caller.
        """

        stats = self.stats
        if self._l2.lookup(page):
            stats.l2_hits += 1
            self._l1.insert(page)
            return self._l2_latency
        stats.walks += 1
        self._l2.insert(page)
        self._l1.insert(page)
        return self._walk_latency

    def reset(self) -> None:
        self._l1 = _LRUSet(self.config.l1_entries)
        self._l2 = _LRUSet(self.config.l2_entries)
        self.stats = TLBStats()
