"""Two-level TLB and page-table-walker cost model.

Translation cost is added to every demand access and to every prefetch issued
from the prefetch request queue (the paper's prefetcher translates through the
shared TLB).  Page faults never occur for workload data because every workload
address is mapped; prefetches to unmapped addresses (e.g. a speculative
pointer that turns out to be garbage) are discarded by the hierarchy, matching
Section 5.3 ("the prefetcher ... cannot handle page faults, so in this case we
discard the prefetch").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..config import TLBConfig
from .layout import page_number


@dataclass
class TLBStats:
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "walks": self.walks,
            "l1_hit_rate": self.l1_hit_rate,
        }


class _LRUSet:
    """A small fully-associative LRU structure keyed by virtual page number."""

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._entries: OrderedDict[int, None] = OrderedDict()

    def lookup(self, page: int) -> bool:
        if page in self._entries:
            self._entries.move_to_end(page)
            return True
        return False

    def insert(self, page: int) -> None:
        if page in self._entries:
            self._entries.move_to_end(page)
            return
        if len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
        self._entries[page] = None

    def __len__(self) -> int:
        return len(self._entries)


class TLB:
    """Two-level TLB returning the extra latency of address translation."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._l1 = _LRUSet(config.l1_entries)
        self._l2 = _LRUSet(config.l2_entries)
        self.stats = TLBStats()

    def translate(self, addr: int, time: float) -> float:
        """Return the translation latency (in cycles) for ``addr``.

        ``time`` is accepted for interface symmetry with the caches; the TLB
        model itself is stateless in time.
        """

        del time  # latency-only model
        page = page_number(addr, self.config.page_bytes)
        self.stats.accesses += 1
        if self._l1.lookup(page):
            self.stats.l1_hits += 1
            return 0.0
        if self._l2.lookup(page):
            self.stats.l2_hits += 1
            self._l1.insert(page)
            return float(self.config.l2_hit_latency)
        self.stats.walks += 1
        self._l2.insert(page)
        self._l1.insert(page)
        return float(self.config.l2_hit_latency + self.config.walk_latency)

    def reset(self) -> None:
        self._l1 = _LRUSet(self.config.l1_entries)
        self._l2 = _LRUSet(self.config.l2_entries)
        self.stats = TLBStats()
