"""System configuration (Table 1 of the paper).

The :class:`SystemConfig` dataclass bundles the core, memory-hierarchy and
prefetcher parameters used by every simulation.  Two presets are provided:

``SystemConfig.paper()``
    The configuration from Table 1 of the paper (3-wide out-of-order core at
    3.2 GHz, 32 KB L1, 1 MB L2, DDR3-1600, 12 PPUs at 1 GHz, 40-entry
    observation queue, 200-entry prefetch queue).

``SystemConfig.scaled()``
    The same structure with caches shrunk so that the scaled-down workload
    inputs used for fast pure-Python simulation still dwarf the last-level
    cache, preserving the "memory bound" property the paper relies on.  All
    relative speedups reported by :mod:`repro.eval` use this preset.

All times inside the simulator are expressed in *main-core cycles*.  Frequency
ratios (e.g. the 1 GHz PPUs against the 3.2 GHz core) are converted into cycle
multipliers here so the rest of the code never deals with wall-clock units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from .errors import ConfigurationError

#: Bytes per cache line, fixed across the whole simulated system.
CACHE_LINE_BYTES = 64

#: Bytes per simulated virtual-memory page.
PAGE_BYTES = 4096

#: Bytes per machine word (the paper models a 64-bit ARMv8 system).
WORD_BYTES = 8


@dataclass(frozen=True)
class CoreConfig:
    """Main out-of-order core parameters (Table 1, "Main Core")."""

    frequency_ghz: float = 3.2
    issue_width: int = 3
    rob_entries: int = 40
    load_queue_entries: int = 16
    store_queue_entries: int = 32
    int_alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 3
    branch_mispredict_penalty: int = 14
    #: Fraction of branches mispredicted by the tournament predictor; the
    #: interval model charges the penalty probabilistically through the
    #: workload-supplied branch ops rather than simulating the predictor.
    branch_mispredict_rate: float = 0.02

    def validate(self) -> None:
        if self.issue_width < 1:
            raise ConfigurationError("issue_width must be at least 1")
        if self.rob_entries < self.issue_width:
            raise ConfigurationError("rob_entries must be >= issue_width")
        if self.load_queue_entries < 1 or self.store_queue_entries < 1:
            raise ConfigurationError("load/store queue sizes must be positive")
        if not 0.0 <= self.branch_mispredict_rate <= 1.0:
            raise ConfigurationError("branch_mispredict_rate must be in [0, 1]")


@dataclass(frozen=True)
class CacheConfig:
    """A single cache level."""

    name: str
    size_bytes: int
    associativity: int
    hit_latency: int
    mshrs: int
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError(f"{self.name}: size and associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigurationError(
                f"{self.name}: size must be a multiple of associativity * line size"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(f"{self.name}: number of sets must be a power of two")
        if self.mshrs < 1:
            raise ConfigurationError(f"{self.name}: at least one MSHR is required")


@dataclass(frozen=True)
class TLBConfig:
    """Two-level TLB plus hardware page-table walker (Table 1, "Memory & OS")."""

    l1_entries: int = 64
    l2_entries: int = 4096
    l2_associativity: int = 8
    l2_hit_latency: int = 8
    walk_latency: int = 40
    active_walkers: int = 3
    page_bytes: int = PAGE_BYTES

    def validate(self) -> None:
        if self.l1_entries < 1 or self.l2_entries < 1:
            raise ConfigurationError("TLB levels must have at least one entry")
        if self.active_walkers < 1:
            raise ConfigurationError("at least one page-table walker is required")


@dataclass(frozen=True)
class DRAMConfig:
    """DDR3-1600-like main memory model.

    The model is intentionally simple: a fixed access latency plus a
    bandwidth constraint expressed as a per-channel line service time.  This
    captures the two effects the prefetcher interacts with — long latency to
    hide and finite bandwidth that over-fetching wastes.
    """

    access_latency_cycles: int = 200
    channels: int = 2
    #: Core cycles a channel is occupied transferring one 64-byte line.
    line_service_cycles: int = 16

    def validate(self) -> None:
        if self.access_latency_cycles < 1:
            raise ConfigurationError("DRAM latency must be positive")
        if self.channels < 1 or self.line_service_cycles < 1:
            raise ConfigurationError("DRAM channels and service time must be positive")


@dataclass(frozen=True)
class ProgrammablePrefetcherConfig:
    """Event-triggered programmable prefetcher parameters (Table 1, "Prefetcher")."""

    num_ppus: int = 12
    ppu_frequency_ghz: float = 1.0
    observation_queue_entries: int = 40
    prefetch_queue_entries: int = 200
    #: Maximum number of filter-table (address-range) entries.
    filter_table_entries: int = 16
    #: Maximum number of global prefetcher registers visible to kernels.
    global_registers: int = 32
    #: Shared PPU instruction cache size (bytes); kernels larger than this
    #: incur a one-off fetch penalty, mirroring the paper's 4 KiB cache.
    icache_bytes: int = 4096
    #: EWMA smoothing factor (weight of the newest sample).
    ewma_alpha: float = 0.25
    #: When True, PPUs stall on intermediate loads instead of re-scheduling
    #: follow-on events (the Figure 11 ablation).
    blocking_mode: bool = False

    def validate(self) -> None:
        if self.num_ppus < 1:
            raise ConfigurationError("at least one PPU is required")
        if self.ppu_frequency_ghz <= 0:
            raise ConfigurationError("PPU frequency must be positive")
        if self.observation_queue_entries < 1 or self.prefetch_queue_entries < 1:
            raise ConfigurationError("prefetcher queues must have at least one entry")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")


@dataclass(frozen=True)
class StridePrefetcherConfig:
    """Reference-prediction-table stride prefetcher (Chen & Baer), degree 8."""

    table_entries: int = 256
    degree: int = 8
    #: Accesses with a stable stride required before prefetches are issued.
    confidence_threshold: int = 2


@dataclass(frozen=True)
class GHBPrefetcherConfig:
    """Markov GHB G/AC prefetcher (Nesbit & Smith).

    ``regular`` mirrors the SRAM-sized configuration in Table 1 (2048-entry
    index and history buffer); ``large`` mirrors the 1 GiB in-memory variant
    the paper uses as an upper bound on history-based prefetching, and like
    the paper it is given zero-latency access to its own state.
    """

    index_entries: int = 2048
    history_entries: int = 2048
    depth: int = 16
    width: int = 6

    @classmethod
    def regular(cls) -> "GHBPrefetcherConfig":
        return cls()

    @classmethod
    def large(cls) -> "GHBPrefetcherConfig":
        return cls(index_entries=1 << 26, history_entries=1 << 26)


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated system configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=32 * 1024, associativity=2, hit_latency=2, mshrs=12
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=1024 * 1024, associativity=16, hit_latency=12, mshrs=16
        )
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    prefetcher: ProgrammablePrefetcherConfig = field(
        default_factory=ProgrammablePrefetcherConfig
    )
    stride: StridePrefetcherConfig = field(default_factory=StridePrefetcherConfig)
    ghb: GHBPrefetcherConfig = field(default_factory=GHBPrefetcherConfig)

    @property
    def ppu_cycle_ratio(self) -> float:
        """Main-core cycles consumed per PPU instruction.

        A 1 GHz PPU attached to a 3.2 GHz core executes one of its
        instructions every 3.2 main-core cycles.
        """

        return self.core.frequency_ghz / self.prefetcher.ppu_frequency_ghz

    def validate(self) -> None:
        self.core.validate()
        self.l1.validate()
        self.l2.validate()
        self.tlb.validate()
        self.dram.validate()
        self.prefetcher.validate()
        if self.l1.size_bytes > self.l2.size_bytes:
            raise ConfigurationError("L1 must not be larger than L2")

    # ------------------------------------------------------------------ presets

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The configuration from Table 1 of the paper."""

        config = cls()
        config.validate()
        return config

    @classmethod
    def scaled(cls) -> "SystemConfig":
        """Scaled-down preset used for fast pure-Python reproduction runs.

        The L1 keeps half its Table 1 capacity (16 KB) so that prefetch
        look-ahead distances of a few tens of lines still fit comfortably,
        while the L2 is shrunk by 16× (64 KB) so that the scaled workload
        inputs (hundreds of thousands of elements rather than tens of
        millions) still exceed the last-level cache by a large factor, which
        is the regime the paper evaluates.  Core, DRAM and prefetcher
        structures keep their Table 1 values.
        """

        config = cls(
            l1=CacheConfig(
                name="L1D", size_bytes=16 * 1024, associativity=2, hit_latency=2, mshrs=12
            ),
            l2=CacheConfig(
                name="L2", size_bytes=64 * 1024, associativity=16, hit_latency=12, mshrs=16
            ),
            # The TLB shrinks with the caches: the paper's inputs dwarf a
            # 4096-entry TLB just as the scaled inputs dwarf a 48-entry one,
            # so demand accesses to the irregular structures pay translation
            # penalties unless the prefetcher has walked the pages ahead.
            tlb=TLBConfig(l1_entries=16, l2_entries=48),
        )
        config.validate()
        return config

    # ---------------------------------------------------------------- mutation

    def with_prefetcher(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with programmable-prefetcher fields replaced.

        Used by the Figure 9 sweeps (PPU count and clock) and the Figure 11
        blocking ablation.
        """

        new = replace(self, prefetcher=replace(self.prefetcher, **overrides))
        new.validate()
        return new

    def with_core(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with main-core fields replaced."""

        new = replace(self, core=replace(self.core, **overrides))
        new.validate()
        return new

    def with_caches(
        self, *, l1: Optional[dict[str, Any]] = None, l2: Optional[dict[str, Any]] = None
    ) -> "SystemConfig":
        """Return a copy with L1 and/or L2 cache fields replaced.

        The mutator behind cache-geometry sweeps: configurations that differ
        only through ``with_caches`` share everything the vector backend
        needs to batch them into one trace pass
        (:func:`repro.sim.simulate_batch`).

        >>> half = SystemConfig.scaled().with_caches(l1={"size_bytes": 8 * 1024})
        """

        new = replace(
            self,
            l1=replace(self.l1, **l1) if l1 else self.l1,
            l2=replace(self.l2, **l2) if l2 else self.l2,
        )
        new.validate()
        return new
